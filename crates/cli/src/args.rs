//! Minimal flag parser for the `dreamsim` binary (no external
//! dependencies): `--key value` pairs and bare positionals after a
//! subcommand.

use std::collections::BTreeMap;

/// Parsed command line: subcommand, flags, and positionals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// First non-flag token.
    pub command: Option<String>,
    /// `--key value` pairs (`--flag` with no value stores `""`).
    pub flags: BTreeMap<String, String>,
    /// Remaining bare tokens.
    pub positionals: Vec<String>,
}

/// Argument error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw tokens (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty flag name".into()));
                }
                // `--key=value` or `--key value` or bare `--key`.
                if let Some((k, v)) = key.split_once('=') {
                    if k.is_empty() {
                        return Err(ArgError("empty flag name".into()));
                    }
                    out.flags.insert(k.to_string(), v.to_string());
                } else {
                    let value = match it.peek() {
                        Some(next) if !next.starts_with("--") => it.next(),
                        _ => None,
                    };
                    out.flags.insert(key.to_string(), value.unwrap_or_default());
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// String flag with default.
    #[must_use]
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map_or(default, String::as_str)
    }

    /// Whether a flag is present at all.
    #[must_use]
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Parsed numeric flag with default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: invalid value {v:?}"))),
        }
    }

    /// Comma-separated numeric list flag with default.
    pub fn get_list(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, ArgError> {
        match self.flags.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("--{key}: invalid number {x:?}")))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_flags_and_positionals() {
        let a = parse("run --nodes 200 --mode partial trace.txt");
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("nodes", "0"), "200");
        assert_eq!(a.get("mode", "full"), "partial");
        assert_eq!(a.positionals, vec!["trace.txt"]);
    }

    #[test]
    fn equals_form_and_bare_flags() {
        let a = parse("figures --fig=6a --verbose");
        assert_eq!(a.get("fig", ""), "6a");
        assert!(a.has("verbose"));
        assert_eq!(a.get("verbose", "x"), "");
    }

    #[test]
    fn numeric_parsing_and_defaults() {
        let a = parse("run --tasks 5000");
        assert_eq!(a.get_num("tasks", 0usize).unwrap(), 5000);
        assert_eq!(a.get_num("seed", 42u64).unwrap(), 42);
        assert!(parse("run --tasks abc").get_num("tasks", 0usize).is_err());
    }

    #[test]
    fn list_parsing() {
        let a = parse("sweep --nodes 100,200");
        assert_eq!(a.get_list("nodes", &[]).unwrap(), vec![100, 200]);
        assert_eq!(a.get_list("tasks", &[7]).unwrap(), vec![7]);
        assert!(parse("sweep --nodes 1,x").get_list("nodes", &[]).is_err());
    }

    #[test]
    fn empty_flag_names_rejected() {
        assert!(Args::parse(["--".to_string()]).is_err());
        assert!(Args::parse(["--=value".to_string()]).is_err());
    }

    #[test]
    fn flag_followed_by_flag_keeps_empty_value() {
        let a = parse("run --record --nodes 10");
        assert_eq!(a.get("record", "default"), "");
        assert_eq!(a.get("nodes", ""), "10");
    }
}
