//! `dreamsim` — command-line front end for the DReAMSim framework.
//!
//! Subcommands:
//!
//! * `run` — one simulation with Table II defaults, printing the Table I
//!   metrics (optionally as XML/JSON/CSV, optionally replaying or
//!   recording a workload trace).
//! * `figures` — regenerate the paper's figures (6a–10) as CSV series,
//!   with a per-figure agreement check against the paper's reported
//!   direction.
//! * `ablations` — run the A1–A4 ablation harnesses.
//! * `chaos` — run a chaos campaign (correlated failure-domain outages,
//!   overload bursts) under continuous audit, with a kill-and-resume
//!   drill per scenario.
//! * `serve` — the self-healing open-system service mode: streaming
//!   arrivals with a diurnal load curve, a rolling checkpoint ring,
//!   watchdog-driven auto-recovery, and sliding-window live metrics.
//! * `trace` — generate a synthetic trace file for later replay.
//! * `lint` — the determinism static-analysis pass (see the
//!   `dreamsim-lint` crate); nonzero exit on unsuppressed findings.
//!
//! Run `dreamsim help` for usage.

mod args;

use args::{ArgError, Args};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocations observed since process start (relaxed counter; the
/// `bench-profile` command reads deltas around a run).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Counting wrapper around the system allocator. Installed for the whole
/// binary — the cost is one relaxed atomic increment per allocation,
/// unobservable next to the allocation itself — but only `bench-profile`
/// ever reads the counter. Lives in the CLI so the engine and model
/// crates stay free of `unsafe` (enforced by lint rule r11).
struct CountingAlloc;

// SAFETY: delegates every operation unchanged to the system allocator;
// the counter has no effect on the returned memory.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's.
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        // SAFETY: same contract as the caller's.
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's.
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;
use dreamsim_engine::{
    read_checkpoint, AdmissionPolicy, ArrivalDistribution, BurstWindow, DomainOutageKind,
    DomainParams, EventQueueBackend, ReconfigMode, Report, RunOptions, RunResult, ScriptedOutage,
    SearchBackend, SimParams, Simulation, StatsBackend,
};
use dreamsim_rng::Rng;
use dreamsim_sched::{AllocationStrategy, CaseStudyScheduler};
use dreamsim_sweep::ablations;
use dreamsim_sweep::figures::{default_task_counts, ExperimentGrid, Figure};
use dreamsim_workload::{RecordingSource, SyntheticSource, TraceSource};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
dreamsim — task-scheduling simulator for partially reconfigurable nodes

USAGE:
  dreamsim run [--nodes N] [--tasks N] [--mode full|partial] [--seed S]
               [--policy best-fit|first-fit|worst-fit|random|least-loaded]
               [--arrival uniform|poisson|exponential]
               [--no-suspension] [--mtbf TICKS] [--mttr TICKS]
               [--mttf TICKS] [--reconfig-fail-prob P] [--task-fail-prob P]
               [--max-retries N] [--suspension-deadline TICKS]
               [--no-resubmit]
               [--domains N] [--domain-mttf TICKS] [--domain-mttr TICKS]
               [--domain-kind fail|partition] [--outages D:AT:DUR,...]
               [--suspension-cap N]
               [--admission block|shed-oldest|degrade-closest]
               [--burst START,END,INTERVAL]
               [--placement scalar|contiguous] [--replay TRACE]
               [--swf FILE [--ticks-per-second N] [--max-jobs N]]
               [--checkpoint-every TICKS] [--checkpoint-dir DIR]
               [--audit] [--audit-every TICKS] [--resume-from FILE]
               [--search auto|linear|indexed]
               [--event-queue heap|calendar] [--stats exact|sketch]
               [--report table|xml|json|csv] [--out FILE]
  dreamsim figures [--fig 6a|6b|7a|7b|8a|8b|9a|9b|10|all]
                   [--max-tasks N | --tasks N1,N2,...]
                   [--jobs N] [--seed S] [--out-dir DIR]
                   [--search auto|linear|indexed]
  dreamsim ablations [--which a1|a2|a3|a4|a5|all] [--nodes N] [--tasks N]
                     [--seed S] [--jobs N]
  dreamsim bench-search [--nodes N1,N2,...] [--tasks N1,N2,...]
                        [--rounds N] [--seed S] [--out FILE]
  dreamsim bench-grid [--nodes N1,N2,...] [--tasks N1,N2,...]
                      [--jobs J1,J2,...] [--seed S] [--out FILE]
  dreamsim bench-scale [--nodes N1,N2,...] [--tasks-per-node N]
                       [--seed S] [--verify-max-nodes N] [--reps N]
                       [--check-against FILE] [--tolerance PCT]
                       [--out FILE]
  dreamsim bench-profile [--nodes N] [--tasks N] [--mode full|partial]
                         [--seed S] [--policy P] [--search auto|linear|indexed]
                         [--event-queue heap|calendar] [--stats exact|sketch]
                         [--out FILE]
  dreamsim chaos [--script FILE] [--no-drill] [--audit-every TICKS]
                 [--work-dir DIR] [--report csv|json] [--out FILE]
  dreamsim serve [--nodes N] [--seed S] [--mode full|partial]
                 [--policy best-fit|first-fit|worst-fit|random|least-loaded]
                 [--arrival uniform|poisson|exponential]
                 [--horizon TICKS] [--day-length TICKS]
                 [--amplitude PERMILLE] [--window TICKS]
                 [--window-retain N] [--burst START,END,INTERVAL]
                 [--ring-dir DIR] [--ring-every TICKS] [--ring-retain N]
                 [--audit-every TICKS] [--stall-window TICKS]
                 [--max-restarts N] [--no-watchdog] [--kill-at TICK]
                 [--recovery-report FILE] [--search auto|linear|indexed]
                 [--report table|xml|json|csv] [--out FILE]
  dreamsim trace --out FILE [--tasks N] [--seed S]
  dreamsim lint [--root DIR] [--format text|json|sarif] [--out FILE]
                [--list-rules] [FILES...]
  dreamsim help

Defaults follow Table II of the paper: 50 configs, arrival U[1..50],
config area U[200..2000], node area U[1000..4000], task time
U[100..100000], config time U[10..20], 15% closest-match tasks.

Fault injection (all off by default): --mttf enables per-node exponential
failure/repair processes (repair time --mttr, default 1000); it is mutually
exclusive with the legacy global --mtbf process. --reconfig-fail-prob makes
bitstream loads fail with probability P (retried --max-retries times with
exponential backoff, then degraded to the closest larger configuration);
--task-fail-prob kills running tasks mid-execution; --suspension-deadline
discards tasks suspended longer than TICKS. Fault-killed tasks are
resubmitted unless --no-resubmit is given.

Chaos layer (all off by default): --domains N splits the nodes into N
correlated failure domains (racks/zones); --domain-mttf arms stochastic
whole-domain outages, --outages D:AT:DUR,... scripts them, and
--domain-kind picks whether an outage kills the domain's running tasks
(fail) or parks them back into the suspension queue (partition).
--suspension-cap bounds the suspension queue; --admission picks what
happens on overflow: block sheds the newcomer, shed-oldest evicts the
queue head, degrade-closest tries to place the overflow on an idle
instance of the next-larger configuration before blocking. --burst
tightens arrival interarrivals to at most INTERVAL inside
[START, END). Partition outages plus a bounded queue need
--suspension-deadline (or a resuming policy) so parked tasks cannot
stall the run forever. The `chaos` subcommand runs whole campaigns of
such scenarios from a script (see the dreamsim-sweep chaos module docs
for the format; omit --script for the built-in campaign), audits
continuously (--audit-every, default 500), runs a kill-and-resume drill
per scenario (checkpoints into --work-dir, default chaos-work), and
reports availability metrics as CSV or JSON.

Service mode: `serve` runs an open-system window of --horizon ticks of
streaming arrivals (Poisson by default) whose rate follows a diurnal
triangle wave: --day-length sets the period, --amplitude the modulation
depth in permille of the mean rate (0-900; 0 is flat), composable with
--burst. Live metrics roll in sliding windows of --window ticks (the
newest --window-retain buckets are kept; peaks land in the report's
<service> block). The service snapshots into a rolling checkpoint ring
(--ring-dir, default serve-ring) every --ring-every ticks, pruning to
the newest --ring-retain entries — atomically, and never the last valid
snapshot. On startup the ring is scanned newest-first and the service
auto-recovers from the newest snapshot that loads and passes its audit,
falling back past corrupted ones; --recovery-report FILE writes the
typed recovery record as JSON. A deterministic watchdog (simulated
clocks only) restarts the service from the ring on stalled-clock,
zero-progress, or suspension-livelock conditions, at most
--max-restarts times (--stall-window tunes detection; --no-watchdog
disables it). --kill-at T stops the process mid-window with exit code
137 and no final snapshot — exactly a SIGKILL — so rerunning the same
command afterwards demonstrates recovery: the recovered report is
byte-identical to an uninterrupted run's.

Checkpoint/restore: --checkpoint-every writes a versioned snapshot of the
complete simulator state (atomically, into --checkpoint-dir, default .)
every TICKS of simulated time; --resume-from restores one and continues
the run, producing a report bit-identical to the uninterrupted run.
Simulation parameters come from the checkpoint; for trace/SWF runs
re-supply the same --replay/--swf file. --audit cross-checks the internal
state invariants after every dispatched event (and always at checkpoint
boundaries); --audit-every N audits on a period instead.

Search backends: --search selects how the store answers placement
searches. linear is the paper's scan; indexed answers the same queries
from ordered indexes in O(log n) wall-clock time while charging the
paper's exact step counts, so reports, figures, and checkpoints are
byte-identical under both (the differential test suite proves it).
auto (default) picks per run from the node count: linear below 200
nodes, indexed at or above, matching the measured end-to-end break-even.
--search also applies to --resume-from: checkpoints never store the
backend, and the index is rebuilt from the restored state.
bench-search measures both backends (search-time micro benchmark plus
end-to-end runs) and writes the results as JSON (default
BENCH_search.json).

Scale backends: --event-queue selects the pending-event structure. heap
(default) is the binary heap; calendar is a Brown-style calendar queue
with O(1) amortized operations that pops the exact same (time, seq)
order, so reports and checkpoints are byte-identical under both (the
differential suite proves it). --stats selects wait-time statistics:
exact (default) stores every wait sample; sketch replaces the unbounded
sample vector with a fixed-size integer quantile sketch whose
percentiles match exact to within 1/128 relative error (and are
byte-identical below the 4096-sample exact window). Both flags also
apply to --resume-from: checkpoints are backend-agnostic and the chosen
structures are rebuilt from the restored state. bench-scale times the
seed path (heap+exact) against the scale path (calendar+sketch) over a
node ladder, records peak RSS per rung, cross-checks report
byte-identity up to --verify-max-nodes (default: every rung), records the
deterministic per-phase operation counters of each rung, and writes
BENCH_scale.json; --check-against diffs those counters against a committed
baseline file and fails (exit 1) on any counter that grew more than
--tolerance percent (default 25) — counters, not wall-clock, so the gate
holds on noisy CI runners. bench-profile runs one simulation and prints
the XML report with an extra <profile> block: the same operation counters
plus the heap-allocation count from the CLI's counting allocator.

Parallel sweeps: figures and ablations fan their independent simulation
points across --jobs worker threads (0 or omitted = all hardware
threads; --threads is an alias). Results are merged in point order, so
output is byte-identical for every --jobs value. bench-grid times the
figures grid serially under each backend and in parallel across a jobs
ladder, checksums every run's cells, and writes BENCH_grid.json.
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = match args.command.as_deref() {
        Some("run") => cmd_run(&args),
        Some("figures") => cmd_figures(&args),
        Some("ablations") => cmd_ablations(&args),
        Some("bench-search") => cmd_bench_search(&args),
        Some("bench-grid") => cmd_bench_grid(&args),
        Some("bench-scale") => cmd_bench_scale(&args),
        Some("bench-profile") => cmd_bench_profile(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("serve") => cmd_serve(&args),
        Some("trace") => cmd_trace(&args),
        Some("lint") => cmd_lint(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(ArgError(format!("unknown subcommand {other:?}"))),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `dreamsim help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn parse_mode(s: &str) -> Result<ReconfigMode, ArgError> {
    match s {
        "full" => Ok(ReconfigMode::Full),
        "partial" => Ok(ReconfigMode::Partial),
        _ => Err(ArgError(format!(
            "--mode must be full or partial, got {s:?}"
        ))),
    }
}

fn parse_search(args: &Args) -> Result<SearchBackend, ArgError> {
    let s = args.get("search", "auto");
    SearchBackend::parse(s).ok_or_else(|| {
        ArgError(format!(
            "--search must be auto, linear, or indexed, got {s:?}"
        ))
    })
}

fn parse_event_queue(args: &Args) -> Result<EventQueueBackend, ArgError> {
    let s = args.get("event-queue", "heap");
    EventQueueBackend::parse(s)
        .ok_or_else(|| ArgError(format!("--event-queue must be heap or calendar, got {s:?}")))
}

fn parse_stats(args: &Args) -> Result<StatsBackend, ArgError> {
    let s = args.get("stats", "exact");
    StatsBackend::parse(s)
        .ok_or_else(|| ArgError(format!("--stats must be exact or sketch, got {s:?}")))
}

/// Worker count for parallel sweeps: `--jobs N` (preferred), with
/// `--threads N` kept as an alias; 0 or omitted selects the hardware
/// parallelism.
fn parse_jobs(args: &Args) -> Result<usize, ArgError> {
    if args.has("jobs") {
        args.get_num("jobs", 0usize)
    } else {
        args.get_num("threads", 0usize)
    }
}

fn parse_strategy(s: &str) -> Result<AllocationStrategy, ArgError> {
    match s {
        "best-fit" => Ok(AllocationStrategy::BestFit),
        "first-fit" => Ok(AllocationStrategy::FirstFit),
        "worst-fit" => Ok(AllocationStrategy::WorstFit),
        "random" => Ok(AllocationStrategy::Random),
        "least-loaded" => Ok(AllocationStrategy::LeastLoaded),
        _ => Err(ArgError(format!("unknown --policy {s:?}"))),
    }
}

fn params_from_args(args: &Args) -> Result<SimParams, ArgError> {
    let mode = parse_mode(args.get("mode", "partial"))?;
    let mut p = SimParams::paper(
        args.get_num("nodes", 200usize)?,
        args.get_num("tasks", 10_000usize)?,
        mode,
    );
    p.seed = args.get_num("seed", 0x5EEDu64)?;
    p.arrival = match args.get("arrival", "uniform") {
        "uniform" => ArrivalDistribution::Uniform,
        "poisson" => ArrivalDistribution::Poisson,
        "exponential" => ArrivalDistribution::Exponential,
        other => return Err(ArgError(format!("unknown --arrival {other:?}"))),
    };
    if args.has("no-suspension") {
        p.suspension_enabled = false;
    }
    p.placement = match args.get("placement", "scalar") {
        "scalar" => dreamsim_engine::PlacementModel::Scalar,
        "contiguous" => dreamsim_engine::PlacementModel::Contiguous,
        other => return Err(ArgError(format!("unknown --placement {other:?}"))),
    };
    if args.has("mtbf") {
        p.node_mtbf = Some(args.get_num("mtbf", 0u64)?);
    }
    p.node_mttr = args.get_num("mttr", p.node_mttr)?;
    if args.has("mttf") {
        p.faults.node_mttf = Some(args.get_num("mttf", 0u64)?);
    }
    // --mttr sets the repair time for whichever failure model is active.
    p.faults.node_mttr = args.get_num("mttr", p.faults.node_mttr)?;
    p.faults.reconfig_fail_prob =
        args.get_num("reconfig-fail-prob", p.faults.reconfig_fail_prob)?;
    p.faults.task_fail_prob = args.get_num("task-fail-prob", p.faults.task_fail_prob)?;
    p.faults.max_retries = args.get_num("max-retries", p.faults.max_retries)?;
    if args.has("suspension-deadline") {
        p.faults.suspension_deadline = Some(args.get_num("suspension-deadline", 0u64)?);
    }
    if args.has("no-resubmit") {
        p.faults.resubmit = false;
    }
    if args.has("domains") {
        let mut d = DomainParams {
            count: args.get_num("domains", 0usize)?,
            ..DomainParams::default()
        };
        if args.has("domain-mttf") {
            d.mttf = Some(args.get_num("domain-mttf", 0u64)?);
        }
        d.mttr = args.get_num("domain-mttr", d.mttr)?;
        let kind = args.get("domain-kind", "fail");
        d.kind = DomainOutageKind::parse(kind).ok_or_else(|| {
            ArgError(format!(
                "--domain-kind must be fail or partition, got {kind:?}"
            ))
        })?;
        if args.has("outages") {
            d.scripted = parse_outages(args.get("outages", ""))?;
        }
        p.domains = Some(d);
    } else if args.has("domain-mttf") || args.has("domain-mttr") || args.has("outages") {
        return Err(ArgError(
            "--domain-mttf/--domain-mttr/--outages require --domains N".into(),
        ));
    }
    if args.has("suspension-cap") {
        p.suspension_cap = Some(args.get_num("suspension-cap", 0usize)?);
    }
    let admission = args.get("admission", "block");
    p.admission = AdmissionPolicy::parse(admission).ok_or_else(|| {
        ArgError(format!(
            "--admission must be block, shed-oldest, or degrade-closest, got {admission:?}"
        ))
    })?;
    if args.has("burst") {
        let v = args.get_list("burst", &[])?;
        if v.len() != 3 {
            return Err(ArgError("--burst expects START,END,INTERVAL".into()));
        }
        p.burst = Some(BurstWindow {
            start: v[0] as u64,
            end: v[1] as u64,
            interval: v[2] as u64,
        });
    }
    p.validate().map_err(|e| ArgError(e.to_string()))?;
    Ok(p)
}

/// Parse `--outages D:AT:DUR,...` into scripted domain outages.
fn parse_outages(spec: &str) -> Result<Vec<ScriptedOutage>, ArgError> {
    spec.split(',')
        .map(|entry| {
            let parts: Vec<&str> = entry.trim().split(':').collect();
            let err = || ArgError(format!("--outages entry {entry:?} must be D:AT:DUR"));
            if parts.len() != 3 {
                return Err(err());
            }
            Ok(ScriptedOutage {
                domain: parts[0].parse().map_err(|_| err())?,
                at: parts[1].parse().map_err(|_| err())?,
                duration: parts[2].parse().map_err(|_| err())?,
            })
        })
        .collect()
}

fn write_or_print(out: Option<&str>, content: &str) -> Result<(), ArgError> {
    match out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| ArgError(format!("writing {path}: {e}")))
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn metrics_table(report: &Report) -> String {
    let m = &report.metrics;
    let mut table = format!(
        "mode: {} | nodes: {} | policy defaults Table II\n\
         tasks generated / completed / discarded : {} / {} / {}\n\
         avg wasted area per task                : {:.2}\n\
         avg running time per task               : {:.1}\n\
         avg reconfiguration count per node      : {:.2}\n\
         avg configuration time per task         : {:.3}\n\
         avg waiting time per task               : {:.1}\n\
         avg scheduling steps per task           : {:.1}\n\
         total scheduler workload                : {}\n\
         total used nodes                        : {}\n\
         total simulation time (ticks)           : {}\n\
         suspensions (peak queue)                : {} ({})\n\
         placements [alloc/config/partial/reconf]: {}/{}/{}/{} (+{} resumed)\n",
        m.mode,
        m.total_nodes,
        m.total_tasks_generated,
        m.total_tasks_completed,
        m.total_discarded_tasks,
        m.avg_wasted_area_per_task,
        m.avg_running_time_per_task,
        m.avg_reconfig_count_per_node,
        m.avg_config_time_per_task,
        m.avg_waiting_time_per_task,
        m.avg_scheduling_steps_per_task,
        m.total_scheduler_workload,
        m.total_used_nodes,
        m.total_simulation_time,
        m.total_suspensions,
        m.suspension_peak_len,
        m.phases.allocation,
        m.phases.configuration,
        m.phases.partial_configuration,
        m.phases.partial_reconfiguration,
        m.phases.resumed,
    );
    // Only fault-injection runs get the extra lines, so fault-free output
    // stays byte-identical to earlier releases.
    if m.node_failures != 0 || m.node_downtime != 0 {
        table.push_str(&format!(
            "node failures / killed / downtime       : {} / {} / {}\n",
            m.node_failures, m.failure_killed, m.node_downtime
        ));
    }
    if m.reconfig_failures != 0 {
        table.push_str(&format!(
            "reconfig failures (retries)             : {} ({})\n",
            m.reconfig_failures, m.reconfig_retries
        ));
    }
    if m.task_failures != 0 {
        table.push_str(&format!(
            "task failures                           : {}\n",
            m.task_failures
        ));
    }
    if m.resubmissions != 0 || m.tasks_lost != 0 {
        table.push_str(&format!(
            "resubmissions / tasks lost to faults    : {} / {}\n",
            m.resubmissions, m.tasks_lost
        ));
    }
    if m.domain_outages != 0 || m.domain_restores != 0 {
        let downtime: u64 = m.domain_downtime.iter().sum();
        table.push_str(&format!(
            "domain outages / restores / downtime    : {} / {} / {} (mttr {:.1})\n",
            m.domain_outages, m.domain_restores, downtime, m.mean_time_to_recover
        ));
    }
    if m.tasks_shed != 0 || m.tasks_degraded != 0 {
        table.push_str(&format!(
            "tasks shed / degraded by admission      : {} / {}\n",
            m.tasks_shed, m.tasks_degraded
        ));
    }
    if m.windows_closed != 0 || m.window_peak_arrivals != 0 || m.window_peak_completions != 0 {
        table.push_str(&format!(
            "windows closed / peak arrivals / compl. : {} / {} / {}\n",
            m.windows_closed, m.window_peak_arrivals, m.window_peak_completions
        ));
    }
    table
}

fn render_report(report: &Report, format: &str) -> Result<String, ArgError> {
    match format {
        "table" => Ok(metrics_table(report)),
        "xml" => Ok(report.to_xml()),
        "json" => Ok(report.to_json()),
        "csv" => Ok(format!(
            "{}\n{}\n",
            Report::csv_header(),
            report.to_csv_row()
        )),
        other => Err(ArgError(format!("unknown --report format {other:?}"))),
    }
}

/// Checkpoint/audit options shared by every `run` code path.
fn run_options_from_args(args: &Args) -> Result<RunOptions, ArgError> {
    let mut opts = RunOptions::default();
    if args.has("checkpoint-every") {
        let every = args.get_num("checkpoint-every", 0u64)?;
        if every == 0 {
            return Err(ArgError("--checkpoint-every must be > 0".into()));
        }
        opts.checkpoint_every = Some(every);
    }
    if args.has("checkpoint-dir") {
        opts.checkpoint_dir = Some(std::path::PathBuf::from(args.get("checkpoint-dir", ".")));
    }
    opts.audit = args.has("audit");
    if args.has("audit-every") {
        let every = args.get_num("audit-every", 0u64)?;
        if every == 0 {
            return Err(ArgError("--audit-every must be > 0".into()));
        }
        opts.audit_every = Some(every);
    }
    Ok(opts)
}

/// Load a trace for `run`: either an SWF import or a recorded trace file.
/// Returns the source plus the task count it carries.
fn trace_from_args(args: &Args, num_configs: usize) -> Result<TraceSource, ArgError> {
    if args.has("swf") {
        // Real-workload import: Standard Workload Format (Parallel
        // Workloads Archive).
        let path = args.get("swf", "");
        let text =
            std::fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
        let swf_opts = dreamsim_workload::SwfOptions {
            ticks_per_second: args.get_num("ticks-per-second", 1u64)?,
            num_configs,
            skip_failed: true,
            max_jobs: args.get_num("max-jobs", 0usize)?,
        };
        let specs =
            dreamsim_workload::import_swf(&text, &swf_opts).map_err(|e| ArgError(e.to_string()))?;
        eprintln!("imported {} jobs from {path}", specs.len());
        Ok(TraceSource::from_specs(specs))
    } else {
        let path = args.get("replay", "");
        let text =
            std::fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
        TraceSource::from_text(&text).map_err(|e| ArgError(e.to_string()))
    }
}

/// The trio of derived-state backends `run` can select: checkpoints
/// store none of them, so they are re-applied identically to fresh and
/// resumed simulations.
#[derive(Clone, Copy)]
struct Backends {
    search: SearchBackend,
    queue: EventQueueBackend,
    stats: StatsBackend,
}

impl Backends {
    fn from_args(args: &Args) -> Result<Self, ArgError> {
        Ok(Self {
            search: parse_search(args)?,
            queue: parse_event_queue(args)?,
            stats: parse_stats(args)?,
        })
    }

    fn apply<S, P>(self, sim: Simulation<S, P>) -> Simulation<S, P>
    where
        S: dreamsim_engine::TaskSource,
        P: dreamsim_engine::SchedulePolicy,
    {
        sim.with_search_backend(self.search)
            .with_event_queue_backend(self.queue)
            .with_stats_backend(self.stats)
    }
}

/// `run --resume-from FILE`: restore a checkpoint and continue. The
/// simulation parameters (and for synthetic workloads the entire task
/// stream) come from the checkpoint itself; trace/SWF runs re-supply the
/// same workload file, which the restored cursor fast-forwards.
fn resume_run(
    args: &Args,
    run_opts: &RunOptions,
    backends: Backends,
) -> Result<RunResult, ArgError> {
    let path = args.get("resume-from", "");
    let cp = read_checkpoint(Path::new(path))
        .map_err(|e| ArgError(format!("reading checkpoint {path}: {e}")))?;
    eprintln!(
        "resuming {path}: clock {}, policy {}, source {}",
        cp.clock(),
        cp.policy_label(),
        cp.source_kind()
    );
    // Rebuild the exact policy recorded in the checkpoint; `resume`
    // re-verifies the label so a parser drift cannot slip through.
    let label = cp.policy_label().to_string();
    let strategy = label
        .strip_prefix("case-study/")
        .filter(|rest| !rest.contains('/'))
        .ok_or_else(|| {
            ArgError(format!(
                "checkpoint policy {label:?} cannot be rebuilt by the CLI"
            ))
        })
        .and_then(parse_strategy)?;
    let policy = CaseStudyScheduler::with_strategy(strategy);
    let result = match cp.source_kind() {
        "synthetic" => {
            let source = SyntheticSource::from_params(cp.params());
            backends
                .apply(
                    Simulation::resume(cp, source, policy)
                        .map_err(|e| ArgError(format!("restoring {path}: {e}")))?,
                )
                .run_with(run_opts)
        }
        "trace" => {
            if !args.has("replay") && !args.has("swf") {
                return Err(ArgError(
                    "checkpoint was taken from a trace run: re-supply the same --replay/--swf file"
                        .into(),
                ));
            }
            let source = trace_from_args(args, cp.params().total_configs)?;
            backends
                .apply(
                    Simulation::resume(cp, source, policy)
                        .map_err(|e| ArgError(format!("restoring {path}: {e}")))?,
                )
                .run_with(run_opts)
        }
        "open" => {
            return Err(ArgError(format!(
                "checkpoint {path} was taken by the service driver: resume it with \
                 `dreamsim serve --ring-dir DIR` and the original service flags instead \
                 of `run --resume-from`"
            )))
        }
        other => {
            return Err(ArgError(format!(
                "checkpoint source kind {other:?} cannot be rebuilt by the CLI"
            )))
        }
    };
    result.map_err(|e| ArgError(e.to_string()))
}

fn cmd_run(args: &Args) -> Result<(), ArgError> {
    let run_opts = run_options_from_args(args)?;
    let backends = Backends::from_args(args)?;
    let result: RunResult = if args.has("resume-from") {
        resume_run(args, &run_opts, backends)?
    } else {
        let params = params_from_args(args)?;
        let strategy = parse_strategy(args.get("policy", "best-fit"))?;
        let policy = CaseStudyScheduler::with_strategy(strategy);
        if args.has("swf") || args.has("replay") {
            let source = trace_from_args(args, params.total_configs)?;
            let mut p = params;
            // Replay exactly the trace, whatever --tasks said.
            p.total_tasks = source.len();
            backends
                .apply(Simulation::new(p, source, policy).map_err(|e| ArgError(e.to_string()))?)
                .run_with(&run_opts)
                .map_err(|e| ArgError(e.to_string()))?
        } else {
            let source = SyntheticSource::from_params(&params);
            backends
                .apply(
                    Simulation::new(params, source, policy).map_err(|e| ArgError(e.to_string()))?,
                )
                .run_with(&run_opts)
                .map_err(|e| ArgError(e.to_string()))?
        }
    };
    let rendered = render_report(&result.report, args.get("report", "table"))?;
    write_or_print(args.flags.get("out").map(String::as_str), &rendered)
}

/// `dreamsim serve` — the self-healing open-system service mode:
/// recover from the checkpoint ring (or start fresh), stream the
/// service window with ring snapshots and watchdog supervision, and
/// drain to a final report at the horizon.
fn cmd_serve(args: &Args) -> Result<(), ArgError> {
    use dreamsim_engine::{serve, ServiceOptions, ServiceParams, WatchdogParams};
    use dreamsim_workload::OpenSource;
    let mut params = params_from_args(args)?;
    if !args.has("arrival") {
        // Open-system default: Poisson arrivals (the batch default stays
        // uniform for byte-compatibility of `run`).
        params.arrival = ArrivalDistribution::Poisson;
    }
    let horizon = args.get_num("horizon", 50_000u64)?;
    params.service = Some(ServiceParams {
        horizon,
        day_length: args.get_num("day-length", 0u64)?,
        amplitude_permille: args.get_num("amplitude", 0u32)?,
        window: args.get_num("window", 1_000u64)?,
        window_retain: args.get_num("window-retain", 8u64)?,
    });
    // Inter-arrivals are at least one tick, so horizon + 1 tasks is a
    // true upper bound on arrivals inside the window: the stream never
    // runs dry before the horizon.
    params.total_tasks = horizon as usize + 1;
    params.validate().map_err(|e| ArgError(e.to_string()))?;

    let ring_dir = std::path::PathBuf::from(args.get("ring-dir", "serve-ring"));
    if ring_dir.exists() && !ring_dir.is_dir() {
        return Err(ArgError(format!(
            "--ring-dir {}: exists but is not a directory",
            ring_dir.display()
        )));
    }
    let mut opts = ServiceOptions::new(ring_dir);
    opts.ring_every = args.get_num("ring-every", opts.ring_every)?;
    if opts.ring_every == 0 {
        return Err(ArgError("--ring-every must be > 0".into()));
    }
    opts.ring_retain = args.get_num("ring-retain", opts.ring_retain)?;
    if opts.ring_retain == 0 {
        return Err(ArgError("--ring-retain must be > 0".into()));
    }
    if args.has("audit-every") {
        let every = args.get_num("audit-every", 0u64)?;
        if every == 0 {
            return Err(ArgError("--audit-every must be > 0".into()));
        }
        opts.audit_every = Some(every);
    }
    if args.has("no-watchdog") {
        opts.watchdog = None;
    } else {
        let defaults = WatchdogParams::default();
        opts.watchdog = Some(WatchdogParams {
            stall_window: args.get_num("stall-window", defaults.stall_window)?,
            max_restarts: args.get_num("max-restarts", defaults.max_restarts)?,
            ..defaults
        });
    }
    if args.has("kill-at") {
        opts.stop_at = Some(args.get_num("kill-at", 0u64)?);
    }
    opts.search = Some(parse_search(args)?);

    let strategy = parse_strategy(args.get("policy", "best-fit"))?;
    let outcome = serve(
        &params,
        OpenSource::from_params,
        || CaseStudyScheduler::with_strategy(strategy),
        &opts,
    )
    .map_err(|e| ArgError(e.to_string()))?;

    // Recovery/watchdog summary on stderr; stdout carries the report.
    let rec = &outcome.recovery;
    if rec.fresh_start {
        eprintln!(
            "serve: fresh start ({} snapshot(s) scanned, {} rejected)",
            rec.scanned,
            rec.rejected.len()
        );
    } else if let (Some(file), Some(clock)) = (&rec.recovered_from, rec.recovered_clock) {
        eprintln!(
            "serve: recovered from {file} at clock {clock} ({} rejected)",
            rec.rejected.len()
        );
    }
    for r in &rec.rejected {
        eprintln!("serve: rejected snapshot {}: {}", r.file, r.error);
    }
    for t in &outcome.trips {
        eprintln!(
            "serve: watchdog trip ({} restart(s)): {t}",
            outcome.restarts
        );
    }
    if args.has("recovery-report") {
        let path = args.get("recovery-report", "");
        std::fs::write(path, rec.to_json())
            .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        eprintln!("serve: wrote recovery report to {path}");
    }
    if outcome.killed {
        eprintln!(
            "serve: killed at clock {} (deterministic kill switch); \
             the ring holds the recoverable state",
            outcome.final_clock
        );
        // The crash drill expects a SIGKILL-shaped exit.
        std::process::exit(137);
    }
    let result = outcome
        .result
        .ok_or_else(|| ArgError("service ended without a final report".into()))?;
    let rendered = render_report(&result.report, args.get("report", "table"))?;
    write_or_print(args.flags.get("out").map(String::as_str), &rendered)
}

fn cmd_figures(args: &Args) -> Result<(), ArgError> {
    let which = args.get("fig", "all");
    let figs: Vec<Figure> = if which == "all" {
        Figure::ALL.to_vec()
    } else {
        vec![Figure::parse(which).ok_or_else(|| ArgError(format!("unknown figure {which:?}")))?]
    };
    let max_tasks = args.get_num("max-tasks", 10_000usize)?;
    let jobs = parse_jobs(args)?;
    let seed = args.get_num("seed", 2012u64)?;
    // Explicit --tasks 1000,2000,... overrides the default ladder.
    let task_counts = if args.has("tasks") {
        args.get_list("tasks", &[])?
    } else {
        default_task_counts(max_tasks)
    };
    let mut node_counts: Vec<usize> = figs.iter().map(|f| f.node_count()).collect();
    // TIEBREAK: usize keys with dedup below — equal elements are
    // indistinguishable.
    node_counts.sort_unstable();
    node_counts.dedup();
    eprintln!(
        "running grid: nodes {node_counts:?} x modes [full, partial] x tasks {task_counts:?} \
         (seed {seed}, jobs {})",
        if jobs == 0 {
            "auto".to_string()
        } else {
            jobs.to_string()
        }
    );
    let grid = ExperimentGrid::run_with_backend(
        &node_counts,
        &task_counts,
        seed,
        jobs,
        parse_search(args)?,
    );
    let out_dir = args.get("out-dir", "");
    for fig in figs {
        let series = grid.figure(fig);
        let csv = series.to_csv();
        let agreement = series.agreement_with_paper();
        println!(
            "{fig}: {} nodes, {} — paper-direction agreement {:.0}%",
            fig.node_count(),
            fig.metric_name(),
            agreement * 100.0
        );
        if out_dir.is_empty() {
            print!("{csv}");
        } else {
            std::fs::create_dir_all(out_dir)
                .map_err(|e| ArgError(format!("creating {out_dir}: {e}")))?;
            let path = Path::new(out_dir).join(format!("fig{}.csv", fig.id()));
            std::fs::write(&path, csv)
                .map_err(|e| ArgError(format!("writing {}: {e}", path.display())))?;
            println!("  -> {}", path.display());
        }
    }
    Ok(())
}

fn cmd_ablations(args: &Args) -> Result<(), ArgError> {
    let which = args.get("which", "all");
    let mode = parse_mode(args.get("mode", "partial"))?;
    let mut base = SimParams::paper(
        args.get_num("nodes", 100usize)?,
        args.get_num("tasks", 2_000usize)?,
        mode,
    );
    base.seed = args.get_num("seed", 7u64)?;
    let threads = parse_jobs(args)?;
    let run_a1 = which == "all" || which == "a1";
    let run_a2 = which == "all" || which == "a2";
    let run_a3 = which == "all" || which == "a3";
    let run_a4 = which == "all" || which == "a4";
    let run_a5 = which == "all" || which == "a5";
    if !(run_a1 || run_a2 || run_a3 || run_a4 || run_a5) {
        return Err(ArgError(format!("unknown --which {which:?}")));
    }
    if run_a1 {
        println!(
            "A1 — allocation strategies ({} nodes, {} tasks):",
            base.total_nodes, base.total_tasks
        );
        println!("  strategy      wasted-area  waiting-time  sched-steps  discarded");
        for (label, m) in ablations::policy_comparison(&base, threads) {
            println!(
                "  {label:<13} {:>11.2} {:>13.1} {:>12.1} {:>10}",
                m.avg_wasted_area_per_task,
                m.avg_waiting_time_per_task,
                m.avg_scheduling_steps_per_task,
                m.total_discarded_tasks
            );
        }
    }
    if run_a2 {
        let (lists, naive) = ablations::datastructure_comparison(&base);
        println!("A2 — idle/busy lists vs naive scans:");
        println!(
            "  search steps: lists {} vs naive {} ({:.1}x)",
            lists.scheduler_search_length,
            naive.scheduler_search_length,
            naive.scheduler_search_length as f64 / lists.scheduler_search_length.max(1) as f64
        );
    }
    if run_a3 {
        let (with_q, without) = ablations::suspension_comparison(&base);
        println!("A3 — suspension queue on/off:");
        println!(
            "  discarded: with {} vs without {}; avg wait: {:.1} vs {:.1}",
            with_q.total_discarded_tasks,
            without.total_discarded_tasks,
            with_q.avg_waiting_time_per_task,
            without.avg_waiting_time_per_task
        );
    }
    if run_a4 {
        let mut small = base.clone();
        small.total_tasks = small.total_tasks.min(300);
        let (event, ticked) = ablations::driver_comparison(&small);
        println!("A4 — event-driven vs tick-stepped drivers:");
        println!(
            "  metrics identical: {} (simulated {} ticks)",
            event == ticked,
            event.total_simulation_time
        );
    }
    if run_a5 {
        let (scalar, contiguous) = ablations::placement_comparison(&base);
        println!("A5 — scalar area model vs contiguous 1-D placement:");
        println!(
            "  completed: scalar {} vs contiguous {}; discarded: {} vs {}",
            scalar.total_tasks_completed,
            contiguous.total_tasks_completed,
            scalar.total_discarded_tasks,
            contiguous.total_discarded_tasks
        );
        println!(
            "  avg wait: {:.1} vs {:.1}; end-of-run fragmentation: {:.3} vs {:.3}",
            scalar.avg_waiting_time_per_task,
            contiguous.avg_waiting_time_per_task,
            scalar.mean_fragmentation_end,
            contiguous.mean_fragmentation_end
        );
    }
    Ok(())
}

/// `bench-search`: measure both search backends (micro + end-to-end)
/// and write the results as `BENCH_search.json`-schema JSON.
fn cmd_bench_search(args: &Args) -> Result<(), ArgError> {
    let seed = args.get_num("seed", 2012u64)?;
    let rounds = args.get_num("rounds", 512usize)?;
    let node_ladder: Vec<usize> = if args.has("nodes") {
        args.get_list("nodes", &[])?
    } else {
        vec![100, 200]
    };
    let task_ladder: Vec<usize> = if args.has("tasks") {
        args.get_list("tasks", &[])?
    } else {
        vec![500, 1_000, 2_000]
    };
    eprintln!(
        "benchmarking search backends: nodes {node_ladder:?} x tasks {task_ladder:?}, \
         {rounds} micro rounds (seed {seed})"
    );
    let report = dreamsim_sweep::run_search_bench(&node_ladder, &task_ladder, seed, rounds);
    for p in &report.micro {
        println!(
            "micro  n{:<5} linear {:>11} ns  indexed {:>11} ns  speedup {:.2}x",
            p.nodes, p.linear_ns, p.indexed_ns, p.speedup
        );
    }
    for p in &report.end_to_end {
        println!(
            "run    n{:<5} t{:<6} linear {:>11} ns  indexed {:>11} ns  speedup {:.2}x  \
             reports identical: {}",
            p.nodes, p.tasks, p.linear_ns, p.indexed_ns, p.speedup, p.reports_identical
        );
    }
    let out = args.get("out", "BENCH_search.json");
    std::fs::write(out, report.to_json()).map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!(
        "wrote {out} (peak micro speedup {:.2}x)",
        report.peak_micro_speedup()
    );
    Ok(())
}

/// `bench-grid`: time the figures grid serially under every backend and
/// in parallel across a jobs ladder, and write `BENCH_grid.json`.
fn cmd_bench_grid(args: &Args) -> Result<(), ArgError> {
    let seed = args.get_num("seed", 2012u64)?;
    let node_ladder: Vec<usize> = if args.has("nodes") {
        args.get_list("nodes", &[])?
    } else {
        vec![100, 200]
    };
    let task_ladder: Vec<usize> = if args.has("tasks") {
        args.get_list("tasks", &[])?
    } else {
        vec![500, 1_000, 2_000]
    };
    let jobs_ladder: Vec<usize> = if args.has("jobs") {
        args.get_list("jobs", &[])?
    } else {
        vec![1, 2, 4]
    };
    if jobs_ladder.is_empty() || jobs_ladder.contains(&0) {
        return Err(ArgError("--jobs ladder entries must be > 0".into()));
    }
    eprintln!(
        "benchmarking grid: nodes {node_ladder:?} x tasks {task_ladder:?}, jobs {jobs_ladder:?} \
         (seed {seed})"
    );
    let report = dreamsim_sweep::run_grid_bench(&node_ladder, &task_ladder, seed, &jobs_ladder);
    for p in &report.serial {
        println!(
            "serial n{:<5} linear {:>12} ns  indexed {:>12} ns  auto {:>12} ns  \
             (auto/best {:.3})",
            p.nodes, p.linear_ns, p.indexed_ns, p.auto_ns, p.auto_vs_best
        );
    }
    for p in &report.parallel {
        println!(
            "grid   -j{:<4} {:>12} ns  speedup vs -j1 {:.2}x",
            p.jobs, p.wall_ns, p.speedup_vs_j1
        );
    }
    let out = args.get("out", "BENCH_grid.json");
    std::fs::write(out, report.to_json()).map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!(
        "wrote {out} ({} hardware threads, checksum {:016x}, all runs identical: {})",
        report.hardware_threads, report.checksum, report.checksums_identical
    );
    Ok(())
}

/// `bench-scale`: climb a node ladder timing the seed path (heap queue +
/// exact stats) against the scale path (calendar queue + quantile
/// sketch), record per-rung wall time and peak RSS, cross-check report
/// byte-identity at exact-capable sizes, and write `BENCH_scale.json`.
fn cmd_bench_scale(args: &Args) -> Result<(), ArgError> {
    let seed = args.get_num("seed", 2012u64)?;
    let node_ladder: Vec<usize> = if args.has("nodes") {
        args.get_list("nodes", &[])?
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    };
    if node_ladder.is_empty() || node_ladder.contains(&0) {
        return Err(ArgError("--nodes ladder entries must be > 0".into()));
    }
    let tasks_per_node = args.get_num("tasks-per-node", 2usize)?;
    if tasks_per_node == 0 {
        return Err(ArgError("--tasks-per-node must be > 0".into()));
    }
    // Default: cross-check every rung. The SoA store made full-ladder
    // verification affordable, so "not checked" is now opt-in.
    let verify_max_nodes = args.get_num("verify-max-nodes", usize::MAX)?;
    let reps = args.get_num("reps", 1usize)?;
    eprintln!(
        "benchmarking scale ladder: nodes {node_ladder:?} x {tasks_per_node} tasks/node, \
         cross-check up to {verify_max_nodes} nodes (seed {seed})"
    );
    let report =
        dreamsim_sweep::run_scale_bench(&node_ladder, tasks_per_node, seed, verify_max_nodes, reps);
    for r in &report.rungs {
        println!(
            "scale  n{:<8} t{:<8} heap+exact {:>13} ns  calendar+sketch {:>13} ns  \
             speedup {:.2}x  peak rss {:>9} kB  cross-checked: {}",
            r.nodes,
            r.tasks,
            r.heap_exact_ns,
            r.calendar_sketch_ns,
            r.speedup,
            r.peak_rss_kb,
            r.reports_cross_checked
        );
        println!(
            "       profile: sched {} hk {} store {} push {} pop {} stats {}",
            r.profile.scheduling_steps,
            r.profile.housekeeping_steps,
            r.profile.store_mutations,
            r.profile.events_pushed,
            r.profile.events_popped,
            r.profile.stats_samples
        );
    }
    let out = args.get("out", "BENCH_scale.json");
    std::fs::write(out, report.to_json()).map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!("wrote {out} ({} rungs)", report.rungs.len());
    if args.has("check-against") {
        let baseline_path = args.get("check-against", "");
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| ArgError(format!("reading {baseline_path}: {e}")))?;
        let tolerance = args.get_num("tolerance", 25u64)? as f64 / 100.0;
        match report.check_against(&baseline, tolerance) {
            Ok(notes) => {
                for n in notes {
                    println!("check  {n}");
                }
                println!("phase counters within {:.0}% of {baseline_path}", tolerance * 100.0);
            }
            Err(failures) => {
                return Err(ArgError(format!(
                    "phase-counter regression vs {baseline_path}:\n{failures}"
                )));
            }
        }
    }
    Ok(())
}

/// `dreamsim bench-profile` — run one simulation and print the XML
/// report with the opt-in `<profile>` block: the deterministic per-phase
/// operation counters plus the heap-allocation count measured by the
/// binary's counting allocator.
fn cmd_bench_profile(args: &Args) -> Result<(), ArgError> {
    let params = params_from_args(args)?;
    let backends = Backends::from_args(args)?;
    let strategy = parse_strategy(args.get("policy", "best-fit"))?;
    let policy = CaseStudyScheduler::with_strategy(strategy);
    let source = SyntheticSource::from_params(&params);
    let sim = backends
        .apply(Simulation::new(params, source, policy).map_err(|e| ArgError(e.to_string()))?);
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = sim
        .run_with(&RunOptions::default())
        .map_err(|e| ArgError(e.to_string()))?;
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let mut profile = result.profile;
    profile.allocations = Some(allocs);
    let rendered = result.report.to_xml_with_profile(&profile);
    write_or_print(args.flags.get("out").map(String::as_str), &rendered)
}

/// `dreamsim chaos` — run a chaos campaign: every scenario executes
/// under continuous audit, followed (unless --no-drill) by a
/// kill-and-resume drill whose resumed report must be byte-identical to
/// the baseline.
fn cmd_chaos(args: &Args) -> Result<(), ArgError> {
    use dreamsim_sweep::chaos;
    let text = if args.has("script") {
        let path = args.get("script", "");
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?
    } else {
        chaos::BUILTIN_CAMPAIGN.to_string()
    };
    let scenarios = chaos::parse_campaign(&text).map_err(|e| ArgError(e.to_string()))?;
    let mut opts = chaos::CampaignOptions::default();
    if args.has("no-drill") {
        opts.drill = false;
    }
    if args.has("audit-every") {
        let every = args.get_num("audit-every", 0u64)?;
        if every == 0 {
            return Err(ArgError("--audit-every must be > 0".into()));
        }
        opts.audit_every = Some(every);
    }
    let work_dir = std::path::PathBuf::from(args.get("work-dir", "chaos-work"));
    eprintln!(
        "chaos campaign: {} scenario(s), audit every {} ticks, drills {}",
        scenarios.len(),
        opts.audit_every
            .map_or_else(|| "off".into(), |t| t.to_string()),
        if opts.drill { "on" } else { "off" }
    );
    let report =
        chaos::run_campaign(&scenarios, &opts, &work_dir).map_err(|e| ArgError(e.to_string()))?;
    for c in &report.cases {
        let drill = match c.drill {
            Some(d) => format!(
                "drill resumed t={} {}",
                d.checkpoint_at,
                if d.report_identical {
                    "byte-identical"
                } else {
                    "DIVERGED"
                }
            ),
            None => "drill skipped".to_string(),
        };
        println!(
            "{}: completed {} / discarded {} (shed {}, degraded {}, lost {}) | \
             outages {} downtime {} mttr {:.1} | makespan {} | {}",
            c.name,
            c.completed,
            c.discarded,
            c.shed,
            c.degraded,
            c.lost,
            c.domain_outages,
            c.domain_downtime.iter().sum::<u64>(),
            c.mean_time_to_recover,
            c.makespan,
            drill
        );
    }
    let format = args.get("report", "csv");
    let rendered = match format {
        "csv" => report.to_csv(),
        "json" => report.to_json(),
        other => return Err(ArgError(format!("unknown --report format {other:?}"))),
    };
    write_or_print(args.flags.get("out").map(String::as_str), &rendered)
}

/// `dreamsim lint` — the determinism static-analysis pass, sharing its
/// engine with the standalone `dreamsim-lint` binary and the CI gate.
fn cmd_lint(args: &Args) -> Result<(), ArgError> {
    use dreamsim_lint as lint;
    if args.has("list-rules") {
        print!("{}", lint::rule_catalogue());
        return Ok(());
    }
    let root = Path::new(args.get("root", "."));
    let format: lint::Format = args.get("format", "text").parse().map_err(ArgError)?;
    let report = if args.positionals.is_empty() {
        lint::lint_workspace(root)
    } else {
        let files: Vec<std::path::PathBuf> = args
            .positionals
            .iter()
            .map(std::path::PathBuf::from)
            .collect();
        lint::lint_files(root, &files)
    }
    .map_err(|e| ArgError(format!("lint scan failed: {e}")))?;
    let rendered = lint::render(&report, format);
    match args.flags.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &rendered)
                .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            println!(
                "lint: {} finding(s), {} suppression(s), {} file(s) -> {path}",
                report.findings.len(),
                report.suppressions.len(),
                report.files_scanned
            );
        }
        _ => print!("{rendered}"),
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(ArgError(format!(
            "lint: {} unsuppressed finding(s)",
            report.findings.len()
        )))
    }
}

fn cmd_trace(args: &Args) -> Result<(), ArgError> {
    let out = args.get("out", "");
    if out.is_empty() {
        return Err(ArgError("trace: --out FILE is required".into()));
    }
    let tasks = args.get_num("tasks", 1_000usize)?;
    let seed = args.get_num("seed", 0x5EEDu64)?;
    let mut p = SimParams::default();
    p.total_tasks = tasks;
    p.seed = seed;
    let source = SyntheticSource::from_params(&p);
    let mut recorder = RecordingSource::new(source);
    let mut rng = Rng::seed_from(seed);
    use dreamsim_engine::sim::{SourceYield, TaskSource as _};
    for _ in 0..tasks {
        match recorder.next_task(0, &mut rng) {
            SourceYield::Task(_) => {}
            _ => break,
        }
    }
    std::fs::write(out, recorder.to_trace())
        .map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    println!("wrote {tasks} tasks to {out}");
    Ok(())
}
