//! End-to-end tests of the `dreamsim` binary.

use std::process::Command;

fn dreamsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dreamsim"))
}

fn run_ok(args: &[&str]) -> String {
    let out = dreamsim().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "dreamsim {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn help_prints_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("USAGE"));
    assert!(out.contains("dreamsim run"));
    assert!(out.contains("figures"));
}

#[test]
fn no_args_prints_usage() {
    let out = run_ok(&[]);
    assert!(out.contains("USAGE"));
}

#[test]
fn run_table_report() {
    let out = run_ok(&[
        "run", "--nodes", "20", "--tasks", "100", "--mode", "partial", "--seed", "3",
    ]);
    assert!(
        out.contains("tasks generated / completed / discarded : 100 /"),
        "{out}"
    );
    assert!(out.contains("avg waiting time per task"));
}

#[test]
fn run_xml_and_json_reports() {
    let xml = run_ok(&[
        "run", "--nodes", "15", "--tasks", "50", "--report", "xml", "--seed", "4",
    ]);
    assert!(xml.starts_with("<?xml"));
    assert!(xml.contains("</dreamsim-report>"));
    let json = run_ok(&[
        "run", "--nodes", "15", "--tasks", "50", "--report", "json", "--seed", "4",
    ]);
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(v["metrics"]["total_tasks_generated"], 50);
}

#[test]
fn run_csv_report_matches_header() {
    let csv = run_ok(&[
        "run", "--nodes", "10", "--tasks", "30", "--report", "csv", "--seed", "5",
    ]);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 2);
    assert_eq!(
        lines[0].split(',').count(),
        lines[1].split(',').count(),
        "row arity matches header"
    );
}

#[test]
fn unknown_subcommand_fails_with_message() {
    let out = dreamsim().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"), "{err}");
}

#[test]
fn invalid_flag_value_fails() {
    let out = dreamsim().args(["run", "--tasks", "abc"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--tasks"));
}

#[test]
fn trace_generate_then_replay_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dreamsim-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("wl.trace");
    let trace_str = trace.to_str().unwrap();
    let out = run_ok(&["trace", "--out", trace_str, "--tasks", "40", "--seed", "8"]);
    assert!(out.contains("wrote 40 tasks"));
    let replay = run_ok(&[
        "run", "--replay", trace_str, "--nodes", "10", "--tasks", "40", "--seed", "8", "--report",
        "csv",
    ]);
    assert!(replay.lines().nth(1).unwrap().contains(",40,"), "{replay}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figures_single_figure_to_dir() {
    let dir = std::env::temp_dir().join(format!("dreamsim-figs-{}", std::process::id()));
    let dir_str = dir.to_str().unwrap();
    let out = run_ok(&[
        "figures",
        "--fig",
        "9b",
        "--tasks",
        "100,200",
        "--seed",
        "6",
        "--out-dir",
        dir_str,
    ]);
    assert!(out.contains("Figure 9b"), "{out}");
    let csv = std::fs::read_to_string(dir.join("fig9b.csv")).expect("csv written");
    assert!(csv.starts_with("tasks,without_partial,with_partial"));
    assert_eq!(csv.lines().count(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn swf_import_runs_end_to_end() {
    let dir = std::env::temp_dir().join(format!("dreamsim-swf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let swf = dir.join("trace.swf");
    std::fs::write(
        &swf,
        "; Version: 2.2\n\
         1 0 -1 120 4 -1 -1 8 -1 -1 1 1 1 -1 -1 -1 -1 -1\n\
         2 60 -1 300 16 -1 -1 32 -1 -1 1 1 1 -1 -1 -1 -1 -1\n",
    )
    .unwrap();
    let out = run_ok(&[
        "run",
        "--swf",
        swf.to_str().unwrap(),
        "--nodes",
        "10",
        "--seed",
        "2",
        "--report",
        "csv",
    ]);
    assert!(
        out.lines().nth(1).unwrap().contains(",2,"),
        "two jobs imported: {out}"
    );
    // Malformed SWF fails cleanly.
    std::fs::write(&swf, "1 2 3\n").unwrap();
    let bad = dreamsim()
        .args(["run", "--swf", swf.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("SWF line 1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_resume_reproduces_fault_run_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("dreamsim-cli-cp-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let dir_str = dir.to_str().unwrap();
    let full = dir.join("full.xml");
    // Uninterrupted fault-injection run, auditing continuously and
    // dropping periodic checkpoints along the way.
    run_ok(&[
        "run",
        "--nodes",
        "12",
        "--tasks",
        "120",
        "--seed",
        "42",
        "--mttf",
        "4000",
        "--reconfig-fail-prob",
        "0.1",
        "--task-fail-prob",
        "0.05",
        "--audit",
        "--checkpoint-every",
        "3000",
        "--checkpoint-dir",
        dir_str,
        "--report",
        "xml",
        "--out",
        full.to_str().unwrap(),
    ]);
    let mut cps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "dsc"))
        .collect();
    cps.sort();
    assert!(cps.len() >= 2, "expected several checkpoints, got {cps:?}");
    // No leftover temp files from the atomic write protocol.
    assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
        .unwrap()
        .file_name()
        .to_string_lossy()
        .ends_with(".tmp")));
    // Resume from a mid-run checkpoint: the report must be bit-identical.
    let mid = &cps[cps.len() / 2];
    let resumed = dir.join("resumed.xml");
    let out = dreamsim()
        .args([
            "run",
            "--resume-from",
            mid.to_str().unwrap(),
            "--report",
            "xml",
            "--out",
            resumed.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let full_bytes = std::fs::read(&full).unwrap();
    let resumed_bytes = std::fs::read(&resumed).unwrap();
    assert_eq!(full_bytes, resumed_bytes, "resumed report diverged");
    // A corrupted checkpoint is rejected with a CRC diagnostic.
    let mut bytes = std::fs::read(mid).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x01;
    let bad = dir.join("bad.dsc");
    std::fs::write(&bad, bytes).unwrap();
    let out = dreamsim()
        .args(["run", "--resume-from", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("CRC"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_auto_accepted_and_report_matches_explicit_backends() {
    let run = |search: &str| {
        run_ok(&[
            "run", "--nodes", "20", "--tasks", "100", "--seed", "3", "--search", search,
            "--report", "csv",
        ])
    };
    let auto = run("auto");
    assert_eq!(auto, run("linear"), "auto vs linear");
    assert_eq!(auto, run("indexed"), "auto vs indexed");
    let bad = dreamsim()
        .args(["run", "--search", "bogus"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("--search must be auto, linear, or indexed")
    );
}

#[test]
fn figures_output_invariant_across_jobs() {
    let base = std::env::temp_dir().join(format!("dreamsim-figs-jobs-{}", std::process::id()));
    let csv_at = |jobs: &str| {
        let dir = base.join(format!("j{jobs}"));
        run_ok(&[
            "figures",
            "--fig",
            "9b",
            "--tasks",
            "100,200",
            "--seed",
            "6",
            "--jobs",
            jobs,
            "--out-dir",
            dir.to_str().unwrap(),
        ]);
        std::fs::read_to_string(dir.join("fig9b.csv")).expect("csv written")
    };
    let j1 = csv_at("1");
    assert_eq!(j1, csv_at("2"), "figures diverged at --jobs 2");
    assert_eq!(j1, csv_at("8"), "figures diverged at --jobs 8");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn bench_grid_writes_json_report() {
    let dir = std::env::temp_dir().join(format!("dreamsim-bench-grid-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("BENCH_grid.json");
    let stdout = run_ok(&[
        "bench-grid",
        "--nodes",
        "20",
        "--tasks",
        "100",
        "--jobs",
        "1,2",
        "--seed",
        "7",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(stdout.contains("all runs identical: true"), "{stdout}");
    let json = std::fs::read_to_string(&out_path).expect("report written");
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(v["benchmark"], "grid-parallel");
    assert_eq!(v["seed"], 7);
    assert!(v["hardware_threads"].as_u64().unwrap() >= 1);
    assert_eq!(v["serial"][0]["nodes"], 20);
    assert_eq!(v["parallel"][0]["jobs"], 1);
    assert_eq!(v["parallel"][1]["jobs"], 2);
    assert_eq!(v["checksums_identical"], true);
    // A zero entry in the jobs ladder is rejected up front.
    let bad = dreamsim()
        .args(["bench-grid", "--jobs", "0,2"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--jobs ladder"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn event_queue_and_stats_backends_match_defaults_byte_for_byte() {
    // 100 tasks sits far below the sketch's 4096-sample exact window, so
    // every backend combination must render the identical report.
    let run = |queue: &str, stats: &str| {
        run_ok(&[
            "run",
            "--nodes",
            "20",
            "--tasks",
            "100",
            "--seed",
            "3",
            "--event-queue",
            queue,
            "--stats",
            stats,
            "--report",
            "csv",
        ])
    };
    let base = run("heap", "exact");
    assert_eq!(base, run("calendar", "exact"), "calendar queue diverged");
    assert_eq!(base, run("heap", "sketch"), "sketch stats diverged");
    assert_eq!(
        base,
        run("calendar", "sketch"),
        "combined backends diverged"
    );
    let bad_queue = dreamsim()
        .args(["run", "--event-queue", "bogus"])
        .output()
        .unwrap();
    assert!(!bad_queue.status.success());
    assert!(String::from_utf8_lossy(&bad_queue.stderr)
        .contains("--event-queue must be heap or calendar"));
    let bad_stats = dreamsim()
        .args(["run", "--stats", "bogus"])
        .output()
        .unwrap();
    assert!(!bad_stats.status.success());
    assert!(String::from_utf8_lossy(&bad_stats.stderr).contains("--stats must be exact or sketch"));
}

#[test]
fn bench_scale_writes_json_report() {
    let dir = std::env::temp_dir().join(format!("dreamsim-bench-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("BENCH_scale.json");
    let stdout = run_ok(&[
        "bench-scale",
        "--nodes",
        "20,40",
        "--tasks-per-node",
        "5",
        "--seed",
        "7",
        "--verify-max-nodes",
        "40",
        "--reps",
        "1",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(stdout.contains("cross-checked: true"), "{stdout}");
    let json = std::fs::read_to_string(&out_path).expect("report written");
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(v["benchmark"], "scale-ladder");
    assert_eq!(v["seed"], 7);
    assert_eq!(v["rungs"][0]["nodes"], 20);
    assert_eq!(v["rungs"][0]["tasks"], 100);
    assert_eq!(v["rungs"][1]["nodes"], 40);
    assert_eq!(v["rungs"][1]["reports_cross_checked"], true);
    // A zero entry in the node ladder is rejected up front.
    let bad = dreamsim()
        .args(["bench-scale", "--nodes", "0,20"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--nodes ladder"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_missing_path_is_a_typed_error_not_a_panic() {
    let missing = "/no/such/dir/checkpoint-000000001000.dsc";
    let out = dreamsim()
        .args(["run", "--resume-from", missing])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains(missing), "error names the path: {err}");
    assert!(!err.contains("panicked"), "typed error, not a panic: {err}");
}

#[test]
fn serve_ring_dir_that_is_a_file_is_a_typed_error() {
    let dir = std::env::temp_dir().join(format!("dreamsim-serve-baddir-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("not-a-dir");
    std::fs::write(&file, b"occupied").unwrap();
    let out = dreamsim()
        .args([
            "serve",
            "--horizon",
            "500",
            "--ring-dir",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains(file.to_str().unwrap()),
        "error names the offending path: {err}"
    );
    assert!(!err.contains("panicked"), "typed error, not a panic: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_kill_recover_reproduces_uninterrupted_report() {
    let dir = std::env::temp_dir().join(format!("dreamsim-serve-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let base_ring = dir.join("ring-base");
    let crash_ring = dir.join("ring-crash");
    let base_xml = dir.join("base.xml");
    let recovered_xml = dir.join("recovered.xml");
    let common = |ring: &std::path::Path, extra: &[&str]| {
        let mut v = vec![
            "serve".to_string(),
            "--nodes".into(),
            "12".into(),
            "--seed".into(),
            "9".into(),
            "--horizon".into(),
            "4000".into(),
            "--day-length".into(),
            "1000".into(),
            "--amplitude".into(),
            "300".into(),
            "--window".into(),
            "500".into(),
            "--ring-every".into(),
            "800".into(),
            "--ring-dir".into(),
            ring.to_str().unwrap().into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    // Uninterrupted baseline.
    let out = dreamsim()
        .args(common(
            &base_ring,
            &["--report", "xml", "--out", base_xml.to_str().unwrap()],
        ))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "baseline serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Crash mid-window: exit code 137, no final report.
    let out = dreamsim()
        .args(common(&crash_ring, &["--kill-at", "2000"]))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(137), "kill switch exits 137");
    // Auto-recover by rerunning the same command without the kill.
    let out = dreamsim()
        .args(common(
            &crash_ring,
            &[
                "--report",
                "xml",
                "--out",
                recovered_xml.to_str().unwrap(),
                "--recovery-report",
                dir.join("recovery.json").to_str().unwrap(),
            ],
        ))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "recovery serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("recovered from checkpoint-"), "{err}");
    let base = std::fs::read(&base_xml).unwrap();
    let recovered = std::fs::read(&recovered_xml).unwrap();
    assert_eq!(base, recovered, "recovered report diverged from baseline");
    // The service block made it into the XML.
    assert!(
        String::from_utf8_lossy(&base).contains("<windows-closed>"),
        "service window metrics present"
    );
    // The recovery report is valid JSON naming the ring.
    let rec: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("recovery.json")).unwrap())
            .expect("valid recovery JSON");
    assert_eq!(rec["fresh_start"], false);
    assert!(rec["recovered_from"]
        .as_str()
        .unwrap()
        .starts_with("checkpoint-"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ablations_run_end_to_end() {
    let out = run_ok(&[
        "ablations",
        "--which",
        "all",
        "--nodes",
        "15",
        "--tasks",
        "120",
        "--seed",
        "2",
    ]);
    assert!(out.contains("A1"), "{out}");
    assert!(out.contains("A2"));
    assert!(out.contains("A3"));
    assert!(out.contains("metrics identical: true"), "{out}");
}
