//! The Section V case-study scheduling algorithm (Fig. 5 + Algorithm 1).
//!
//! For every incoming task:
//!
//! 1. **Config lookup** — `FindPreferredConfig()`; if the preferred
//!    configuration is absent, `FindClosestConfig()` (smallest
//!    configuration strictly larger than the preferred one's area); if
//!    neither exists, **discard**.
//! 2. **Allocation** — the best idle instance of the target
//!    configuration (minimum `AvailableArea` under the default
//!    [`AllocationStrategy::BestFit`]); no reconfiguration cost.
//! 3. **Configuration** — the best blank node that fits; pays
//!    `ConfigTime`.
//! 4. **Partial configuration** *(partial mode only)* — the node with
//!    the minimum sufficient spare region; pays `ConfigTime`.
//! 5. **(Partial) re-configuration** — `FindAnyIdleNode` (Algorithm 1):
//!    the first node whose free area plus reclaimable idle regions covers
//!    the configuration; evicts those regions and configures.
//! 6. **Suspension** — if some busy node could eventually host
//!    (`TotalArea` large enough), park in the suspension queue;
//!    otherwise **discard**.
//!
//! On every task completion the freed node is offered to the suspension
//! queue: the earliest suspended task that can run on that node — by
//! direct allocation onto the freed slot, by partial configuration into
//! spare area, or by evicting the node's idle regions — is resumed
//! (`RemoveTaskFromSusQueue`).

use dreamsim_engine::sim::{Decision, DiscardReason, Placement, Resume, SchedCtx, SchedulePolicy};
use dreamsim_engine::{PhaseKind, ReconfigMode};
use dreamsim_model::naive;
use dreamsim_model::store::Demand;
use dreamsim_model::{Area, ConfigId, EntryRef, NodeId, TaskId};

/// How the **allocation** phase picks among idle instances of the target
/// configuration. The paper uses best fit; the others exist for the
/// policy ablation (DESIGN.md A1) and the future-work load balancer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Minimum `AvailableArea` (the paper's choice).
    #[default]
    BestFit,
    /// First instance in list order.
    FirstFit,
    /// Maximum `AvailableArea`.
    WorstFit,
    /// Uniformly random idle instance.
    Random,
    /// Node with the fewest running tasks (load-balancing bias).
    LeastLoaded,
}

impl AllocationStrategy {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AllocationStrategy::BestFit => "best-fit",
            AllocationStrategy::FirstFit => "first-fit",
            AllocationStrategy::WorstFit => "worst-fit",
            AllocationStrategy::Random => "random",
            AllocationStrategy::LeastLoaded => "least-loaded",
        }
    }
}

/// The case-study scheduler.
#[derive(Clone, Debug, Default)]
pub struct CaseStudyScheduler {
    strategy: AllocationStrategy,
    /// Data-structure ablation (DESIGN.md A2): answer allocation
    /// searches by scanning every slot of every node instead of the
    /// per-configuration idle lists.
    naive_search: bool,
}

/// A feasible way to run a task on a specific node, computed read-only
/// during suspension-queue scans and enacted only for the chosen task.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Plan {
    /// The freed slot itself already holds the right configuration.
    Allocate(EntryRef),
    /// Spare area fits the configuration (partial mode).
    PartialConfigure,
    /// Evicting these idle slots frees enough area.
    Reconfigure(Vec<u32>),
}

impl CaseStudyScheduler {
    /// Paper-faithful scheduler: best-fit allocation, list-based search.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the allocation strategy (ablation A1).
    #[must_use]
    pub fn with_strategy(strategy: AllocationStrategy) -> Self {
        Self {
            strategy,
            naive_search: false,
        }
    }

    /// Answer allocation searches with naive full scans (ablation A2).
    #[must_use]
    pub fn with_naive_search(mut self, naive: bool) -> Self {
        self.naive_search = naive;
        self
    }

    /// The active allocation strategy.
    #[must_use]
    pub fn strategy(&self) -> AllocationStrategy {
        self.strategy
    }

    /// Step 1: resolve the task's preferred configuration to a concrete
    /// entry of the configuration list, caching the result on the task.
    fn resolve_config(&self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Option<ConfigId> {
        if let Some(c) = ctx.tasks.get(task).resolved_config {
            return Some(c);
        }
        let (pref, needed) = {
            let t = ctx.tasks.get(task);
            (t.preferred, t.needed_area)
        };
        let resolved = ctx
            .resources
            .find_preferred_config(pref, ctx.steps)
            .or_else(|| ctx.resources.find_closest_config(needed, ctx.steps));
        ctx.tasks.get_mut(task).resolved_config = resolved;
        resolved
    }

    /// The allocation-phase search, honouring strategy and the naive
    /// ablation.
    fn pick_idle(&self, ctx: &mut SchedCtx<'_>, config: ConfigId) -> Option<EntryRef> {
        if self.naive_search {
            return naive::find_best_idle_naive(ctx.resources, config, ctx.steps);
        }
        match self.strategy {
            AllocationStrategy::BestFit => ctx.resources.find_best_idle(config, ctx.steps),
            AllocationStrategy::FirstFit => ctx.resources.find_first_idle(config, ctx.steps),
            AllocationStrategy::WorstFit => ctx.resources.find_worst_idle(config, ctx.steps),
            AllocationStrategy::Random => {
                let all = ctx.resources.collect_idle(config, ctx.steps);
                if all.is_empty() {
                    None
                } else {
                    Some(all[ctx.rng.index(all.len())])
                }
            }
            AllocationStrategy::LeastLoaded => {
                let mut best: Option<(usize, EntryRef)> = None;
                for e in ctx.resources.collect_idle(config, ctx.steps) {
                    let load = ctx.resources.node(e.node).running_count();
                    if best.is_none_or(|(l, _)| load < l) {
                        best = Some((load, e));
                    }
                }
                best.map(|(_, e)| e)
            }
        }
    }

    /// Phases 2–5 of Fig. 5. Returns the placement if any phase
    /// succeeded; resources are already mutated.
    fn try_place(
        &mut self,
        ctx: &mut SchedCtx<'_>,
        task: TaskId,
        config: ConfigId,
    ) -> Option<Placement> {
        // Phase: Allocation.
        if let Some(entry) = self.pick_idle(ctx, config) {
            ctx.resources
                .assign_task(entry, task, ctx.steps)
                // INVARIANT: `pick_idle` only returns entries drawn from
                // the idle lists (or a naive scan for idle slots), and
                // nothing runs between the search and the assignment, so
                // the slot cannot have become busy. A failure here is
                // store corruption, which the engine's auditor reports
                // as a typed error before the policy ever sees the slot.
                .expect("idle entry accepts a task");
            return Some(Placement {
                task,
                entry,
                config,
                config_time: 0,
                phase: PhaseKind::Allocation,
            });
        }
        let (demand, ct) = {
            let c = ctx.resources.config(config);
            (Demand::of(c), c.config_time)
        };
        // Phase: Configuration (blank node).
        if let Some(node) = ctx.resources.find_best_blank(demand, ctx.steps) {
            return Some(self.configure_and_assign(
                ctx,
                task,
                config,
                node,
                ct,
                PhaseKind::Configuration,
            ));
        }
        // Phase: Partial configuration (partial mode only).
        if ctx.mode == ReconfigMode::Partial {
            if let Some(node) = ctx.resources.find_best_partially_blank(demand, ctx.steps) {
                return Some(self.configure_and_assign(
                    ctx,
                    task,
                    config,
                    node,
                    ct,
                    PhaseKind::PartialConfiguration,
                ));
            }
        }
        // Phase: (Partial) re-configuration — Algorithm 1.
        if let Some((node, evict)) = ctx.resources.find_any_idle_node(demand, ctx.steps) {
            ctx.resources
                .evict_idle_slots(node, &evict, ctx.steps)
                // INVARIANT: Algorithm 1 selected `evict` from the
                // node's currently idle slots and holds the mutable
                // borrow until eviction, so every listed slot is still
                // idle.
                .expect("Algorithm 1 returns idle slots");
            return Some(self.configure_and_assign(
                ctx,
                task,
                config,
                node,
                ct,
                PhaseKind::PartialReconfiguration,
            ));
        }
        None
    }

    fn configure_and_assign(
        &self,
        ctx: &mut SchedCtx<'_>,
        task: TaskId,
        config: ConfigId,
        node: NodeId,
        config_time: u64,
        phase: PhaseKind,
    ) -> Placement {
        let entry = ctx
            .resources
            .configure_slot(node, config, ctx.steps)
            // INVARIANT: every caller reaches this point straight from a
            // search (or eviction) that established the node has enough
            // free area for `config`.
            .expect("search guaranteed the area fits");
        ctx.resources
            .assign_task(entry, task, ctx.steps)
            // INVARIANT: a just-configured slot is idle by construction.
            .expect("fresh slot is idle");
        Placement {
            task,
            entry,
            config,
            config_time,
            phase,
        }
    }
}

impl SchedulePolicy for CaseStudyScheduler {
    fn name(&self) -> &'static str {
        "case-study"
    }

    fn state_label(&self) -> String {
        // Encodes the ablation knobs so that resuming a checkpoint with
        // a differently-configured scheduler is rejected up front: the
        // strategy changes placement order, and the naive-search
        // ablation changes StepCounter accounting.
        format!(
            "case-study/{}{}",
            self.strategy.label(),
            if self.naive_search { "/naive" } else { "" }
        )
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Decision {
        let Some(config) = self.resolve_config(ctx, task) else {
            return Decision::Discarded(DiscardReason::NoClosestConfig);
        };
        if let Some(placement) = self.try_place(ctx, task, config) {
            return Decision::Placed(placement);
        }
        let demand = Demand::of(ctx.resources.config(config));
        if ctx.suspension_enabled && ctx.resources.busy_candidate_exists(demand, ctx.steps) {
            ctx.suspension.push(task, ctx.steps);
            return Decision::Suspended;
        }
        Decision::Discarded(DiscardReason::NoFeasibleNode)
    }

    fn on_slot_freed(&mut self, ctx: &mut SchedCtx<'_>, freed: EntryRef) -> Vec<Resume> {
        let mut out = Vec::new();
        if ctx.suspension.is_empty() {
            return out;
        }
        let node = freed.node;
        // Scan the queue for a task this node can serve. Mode asymmetry
        // (see DESIGN.md §4): under FULL reconfiguration the freed node
        // already holds a complete, reusable configuration, so the
        // scheduler first looks for a queued task that runs on it as-is
        // (pure allocation — reconfiguring would throw away a good
        // bitstream); only if no queued task matches does it fall back
        // to FIFO-first reconfiguration. Under PARTIAL reconfiguration
        // the scheduler has "more options" (Sec. VI): it serves the
        // earliest queued task that fits the node at all, reconfiguring
        // regions as needed — which is exactly why the paper reports
        // higher reconfiguration counts for the partial scenario.
        let mut chosen: Option<(TaskId, Plan)> = None;
        let mut over_limit: Vec<TaskId> = Vec::new();
        {
            let SchedCtx {
                resources,
                tasks,
                suspension,
                steps,
                mode,
                max_sus_retries,
                ..
            } = ctx;
            let view = PlanView {
                resources,
                mode: *mode,
            };
            let freed_config = view.resources.node(node).slot(freed.slot).map(|s| s.config);
            let mut picked = None;
            if *mode == ReconfigMode::Full {
                // Pass 1: exact configuration reuse.
                if let Some(fc) = freed_config {
                    picked = suspension.remove_first_match(steps, |tid| {
                        if tasks.get(tid).resolved_config == Some(fc) {
                            chosen = Some((tid, Plan::Allocate(freed)));
                            true
                        } else {
                            false
                        }
                    });
                }
                // Pass 2: FIFO-first reconfiguration fallback.
                if picked.is_none() {
                    picked = suspension.remove_first_match(steps, |tid| {
                        let Some(config) = tasks.get(tid).resolved_config else {
                            return false;
                        };
                        let req = view.resources.config(config).req_area;
                        if let Some(plan) = view.plan(node, freed, config, req) {
                            chosen = Some((tid, plan));
                            true
                        } else {
                            false
                        }
                    });
                }
            } else {
                picked = suspension.remove_first_match(steps, |tid| {
                    let t = tasks.get(tid);
                    let Some(config) = t.resolved_config else {
                        return false;
                    };
                    let req = view.resources.config(config).req_area;
                    if let Some(plan) = view.plan(node, freed, config, req) {
                        chosen = Some((tid, plan));
                        true
                    } else {
                        false
                    }
                });
            }
            // A fully failed rescan means every queued task was examined
            // and found unplaceable: each accrues one retry (`SusRetry`).
            // On a successful pick only a prefix was examined; those
            // retries are not charged (the task list no longer encodes
            // the prefix boundary after removal).
            if picked.is_none() {
                let examined: Vec<TaskId> = suspension.iter().collect();
                for tid in examined {
                    let t = tasks.get_mut(tid);
                    t.sus_retry += 1;
                    if let Some(limit) = *max_sus_retries {
                        if t.sus_retry > limit {
                            over_limit.push(tid);
                        }
                    }
                }
            }
        }
        // Enact the chosen plan.
        if let Some((tid, plan)) = chosen {
            let config = ctx
                .tasks
                .get(tid)
                .resolved_config
                // INVARIANT: the scan closures above only choose a task
                // after reading its `resolved_config`, and nothing
                // clears that field between the scan and here.
                .expect("plan implies config");
            let ct = ctx.resources.config(config).config_time;
            let placement = match plan {
                Plan::Allocate(entry) => {
                    ctx.resources
                        .assign_task(entry, tid, ctx.steps)
                        // INVARIANT: `entry` is the slot whose task just
                        // completed; it was freed before this hook ran
                        // and only one plan is enacted per freed slot.
                        .expect("freed slot is idle");
                    Placement {
                        task: tid,
                        entry,
                        config,
                        config_time: 0,
                        phase: PhaseKind::Allocation,
                    }
                }
                Plan::PartialConfigure => self.configure_and_assign(
                    ctx,
                    tid,
                    config,
                    node,
                    ct,
                    PhaseKind::PartialConfiguration,
                ),
                Plan::Reconfigure(evict) => {
                    ctx.resources
                        .evict_idle_slots(node, &evict, ctx.steps)
                        // INVARIANT: the plan listed slots that were
                        // idle during the read-only scan, and no
                        // placement has touched this node since (one
                        // plan per freed slot).
                        .expect("planned slots are idle");
                    self.configure_and_assign(
                        ctx,
                        tid,
                        config,
                        node,
                        ct,
                        PhaseKind::PartialReconfiguration,
                    )
                }
            };
            out.push(Resume::Placed(placement));
        }
        // Discard over-limit tasks.
        for tid in over_limit {
            if ctx.suspension.remove_task(tid, ctx.steps) {
                out.push(Resume::Discarded {
                    task: tid,
                    reason: DiscardReason::RetryLimit,
                });
            }
        }
        out
    }

    fn on_node_repaired(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Vec<Resume> {
        // A repaired node is blank: offer it to the earliest suspended
        // task that fits its total area.
        let mut out = Vec::new();
        let total = ctx.resources.node(node).total_area;
        let mut chosen: Option<TaskId> = None;
        {
            let SchedCtx {
                resources,
                tasks,
                suspension,
                steps,
                ..
            } = ctx;
            suspension.remove_first_match(steps, |tid| {
                let Some(config) = tasks.get(tid).resolved_config else {
                    return false;
                };
                let cfg = resources.config(config);
                if cfg.req_area <= total && Demand::of(cfg).caps_ok(resources.node(node)) {
                    chosen = Some(tid);
                    true
                } else {
                    false
                }
            });
        }
        if let Some(tid) = chosen {
            // INVARIANT: the scan closure only set `chosen` after
            // reading `resolved_config` as `Some`.
            let config = ctx.tasks.get(tid).resolved_config.expect("checked above");
            let ct = ctx.resources.config(config).config_time;
            out.push(Resume::Placed(self.configure_and_assign(
                ctx,
                tid,
                config,
                node,
                ct,
                PhaseKind::Configuration,
            )));
        }
        out
    }
}

/// Read-only planning helper used inside the suspension-scan closure,
/// where the mutable context is partially borrowed.
struct PlanView<'a> {
    resources: &'a dreamsim_model::ResourceManager,
    mode: ReconfigMode,
}

impl PlanView<'_> {
    fn plan(&self, node: NodeId, freed: EntryRef, config: ConfigId, req: Area) -> Option<Plan> {
        let n = self.resources.node(node);
        if n.down {
            return None;
        }
        if let Some(slot) = n.slot(freed.slot) {
            if slot.config == config && slot.task.is_none() {
                return Some(Plan::Allocate(freed));
            }
        }
        // Fresh (re)configuration requires the node to offer the
        // configuration's capabilities (always true in paper runs).
        if !Demand::of(self.resources.config(config)).caps_ok(n) {
            return None;
        }
        if self.mode == ReconfigMode::Partial && n.can_host(req) {
            return Some(Plan::PartialConfigure);
        }
        let mut accum = n.available_area();
        let mut evict = Vec::new();
        for (idx, slot) in n.slots() {
            if slot.task.is_none() {
                accum += slot.area;
                evict.push(idx);
                if accum >= req && n.can_host_after_evicting(req, &evict) {
                    return Some(Plan::Reconfigure(evict));
                }
            }
        }
        None
    }
}
