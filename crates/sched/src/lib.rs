//! # dreamsim-sched
//!
//! Task scheduling policies for DReAMSim — the paper's core subsystem
//! "task scheduling manager", which "can implement different scheduling
//! policies to schedule tasks onto various nodes".
//!
//! The centerpiece is [`CaseStudyScheduler`], the Section V case-study
//! algorithm (Fig. 5 + Algorithm 1) that drives every figure in the
//! paper's evaluation. Its behaviour depends on the run's
//! [`ReconfigMode`](dreamsim_engine::ReconfigMode):
//!
//! * **Partial** — the four-phase pipeline *allocation → configuration →
//!   partial configuration → partial re-configuration*, then suspension
//!   or discard.
//! * **Full** — the one-node-one-task baseline: *allocation →
//!   configuration → re-configuration* (the two partial phases collapse:
//!   a node is only ever reconfigured whole).
//!
//! [`policies`] adds simpler allocation strategies (first-fit, worst-fit,
//! random) as drop-in variants for the policy ablation, and
//! [`balancer`] implements the load-balancing module the paper lists as
//! future work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balancer;
pub mod case_study;
pub mod policies;

pub use balancer::{LoadBalancer, LoadReport};
pub use case_study::{AllocationStrategy, CaseStudyScheduler};
pub use policies::{FirstFitScheduler, RandomScheduler, WorstFitScheduler};
