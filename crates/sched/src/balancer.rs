//! Load-balancing module.
//!
//! The paper's Section III lists a load-balancing module in the core
//! subsystem and Section VII names "implement load balancing manager to
//! perform a better load distribution among all the nodes" as future
//! work. This module implements that extension as an **analysis tool**
//! ([`LoadBalancer::report`], producing per-node utilization and
//! imbalance indices) — tasks in the DReAMSim model cannot migrate once
//! placed, so balancing acts at placement time through
//! [`AllocationStrategy::LeastLoaded`](crate::AllocationStrategy) and is
//! evaluated with these reports.

use dreamsim_model::{NodeState, ResourceManager};

/// Per-run load-distribution report.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadReport {
    /// Running-task count per node, in node order.
    pub running_per_node: Vec<usize>,
    /// Area utilization per node: configured area / total area.
    pub area_utilization: Vec<f64>,
    /// Fraction of nodes currently busy.
    pub busy_fraction: f64,
    /// Mean running tasks per node.
    pub mean_load: f64,
    /// Coefficient of variation of the per-node load (0 = perfectly
    /// balanced; larger = more skewed).
    pub load_cv: f64,
    /// Gini coefficient of the per-node load in \[0, 1\]
    /// (0 = perfectly equal).
    pub load_gini: f64,
}

/// Computes [`LoadReport`]s from resource-manager state.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadBalancer;

impl LoadBalancer {
    /// Construct the balancer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Snapshot the current load distribution.
    #[must_use]
    pub fn report(&self, rm: &ResourceManager) -> LoadReport {
        let nodes = rm.nodes();
        let running_per_node: Vec<usize> = nodes.iter().map(|n| n.running_count()).collect();
        let area_utilization: Vec<f64> = nodes
            .iter()
            .map(|n| {
                let used = n.total_area - n.available_area();
                used as f64 / n.total_area as f64
            })
            .collect();
        let busy = nodes
            .iter()
            .filter(|n| n.state() == NodeState::Busy)
            .count();
        let busy_fraction = busy as f64 / nodes.len().max(1) as f64;
        let (mean_load, load_cv) = mean_cv(&running_per_node);
        let load_gini = gini(&running_per_node);
        LoadReport {
            running_per_node,
            area_utilization,
            busy_fraction,
            mean_load,
            load_cv,
            load_gini,
        }
    }
}

fn mean_cv(xs: &[usize]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
    // lint: allow(r3) -- exact-zero guard on a sum of integer-valued samples, which f64 represents exactly
    if mean == 0.0 {
        return (0.0, 0.0);
    }
    let var = xs
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    (mean, var.sqrt() / mean)
}

fn gini(xs: &[usize]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = xs.iter().map(|&x| x as f64).sum();
    // lint: allow(r3) -- exact-zero guard on a sum of integer-valued samples, which f64 represents exactly
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
    sorted.sort_by(f64::total_cmp);
    // Gini = (2 Σ i·xᵢ)/(n Σ xᵢ) − (n+1)/n, with 1-based i over sorted x.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dreamsim_model::{Config, ConfigId, Node, NodeId, StepCounter, TaskId};

    fn rm_with_loads(loads: &[usize]) -> ResourceManager {
        let configs = vec![Config::new(ConfigId(0), 100, 10)];
        let nodes: Vec<Node> = (0..loads.len())
            .map(|i| Node::new(NodeId::from_index(i), 4000, 1))
            .collect();
        let mut rm = ResourceManager::new(nodes, configs);
        let mut s = StepCounter::new();
        let mut tid = 0u32;
        for (i, &l) in loads.iter().enumerate() {
            for _ in 0..l {
                let e = rm
                    .configure_slot(NodeId::from_index(i), ConfigId(0), &mut s)
                    .unwrap();
                rm.assign_task(e, TaskId(tid), &mut s).unwrap();
                tid += 1;
            }
        }
        rm
    }

    #[test]
    fn balanced_load_has_zero_cv_and_gini() {
        let rm = rm_with_loads(&[2, 2, 2, 2]);
        let r = LoadBalancer::new().report(&rm);
        assert_eq!(r.running_per_node, vec![2, 2, 2, 2]);
        assert!(r.load_cv.abs() < 1e-12);
        assert!(r.load_gini.abs() < 1e-12);
        assert!((r.busy_fraction - 1.0).abs() < 1e-12);
        assert!((r.mean_load - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_load_has_positive_indices() {
        let rm = rm_with_loads(&[8, 0, 0, 0]);
        let r = LoadBalancer::new().report(&rm);
        assert!(r.load_cv > 1.0, "cv={}", r.load_cv);
        // All mass on one of four nodes: Gini = 3/4.
        assert!((r.load_gini - 0.75).abs() < 1e-9, "gini={}", r.load_gini);
        assert!((r.busy_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn idle_cluster_is_all_zero() {
        let rm = rm_with_loads(&[0, 0]);
        let r = LoadBalancer::new().report(&rm);
        assert_eq!(r.mean_load, 0.0);
        assert_eq!(r.load_cv, 0.0);
        assert_eq!(r.load_gini, 0.0);
        assert_eq!(r.busy_fraction, 0.0);
    }

    #[test]
    fn area_utilization_reflects_configured_area() {
        let rm = rm_with_loads(&[1, 0]);
        let r = LoadBalancer::new().report(&rm);
        assert!((r.area_utilization[0] - 100.0 / 4000.0).abs() < 1e-12);
        assert_eq!(r.area_utilization[1], 0.0);
    }

    #[test]
    fn gini_of_moderate_skew_between_zero_and_one() {
        let rm = rm_with_loads(&[1, 2, 3, 4]);
        let r = LoadBalancer::new().report(&rm);
        assert!(
            r.load_gini > 0.0 && r.load_gini < 0.5,
            "gini={}",
            r.load_gini
        );
    }
}
