//! Alternative allocation policies, demonstrating the framework claim
//! that "the task scheduling manager can implement different scheduling
//! policies" and feeding the policy ablation (DESIGN.md A1).
//!
//! Each wrapper is the case-study pipeline with a different
//! allocation-phase strategy; the configuration/partial/reconfiguration
//! phases and suspension semantics are identical, isolating the effect
//! of the idle-instance choice.

use crate::case_study::{AllocationStrategy, CaseStudyScheduler};
use dreamsim_engine::sim::{Decision, Resume, SchedCtx, SchedulePolicy};
use dreamsim_model::{EntryRef, NodeId, TaskId};

macro_rules! wrapper_policy {
    ($(#[$doc:meta])* $name:ident, $strategy:expr, $label:literal) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            inner: CaseStudyScheduler,
        }

        impl $name {
            /// Construct the policy.
            #[must_use]
            pub fn new() -> Self {
                Self {
                    inner: CaseStudyScheduler::with_strategy($strategy),
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl SchedulePolicy for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn schedule(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Decision {
                self.inner.schedule(ctx, task)
            }

            fn on_slot_freed(&mut self, ctx: &mut SchedCtx<'_>, freed: EntryRef) -> Vec<Resume> {
                self.inner.on_slot_freed(ctx, freed)
            }

            fn on_node_repaired(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Vec<Resume> {
                self.inner.on_node_repaired(ctx, node)
            }
        }
    };
}

wrapper_policy!(
    /// Allocation picks the first idle instance in list order.
    FirstFitScheduler,
    AllocationStrategy::FirstFit,
    "first-fit"
);

wrapper_policy!(
    /// Allocation picks the idle instance on the node with the largest
    /// available area.
    WorstFitScheduler,
    AllocationStrategy::WorstFit,
    "worst-fit"
);

wrapper_policy!(
    /// Allocation picks a uniformly random idle instance.
    RandomScheduler,
    AllocationStrategy::Random,
    "random"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrappers_report_their_names_and_strategies() {
        assert_eq!(FirstFitScheduler::new().name(), "first-fit");
        assert_eq!(WorstFitScheduler::new().name(), "worst-fit");
        assert_eq!(RandomScheduler::new().name(), "random");
        assert_eq!(
            FirstFitScheduler::default().inner.strategy(),
            AllocationStrategy::FirstFit
        );
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(AllocationStrategy::BestFit.label(), "best-fit");
        assert_eq!(AllocationStrategy::LeastLoaded.label(), "least-loaded");
        assert_eq!(AllocationStrategy::default(), AllocationStrategy::BestFit);
    }
}
