//! Behavioural tests of the case-study scheduler against hand-built
//! resource states: each Fig. 5 phase is exercised in isolation through
//! a minimal driver harness.

use dreamsim_engine::sim::{
    Decision, DiscardReason, SchedCtx, SchedulePolicy, SourceYield, TaskSource, TaskSpec,
};
use dreamsim_engine::{PhaseKind, ReconfigMode, SimParams, Simulation};
use dreamsim_model::{Config, Node, NodeId};
use dreamsim_model::{
    ConfigId, PreferredConfig, ResourceManager, StepCounter, SuspensionQueue, Task, TaskId, Ticks,
};
use dreamsim_rng::Rng;
use dreamsim_sched::CaseStudyScheduler;

/// Hand-built scheduling context for direct policy unit tests.
struct Harness {
    resources: ResourceManager,
    suspension: SuspensionQueue,
    tasks: dreamsim_engine::TaskTable,
    steps: StepCounter,
    rng: Rng,
    mode: ReconfigMode,
}

impl Harness {
    fn new(mode: ReconfigMode, configs: &[(u32, u64, u64)], nodes: &[u64]) -> Self {
        let configs: Vec<Config> = configs
            .iter()
            .map(|&(id, area, ct)| Config::new(ConfigId(id), area, ct))
            .collect();
        let nodes: Vec<Node> = nodes
            .iter()
            .enumerate()
            .map(|(i, &a)| Node::new(NodeId::from_index(i), a, 2))
            .collect();
        Self {
            resources: ResourceManager::new(nodes, configs),
            suspension: SuspensionQueue::new(),
            tasks: dreamsim_engine::TaskTable::new(),
            steps: StepCounter::new(),
            rng: Rng::seed_from(1),
            mode,
        }
    }

    fn add_task(&mut self, pref: PreferredConfig, needed_area: u64) -> TaskId {
        let id = TaskId::from_index(self.tasks.len());
        self.tasks.push(Task::new(id, 0, 100, pref, needed_area));
        id
    }

    fn schedule(&mut self, policy: &mut CaseStudyScheduler, task: TaskId) -> Decision {
        let mut ctx = SchedCtx {
            now: 0,
            mode: self.mode,
            suspension_enabled: true,
            max_sus_retries: None,
            resources: &mut self.resources,
            suspension: &mut self.suspension,
            tasks: &mut self.tasks,
            steps: &mut self.steps,
            rng: &mut self.rng,
        };
        policy.schedule(&mut ctx, task)
    }
}

fn placed_phase(d: &Decision) -> PhaseKind {
    match d {
        Decision::Placed(p) => p.phase,
        other => panic!("expected placement, got {other:?}"),
    }
}

#[test]
fn phase_configuration_used_on_blank_cluster() {
    let mut h = Harness::new(ReconfigMode::Partial, &[(0, 500, 12)], &[2000, 1000]);
    let mut policy = CaseStudyScheduler::new();
    let t = h.add_task(PreferredConfig::Known(ConfigId(0)), 500);
    let d = h.schedule(&mut policy, t);
    assert_eq!(placed_phase(&d), PhaseKind::Configuration);
    // Best blank = tightest fit = node 1 (1000).
    if let Decision::Placed(p) = d {
        assert_eq!(p.entry.node, NodeId(1));
        assert_eq!(p.config_time, 12);
    }
    h.resources.check_invariants().unwrap();
}

#[test]
fn phase_allocation_reuses_idle_instance() {
    let mut h = Harness::new(ReconfigMode::Partial, &[(0, 500, 12)], &[2000]);
    let mut policy = CaseStudyScheduler::new();
    // Pre-configure the node and leave the slot idle.
    let e = h
        .resources
        .configure_slot(NodeId(0), ConfigId(0), &mut h.steps)
        .unwrap();
    let t = h.add_task(PreferredConfig::Known(ConfigId(0)), 500);
    let d = h.schedule(&mut policy, t);
    assert_eq!(placed_phase(&d), PhaseKind::Allocation);
    if let Decision::Placed(p) = d {
        assert_eq!(p.entry, e);
        assert_eq!(p.config_time, 0, "allocation pays no configuration time");
    }
}

#[test]
fn phase_partial_configuration_packs_alongside_running_task() {
    let mut h = Harness::new(
        ReconfigMode::Partial,
        &[(0, 600, 10), (1, 700, 11)],
        &[2000],
    );
    let mut policy = CaseStudyScheduler::new();
    // Occupy the node with a running task on config 0.
    let e = h
        .resources
        .configure_slot(NodeId(0), ConfigId(0), &mut h.steps)
        .unwrap();
    h.resources
        .assign_task(e, TaskId(99), &mut h.steps)
        .unwrap();
    let t = h.add_task(PreferredConfig::Known(ConfigId(1)), 700);
    let d = h.schedule(&mut policy, t);
    assert_eq!(placed_phase(&d), PhaseKind::PartialConfiguration);
    assert_eq!(h.resources.node(NodeId(0)).configured_count(), 2);
    assert_eq!(h.resources.node(NodeId(0)).running_count(), 2);
    h.resources.check_invariants().unwrap();
}

#[test]
fn full_mode_never_partially_configures() {
    let mut h = Harness::new(ReconfigMode::Full, &[(0, 600, 10), (1, 700, 11)], &[2000]);
    let mut policy = CaseStudyScheduler::new();
    let e = h
        .resources
        .configure_slot(NodeId(0), ConfigId(0), &mut h.steps)
        .unwrap();
    h.resources
        .assign_task(e, TaskId(99), &mut h.steps)
        .unwrap();
    // Plenty of spare area, but full mode may not co-host: the only
    // remaining option is suspension (node is busy and big enough).
    let t = h.add_task(PreferredConfig::Known(ConfigId(1)), 700);
    let d = h.schedule(&mut policy, t);
    assert_eq!(d, Decision::Suspended);
    assert_eq!(h.suspension.len(), 1);
}

#[test]
fn phase_partial_reconfiguration_evicts_idle_regions() {
    let mut h = Harness::new(
        ReconfigMode::Partial,
        &[(0, 900, 10), (1, 800, 11), (2, 1_200, 12)],
        &[2000],
    );
    let mut policy = CaseStudyScheduler::new();
    // Fill the node with two idle configs (900 + 800, 300 spare), one
    // busy would block; keep both idle.
    h.resources
        .configure_slot(NodeId(0), ConfigId(0), &mut h.steps)
        .unwrap();
    h.resources
        .configure_slot(NodeId(0), ConfigId(1), &mut h.steps)
        .unwrap();
    // Config 2 needs 1200: not blank, spare 300 < 1200, so Algorithm 1
    // must evict idle regions.
    let t = h.add_task(PreferredConfig::Known(ConfigId(2)), 1_200);
    let d = h.schedule(&mut policy, t);
    assert_eq!(placed_phase(&d), PhaseKind::PartialReconfiguration);
    let node = h.resources.node(NodeId(0));
    assert!(node.configured_count() >= 1);
    h.resources.check_invariants().unwrap();
}

#[test]
fn closest_match_path_and_discard_without_candidates() {
    let mut h = Harness::new(
        ReconfigMode::Partial,
        &[(0, 500, 10), (1, 900, 11)],
        &[1000],
    );
    let mut policy = CaseStudyScheduler::new();
    // Phantom area 600 → closest match is config 1 (900 > 600).
    let t = h.add_task(PreferredConfig::Phantom { area: 600 }, 600);
    let d = h.schedule(&mut policy, t);
    assert_eq!(placed_phase(&d), PhaseKind::Configuration);
    assert_eq!(h.tasks.get(t).resolved_config, Some(ConfigId(1)));

    // Phantom area 900 → nothing strictly larger → discard.
    let t2 = h.add_task(PreferredConfig::Phantom { area: 900 }, 900);
    let d2 = h.schedule(&mut policy, t2);
    assert_eq!(d2, Decision::Discarded(DiscardReason::NoClosestConfig));
}

#[test]
fn discard_when_nothing_ever_fits() {
    // Node too small for the only config, nothing busy → NoFeasibleNode.
    let mut h = Harness::new(ReconfigMode::Partial, &[(0, 1_500, 10)], &[1000]);
    let mut policy = CaseStudyScheduler::new();
    let t = h.add_task(PreferredConfig::Known(ConfigId(0)), 1_500);
    let d = h.schedule(&mut policy, t);
    assert_eq!(d, Decision::Discarded(DiscardReason::NoFeasibleNode));
}

#[test]
fn retry_limit_discards_via_driver() {
    // End-to-end: a tiny cluster with a retry limit discards tasks that
    // keep failing rescans instead of holding them forever.
    struct BigThenSmall(usize);
    impl TaskSource for BigThenSmall {
        fn next_task(&mut self, _now: Ticks, _rng: &mut Rng) -> SourceYield {
            self.0 += 1;
            match self.0 {
                // Long-running task that hogs the single node.
                1 => SourceYield::Task(TaskSpec {
                    interarrival: 1,
                    required_time: 10_000,
                    preferred: PreferredConfig::Known(ConfigId(0)),
                    needed_area: 0,
                    data_bytes: 0,
                }),
                // A stream of short tasks that must suspend behind it.
                2..=20 => SourceYield::Task(TaskSpec {
                    interarrival: 1,
                    required_time: 10,
                    preferred: PreferredConfig::Known(ConfigId(0)),
                    needed_area: 0,
                    data_bytes: 0,
                }),
                _ => SourceYield::Exhausted,
            }
        }
    }
    let mut p = SimParams::paper(1, 20, ReconfigMode::Full);
    p.seed = 9;
    p.max_sus_retries = Some(2);
    let result = Simulation::new(p, BigThenSmall(0), CaseStudyScheduler::new())
        .unwrap()
        .run();
    // With one node, one config instance, and a retry cap, the queue
    // drains one task per completion; everything still terminates.
    assert_eq!(
        result.metrics.total_tasks_completed + result.metrics.total_discarded_tasks,
        result.metrics.total_tasks_generated
    );
}
