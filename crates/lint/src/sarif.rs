//! SARIF 2.1.0 rendering of a [`LintReport`].
//!
//! SARIF (Static Analysis Results Interchange Format, OASIS) is the
//! format code hosts ingest for inline check annotations. The emitted
//! document is the minimal valid profile those ingesters need:
//!
//! * `runs[0].tool.driver` carries the tool name, version, and the
//!   full rule catalogue (`rules[]`, with each rule's summary as
//!   `fullDescription`), so annotations can link back to rule docs;
//! * one `result` per unsuppressed finding, `level: "error"` (every
//!   rule here guards a determinism guarantee — there are no
//!   warnings), with a `physicalLocation` of workspace-relative URI +
//!   1-based line;
//! * one `result` per waived finding with `suppressions: [{kind:
//!   "inSource", justification}]`, so the audit trail of reasons
//!   survives into the artifact exactly as it does in the JSON format.
//!
//! The document is built as a `serde_json::Value` tree (the compat
//! shim keeps object fields in insertion order), so the artifact is
//! byte-stable for a given report — the same property the text and
//! JSON formats guarantee.

use crate::engine::LintReport;
use crate::rules::RULES;
use serde_json::{Number, Value};

/// `Value::Object` from key/value pairs.
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// `Value::String`.
fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

/// `{ "text": … }` — SARIF's message/description wrapper shape.
fn text(t: &str) -> Value {
    obj(vec![("text", s(t))])
}

/// `physicalLocation` for a workspace-relative file and 1-based line.
fn location(file: &str, line: u32) -> Value {
    obj(vec![(
        "physicalLocation",
        obj(vec![
            (
                "artifactLocation",
                obj(vec![("uri", s(file)), ("uriBaseId", s("SRCROOT"))]),
            ),
            (
                "region",
                obj(vec![(
                    "startLine",
                    Value::Number(Number::U(u64::from(line))),
                )]),
            ),
        ]),
    )])
}

/// Render a report as a SARIF 2.1.0 JSON document.
#[must_use]
pub fn render_sarif(report: &LintReport) -> String {
    let rules: Vec<Value> = RULES
        .iter()
        .map(|r| {
            obj(vec![
                ("id", s(r.id)),
                ("name", s(r.name)),
                ("shortDescription", text(r.name)),
                ("fullDescription", text(r.summary)),
                ("defaultConfiguration", obj(vec![("level", s("error"))])),
            ])
        })
        .collect();

    let rule_index = |id: &str| {
        let idx = RULES
            .iter()
            .position(|r| r.id == id)
            // INVARIANT: every finding's rule id comes from the catalogue.
            .expect("finding rule id is in the catalogue");
        Value::Number(Number::U(idx as u64))
    };

    let mut results: Vec<Value> = Vec::new();
    for f in &report.findings {
        results.push(obj(vec![
            ("ruleId", s(&f.rule)),
            ("ruleIndex", rule_index(&f.rule)),
            ("level", s("error")),
            ("message", text(&f.message)),
            ("locations", Value::Array(vec![location(&f.file, f.line)])),
        ]));
    }
    for sp in &report.suppressions {
        results.push(obj(vec![
            ("ruleId", s(&sp.rule)),
            ("ruleIndex", rule_index(&sp.rule)),
            ("level", s("error")),
            (
                "message",
                text(&format!("suppressed in source: {}", sp.reason)),
            ),
            ("locations", Value::Array(vec![location(&sp.file, sp.line)])),
            (
                "suppressions",
                Value::Array(vec![obj(vec![
                    ("kind", s("inSource")),
                    ("justification", s(&sp.reason)),
                ])]),
            ),
        ]));
    }

    let doc = obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        (
            "runs",
            Value::Array(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("dreamsim-lint")),
                            ("version", s(env!("CARGO_PKG_VERSION"))),
                            ("rules", Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Array(results)),
            ])]),
        ),
    ]);
    // INVARIANT: the document is strings and integers only; the
    // serializer has no failure mode for those shapes.
    serde_json::to_string_pretty(&doc).expect("sarif serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_source;

    #[test]
    fn sarif_document_has_results_and_suppressions() {
        let src = "use std::collections::HashMap;\n\
                   use std::collections::HashSet; // lint: allow(r1) -- membership only\n";
        let report = lint_source("crates/model/src/x.rs", src);
        let doc: Value = serde_json::from_str(&render_sarif(&report)).expect("valid json");
        assert_eq!(doc["version"], "2.1.0");
        let run = &doc["runs"][0];
        assert_eq!(run["tool"]["driver"]["name"], "dreamsim-lint");
        let rules = run["tool"]["driver"]["rules"].as_array().expect("rules");
        assert_eq!(rules.len(), RULES.len());
        let results = run["results"].as_array().expect("results");
        assert_eq!(results.len(), 2, "one finding + one suppressed result");
        let finding = &results[0];
        assert_eq!(finding["ruleId"], "r1");
        assert_eq!(
            finding["locations"][0]["physicalLocation"]["region"]["startLine"],
            1
        );
        let suppressed = &results[1];
        assert_eq!(suppressed["suppressions"][0]["kind"], "inSource");
        assert!(suppressed["suppressions"][0]["justification"]
            .as_str()
            .expect("justification")
            .contains("membership"));
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let report = LintReport::default();
        let doc: Value = serde_json::from_str(&render_sarif(&report)).expect("valid json");
        assert!(doc["runs"][0]["results"]
            .as_array()
            .expect("results")
            .is_empty());
    }
}
