//! # dreamsim-lint — the determinism lint engine
//!
//! Every headline property of this workspace — byte-identical
//! checkpoint resume, the linear-vs-indexed differential proof, seeded
//! figure sweeps — rests on the simulator being strictly deterministic.
//! This crate enforces that property at the *source* level with a small
//! hand-rolled Rust lexer (comments, strings, raw strings, char
//! literals, and `#[cfg(test)]` regions are classified correctly; no
//! crates.io dependencies) and a rule engine that walks every
//! `crates/*/src` file — including `crates/bench`, which the cargo
//! workspace excludes but the path-based walk does not.
//!
//! Beyond the token rules, a lightweight item [`parser`] recovers
//! structs, fields, fns, and call edges, feeding the workspace-global
//! [`symbols`] analyses: the checkpoint-coverage proof (r8) and
//! interprocedural nondeterminism taint (r9).
//!
//! See [`rules`] for the rule catalogue (r1–r11 plus the pragma
//! meta-rules p0/p1) and [`engine`] for the suppression-pragma syntax.
//! DESIGN.md §12 documents how to add a token rule; §17 documents the
//! symbol model and the global analyses.
//!
//! Three front ends share this library: the standalone `dreamsim-lint`
//! binary, the `dreamsim lint` CLI subcommand, and the blocking CI job.

pub mod engine;
pub mod lexer;
pub mod parser;
pub mod regions;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod walk;

pub use engine::{lint_source, lint_sources, Finding, LintReport, Suppression};
pub use rules::{rule_info, RuleInfo, RULES};

use std::io;
use std::path::Path;

/// Output format for [`render`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Human-readable text.
    Text,
    /// Machine-readable JSON (the CI artifact format).
    Json,
    /// SARIF 2.1.0 (the CI annotation format; see [`sarif`]).
    Sarif,
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Self::Text),
            "json" => Ok(Self::Json),
            "sarif" => Ok(Self::Sarif),
            other => Err(format!(
                "--format must be text, json, or sarif, got {other:?}"
            )),
        }
    }
}

/// Lint the whole workspace rooted at `root` (path-based walk; see
/// [`walk::workspace_files`] for what is in scope).
///
/// # Errors
/// Propagates filesystem errors from the walk or from reading a source
/// file.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::workspace_files(root)?;
    lint_paths(root, &files)
}

/// Lint an explicit list of files, labelling each relative to `root`.
///
/// # Errors
/// Propagates filesystem errors from reading a source file.
pub fn lint_files(root: &Path, paths: &[std::path::PathBuf]) -> io::Result<LintReport> {
    lint_paths(root, paths)
}

/// Read the files and run the multi-file analysis over the whole set
/// (the global r8/r9 passes must see every file at once).
fn lint_paths(root: &Path, paths: &[std::path::PathBuf]) -> io::Result<LintReport> {
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        sources.push((walk::label_for(root, path), std::fs::read_to_string(path)?));
    }
    Ok(lint_sources(&sources))
}

/// Render a report in the requested format.
#[must_use]
pub fn render(report: &LintReport, format: Format) -> String {
    match format {
        Format::Sarif => sarif::render_sarif(report),
        Format::Json => serde_json::to_string_pretty(report)
            // INVARIANT: LintReport is strings and integers only; the
            // serializer has no failure mode for those shapes.
            .expect("lint report serialization cannot fail"),
        Format::Text => {
            let mut out = String::new();
            for f in &report.findings {
                out.push_str(&format!(
                    "{}:{} [{}] {}\n    {}\n",
                    f.file, f.line, f.rule, f.message, f.excerpt
                ));
            }
            for s in &report.suppressions {
                out.push_str(&format!(
                    "{}:{} [{}] suppressed -- {}\n",
                    s.file, s.line, s.rule, s.reason
                ));
            }
            let counts = report
                .counts_by_rule()
                .into_iter()
                .map(|(r, n)| format!("{r}: {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "{} finding(s){} in {} file(s) scanned; {} suppression(s) with reasons\n",
                report.findings.len(),
                if counts.is_empty() {
                    String::new()
                } else {
                    format!(" ({counts})")
                },
                report.files_scanned,
                report.suppressions.len(),
            ));
            out
        }
    }
}

/// One line per rule, for `--list-rules` and the CLI help.
#[must_use]
pub fn rule_catalogue() -> String {
    RULES
        .iter()
        .map(|r| format!("{:4} {:20} {}\n", r.id, r.name, r.summary))
        .collect()
}
