//! Lightweight item parser over the lexed token stream.
//!
//! This is **not** a Rust parser. It recovers exactly the item-level
//! facts the symbol-aware analyses (r8/r9, see [`crate::symbols`])
//! need, and nothing more:
//!
//! * `struct` definitions with their fields, the identifiers appearing
//!   in each field's type, per-field `#[serde(skip…)]` markers, and
//!   whether the struct derives `Serialize`;
//! * `enum` definitions with the type identifiers referenced by their
//!   variant payloads;
//! * `fn` definitions with the call sites in their bodies (callee
//!   simple name + line) and whether the body reads ambient entropy
//!   (the r2 token set) on an unwaived line;
//! * manual `impl Serialize for T` / `impl Deserialize for T` blocks,
//!   which mark `T` as serialized by hand.
//!
//! Everything is recovered by bracket-matched token scanning, so the
//! parser never fails: malformed or exotic syntax degrades to *fewer
//! recorded facts*, which makes the downstream analyses conservative in
//! the safe direction for r8 (an unrecorded serialized field cannot
//! waive anything) and merely blind — like the token rules before it —
//! for pathological inputs.
//!
//! Items inside test regions (`#[cfg(test)]`, `mod tests`) are not
//! recorded: the coverage and taint proofs, like every other rule,
//! cover shipping simulator paths only.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::regions::LineMap;

/// One field of a parsed struct.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name (the decimal position for tuple structs).
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// Line of the field's first attribute (equals `line` without
    /// attributes) — `// REBUILD:` notes may sit above the attributes.
    pub attr_line: u32,
    /// Every identifier appearing in the field's type (generic
    /// arguments included); resolution against the workspace symbol
    /// table decides which of them name state types.
    pub type_idents: Vec<String>,
    /// The field carries a `#[serde(skip…)]` attribute.
    pub serde_skip: bool,
    /// A `// REBUILD:` note is adjacent to the field (on the field or
    /// attribute line, or in the comment block directly above).
    pub rebuild_note: bool,
}

/// A parsed struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// The struct's `#[derive(…)]` list names `Serialize`.
    pub derives_serialize: bool,
    /// Fields in declaration order.
    pub fields: Vec<FieldDef>,
}

/// A parsed enum definition (variant payloads are flattened to the set
/// of referenced type identifiers; per-variant detail is never needed).
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// The enum's `#[derive(…)]` list names `Serialize`.
    pub derives_serialize: bool,
    /// Type identifiers referenced by variant payloads.
    pub type_idents: Vec<String>,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee simple name (`helper` for both `helper(…)` and
    /// `self.helper(…)`; paths keep only the final segment).
    pub callee: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// A parsed function definition (free function or method — the
/// analyses resolve callees by simple name, so the owner type is not
/// recorded).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// First unwaived ambient-entropy read in the body, as
    /// `(token, line)` — e.g. `("SystemTime", 412)`. Lines carrying a
    /// `lint: allow(…r2…)` pragma are not sources: the pragma's audited
    /// reason covers transitive callers too.
    pub entropy: Option<(String, u32)>,
}

/// Item-level facts for one source file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Struct definitions outside test regions.
    pub structs: Vec<StructDef>,
    /// Enum definitions outside test regions.
    pub enums: Vec<EnumDef>,
    /// Function definitions outside test regions.
    pub fns: Vec<FnDef>,
    /// Type names with a hand-written `impl Serialize`/`Deserialize`.
    pub manual_serde: Vec<String>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 7] = ["if", "while", "for", "match", "return", "loop", "fn"];

/// Ambient-entropy identifiers (the r2 token set, kept in sync with
/// [`crate::rules`]).
const ENTROPY_IDENTS: [&str; 3] = ["Instant", "SystemTime", "thread_rng"];

/// Parse the item-level facts out of one lexed file.
#[must_use]
pub fn parse_items(lexed: &Lexed, map: &LineMap) -> FileItems {
    let toks = &lexed.tokens;
    let mut items = FileItems::default();
    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        match t.text.as_str() {
            "struct" if next_is_ident(toks, k) => {
                if !map.is_test(t.line) {
                    if let Some(def) = parse_struct(toks, k, map) {
                        items.structs.push(def);
                    }
                }
                // Jump past the name so the body is never re-scanned as
                // item starts (field types cannot begin items).
                k += 2;
            }
            "enum" if next_is_ident(toks, k) => {
                if !map.is_test(t.line) {
                    if let Some(def) = parse_enum(toks, k) {
                        items.enums.push(def);
                    }
                }
                k += 2;
            }
            "fn" if next_is_ident(toks, k) => {
                if !map.is_test(t.line) {
                    if let Some(def) = parse_fn(toks, k, map) {
                        items.fns.push(def);
                    }
                }
                // Do not skip the body: nested `fn` items must also be
                // recorded (their calls are attributed to both, which
                // is conservative for taint).
                k += 2;
            }
            "impl" => {
                if let Some(name) = manual_serde_target(toks, k) {
                    items.manual_serde.push(name);
                }
                k += 1;
            }
            _ => k += 1,
        }
    }
    items
}

fn next_is_ident(toks: &[Tok], k: usize) -> bool {
    matches!(toks.get(k + 1), Some(t) if t.kind == TokKind::Ident)
}

/// Identifier lists of the `#[…]` attribute groups directly above token
/// `k`, scanning backwards over visibility modifiers.
fn preceding_attrs(toks: &[Tok], k: usize) -> Vec<Vec<String>> {
    let mut groups = Vec::new();
    let mut j = k;
    // Step back over `pub`, `pub(crate)`, `pub(super)`, `pub(in …)`.
    while j > 0 {
        let t = &toks[j - 1];
        let vis = matches!(
            t.text.as_str(),
            "pub" | "crate" | "super" | "in" | "(" | ")"
        );
        if vis {
            j -= 1;
        } else {
            break;
        }
    }
    while j > 0 && toks[j - 1].text == "]" {
        let close = j - 1;
        let mut depth = 1usize;
        let mut open = close;
        while open > 0 && depth > 0 {
            open -= 1;
            match toks[open].text.as_str() {
                "]" => depth += 1,
                "[" => depth -= 1,
                _ => {}
            }
        }
        if depth != 0 || open == 0 || toks[open - 1].text != "#" {
            break;
        }
        groups.push(
            toks[open + 1..close]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect(),
        );
        j = open - 1;
    }
    groups
}

/// Whether any attribute group is a `derive` naming `Serialize`.
fn derives_serialize(attrs: &[Vec<String>]) -> bool {
    attrs.iter().any(|g| {
        g.first().map(String::as_str) == Some("derive") && g.iter().any(|i| i == "Serialize")
    })
}

/// Skip a generic parameter list starting at the `<` at `j`; returns
/// the index just past the matching `>`. `>>` closes two levels.
fn skip_angles(toks: &[Tok], j: usize) -> usize {
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "<" | "<<" => {
                depth += i32::from(toks[k].text == "<") + 2 * i32::from(toks[k].text == "<<")
            }
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        k += 1;
        if depth <= 0 {
            break;
        }
    }
    k
}

/// Bracket-depth bookkeeping for field-type scanning. A `,` ends the
/// field only when every bracket kind is balanced.
#[derive(Default)]
struct Depth {
    round: i32,
    square: i32,
    angle: i32,
}

impl Depth {
    fn feed(&mut self, text: &str) {
        match text {
            "(" => self.round += 1,
            ")" => self.round -= 1,
            "[" => self.square += 1,
            "]" => self.square -= 1,
            "<" => self.angle += 1,
            ">" => self.angle -= 1,
            "<<" => self.angle += 2,
            ">>" => self.angle -= 2,
            _ => {}
        }
    }

    fn level(&self) -> bool {
        self.round <= 0 && self.square <= 0 && self.angle <= 0
    }
}

fn parse_struct(toks: &[Tok], k: usize, map: &LineMap) -> Option<StructDef> {
    let name_tok = toks.get(k + 1)?;
    let attrs = preceding_attrs(toks, k);
    let mut def = StructDef {
        name: name_tok.text.clone(),
        line: toks[k].line,
        derives_serialize: derives_serialize(&attrs),
        fields: Vec::new(),
    };
    let mut j = k + 2;
    if matches!(toks.get(j), Some(t) if t.text == "<") {
        j = skip_angles(toks, j);
    }
    match toks.get(j).map(|t| t.text.as_str()) {
        Some(";") => Some(def), // unit struct
        Some("(") => {
            parse_tuple_fields(toks, j, &mut def, map);
            Some(def)
        }
        _ => {
            // Named struct: scan past a possible `where` clause to `{`.
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.text == "{") {
                parse_named_fields(toks, j, &mut def, map);
            }
            Some(def)
        }
    }
}

fn parse_tuple_fields(toks: &[Tok], open: usize, def: &mut StructDef, map: &LineMap) {
    let close = matching(toks, open, "(", ")");
    let mut depth = Depth::default();
    let mut idents: Vec<String> = Vec::new();
    let mut line = toks[open].line;
    let mut index = 0usize;
    for t in &toks[open + 1..close] {
        if t.text == "," && depth.level() {
            def.fields
                .push(tuple_field(index, line, std::mem::take(&mut idents), map));
            index += 1;
            line = t.line;
            continue;
        }
        depth.feed(&t.text);
        if t.kind == TokKind::Ident {
            idents.push(t.text.clone());
        }
    }
    if !idents.is_empty() {
        def.fields.push(tuple_field(index, line, idents, map));
    }
}

fn tuple_field(index: usize, line: u32, type_idents: Vec<String>, map: &LineMap) -> FieldDef {
    FieldDef {
        name: index.to_string(),
        line,
        attr_line: line,
        type_idents,
        serde_skip: false,
        rebuild_note: map.justified(line, "REBUILD:"),
    }
}

fn parse_named_fields(toks: &[Tok], open: usize, def: &mut StructDef, map: &LineMap) {
    let close = matching(toks, open, "{", "}");
    let mut j = open + 1;
    while j < close {
        // Field attributes.
        let mut serde_skip = false;
        let mut attr_line: Option<u32> = None;
        while toks[j].text == "#" && matches!(toks.get(j + 1), Some(t) if t.text == "[") {
            let aclose = matching(toks, j + 1, "[", "]");
            let idents: Vec<&str> = toks[j + 1..aclose]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            if idents.first() == Some(&"serde") && idents.iter().any(|i| i.starts_with("skip")) {
                serde_skip = true;
            }
            attr_line.get_or_insert(toks[j].line);
            j = aclose + 1;
        }
        // Visibility.
        if j < close && toks[j].text == "pub" {
            j += 1;
            if j < close && toks[j].text == "(" {
                j = matching(toks, j, "(", ")") + 1;
            }
        }
        // `name: Type,`
        if j + 1 < close && toks[j].kind == TokKind::Ident && toks[j + 1].text == ":" {
            let name = toks[j].text.clone();
            let line = toks[j].line;
            j += 2;
            let mut depth = Depth::default();
            let mut idents = Vec::new();
            while j < close {
                let t = &toks[j];
                if t.text == "," && depth.level() {
                    break;
                }
                depth.feed(&t.text);
                if t.kind == TokKind::Ident {
                    idents.push(t.text.clone());
                }
                j += 1;
            }
            let attr_line = attr_line.unwrap_or(line);
            def.fields.push(FieldDef {
                name,
                line,
                attr_line,
                type_idents: idents,
                serde_skip,
                rebuild_note: map.justified(line, "REBUILD:")
                    || map.justified(attr_line, "REBUILD:"),
            });
        }
        // Resync to the `,` ending this field (no-op if the loop above
        // already stopped there).
        let mut depth = Depth::default();
        while j < close && !(toks[j].text == "," && depth.level()) {
            depth.feed(&toks[j].text);
            j += 1;
        }
        j += 1;
    }
}

fn parse_enum(toks: &[Tok], k: usize) -> Option<EnumDef> {
    let name_tok = toks.get(k + 1)?;
    let attrs = preceding_attrs(toks, k);
    let mut def = EnumDef {
        name: name_tok.text.clone(),
        line: toks[k].line,
        derives_serialize: derives_serialize(&attrs),
        type_idents: Vec::new(),
    };
    let mut j = k + 2;
    if matches!(toks.get(j), Some(t) if t.text == "<") {
        j = skip_angles(toks, j);
    }
    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
        j += 1;
    }
    if toks.get(j).is_none_or(|t| t.text != "{") {
        return Some(def);
    }
    let close = matching(toks, j, "{", "}");
    let mut depth = Depth::default();
    let mut expect_variant = true;
    let mut i = j + 1;
    while i < close {
        let t = &toks[i];
        // Skip variant attributes (`#[serde(other)]` etc.) wholesale so
        // their idents are not mistaken for type references.
        if t.text == "#" && matches!(toks.get(i + 1), Some(n) if n.text == "[") {
            i = matching(toks, i + 1, "[", "]") + 1;
            continue;
        }
        if t.text == "," && depth.level() {
            expect_variant = true;
            i += 1;
            continue;
        }
        depth.feed(&t.text);
        if t.kind == TokKind::Ident {
            if expect_variant && depth.level() {
                expect_variant = false; // the variant's own name
            } else {
                def.type_idents.push(t.text.clone());
            }
        }
        i += 1;
    }
    Some(def)
}

fn parse_fn(toks: &[Tok], k: usize, map: &LineMap) -> Option<FnDef> {
    let name_tok = toks.get(k + 1)?;
    let mut def = FnDef {
        name: name_tok.text.clone(),
        line: toks[k].line,
        calls: Vec::new(),
        entropy: None,
    };
    // Scan the signature to the body `{` (or `;` for trait method
    // declarations, which have no body to analyze). Parentheses and
    // angle brackets may nest in the signature; braces may not.
    let mut j = k + 2;
    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
        j += 1;
    }
    if toks.get(j).is_none_or(|t| t.text != "{") {
        return Some(def);
    }
    let close = matching(toks, j, "{", "}");
    for i in j + 1..close.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = &toks[i - 1];
        let next_is_paren = matches!(toks.get(i + 1), Some(n) if n.text == "(");
        if next_is_paren && prev.text != "fn" && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            def.calls.push(CallSite {
                callee: t.text.clone(),
                line: t.line,
            });
        }
        if def.entropy.is_none() && !map.is_test(t.line) && !entropy_waived(map, t.line) {
            if ENTROPY_IDENTS.contains(&t.text.as_str()) {
                def.entropy = Some((t.text.clone(), t.line));
            } else if t.text == "std"
                && matches!(toks.get(i + 1), Some(n) if n.text == "::")
                && matches!(
                    toks.get(i + 2),
                    Some(seg) if seg.kind == TokKind::Ident
                        && (seg.text == "time" || seg.text == "env")
                )
            {
                def.entropy = Some((format!("std::{}", toks[i + 2].text), t.line));
            }
        }
    }
    Some(def)
}

/// Whether an entropy read on `line` is covered by an adjacent
/// `lint: allow(… r2 …)` pragma. The pragma's mandatory reason is an
/// audited statement that the value never feeds simulation state, so
/// the waiver extends to transitive callers (otherwise every caller of
/// a justified progress-display helper would need its own waiver).
fn entropy_waived(map: &LineMap, line: u32) -> bool {
    map.justified(line, "allow(") && map.justified(line, "r2")
}

/// The target type name of a hand-written serde impl starting at the
/// `impl` token `k` (`impl serde::Serialize for EventQueue { …`), if
/// this impl is one.
fn manual_serde_target(toks: &[Tok], k: usize) -> Option<String> {
    let mut is_serde = false;
    let mut j = k + 1;
    // Scan the trait path up to `for`, bounded by the block opener so a
    // bare `impl Type { … }` never scans into the body.
    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
        let t = &toks[j];
        if t.kind == TokKind::Ident && (t.text == "Serialize" || t.text == "Deserialize") {
            is_serde = true;
        }
        if t.kind == TokKind::Ident && t.text == "for" {
            if !is_serde {
                return None;
            }
            // Self type: the last path segment before `{`/`<`/`where`.
            let mut name = None;
            let mut i = j + 1;
            while i < toks.len() {
                match toks[i].text.as_str() {
                    "{" | "where" | "<" => break,
                    _ => {
                        if toks[i].kind == TokKind::Ident {
                            name = Some(toks[i].text.clone());
                        }
                        i += 1;
                    }
                }
            }
            return name;
        }
        j += 1;
    }
    None
}

/// Index of the token with text `close` matching the `open` at `k`.
/// Returns `toks.len()` when unterminated, like the region scanners.
fn matching(toks: &[Tok], k: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(k) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        let lexed = lex(src);
        let map = LineMap::build(&lexed);
        parse_items(&lexed, &map)
    }

    #[test]
    fn struct_fields_types_and_serde_markers() {
        let src = "\
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct Stats {
    pub completed: u64,
    pub window: Option<WindowStats>,
    // REBUILD: refilled by resume.
    #[serde(skip)]
    pub wait_samples: Vec<Ticks>,
}
";
        let it = items(src);
        assert_eq!(it.structs.len(), 1);
        let s = &it.structs[0];
        assert_eq!(s.name, "Stats");
        assert!(s.derives_serialize);
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[1].name, "window");
        assert!(s.fields[1].type_idents.contains(&"WindowStats".into()));
        assert!(!s.fields[1].serde_skip);
        let skip = &s.fields[2];
        assert!(skip.serde_skip);
        assert!(skip.rebuild_note);
        assert!(skip.type_idents.contains(&"Ticks".into()));
    }

    #[test]
    fn generic_struct_and_pub_crate_fields() {
        let src = "pub struct Table<S, P> {\n    pub(crate) inner: BTreeMap<Key, Vec<S>>,\n    source: S,\n}\n";
        let it = items(src);
        let s = &it.structs[0];
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "inner");
        assert!(s.fields[0].type_idents.contains(&"Key".into()));
        assert_eq!(s.fields[1].name, "source");
    }

    #[test]
    fn tuple_and_unit_structs() {
        let it = items("pub struct Id(pub u32);\npub struct Marker;\n");
        assert_eq!(it.structs.len(), 2);
        assert_eq!(it.structs[0].fields.len(), 1);
        assert_eq!(it.structs[0].fields[0].name, "0");
        assert!(it.structs[1].fields.is_empty());
    }

    #[test]
    fn enum_variants_yield_payload_types_not_variant_names() {
        let src = "#[derive(serde::Serialize)]\npub enum Event {\n    Arrival { task: TaskSpec },\n    Tick,\n    Failed(NodeId, u64),\n}\n";
        let it = items(src);
        let e = &it.enums[0];
        assert!(e.derives_serialize);
        assert!(e.type_idents.contains(&"TaskSpec".into()));
        assert!(e.type_idents.contains(&"NodeId".into()));
        assert!(!e.type_idents.contains(&"Arrival".into()));
        assert!(!e.type_idents.contains(&"Tick".into()));
        assert!(!e.type_idents.contains(&"Failed".into()));
    }

    #[test]
    fn fn_calls_and_entropy_are_recorded() {
        let src = "\
fn helper() -> u64 {
    std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()
}
pub fn caller(x: u64) -> u64 {
    helper() + x
}
";
        let it = items(src);
        assert_eq!(it.fns.len(), 2);
        let h = &it.fns[0];
        assert_eq!(h.name, "helper");
        assert!(h.entropy.is_some(), "helper reads SystemTime");
        let c = &it.fns[1];
        assert_eq!(c.name, "caller");
        assert!(c.calls.iter().any(|s| s.callee == "helper"));
    }

    #[test]
    fn waived_entropy_is_not_a_source() {
        let src = "fn ui() -> u64 {\n    // lint: allow(r2) -- display only\n    std::time::Instant::now().elapsed().as_secs()\n}\n";
        let it = items(src);
        assert!(it.fns[0].entropy.is_none());
    }

    #[test]
    fn test_region_items_are_ignored() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    struct Fake { x: u64 }\n    fn t() { live(); }\n}\n";
        let it = items(src);
        assert_eq!(it.fns.len(), 1);
        assert!(it.structs.is_empty());
    }

    #[test]
    fn manual_serde_impls_are_detected() {
        let src = "impl serde::Serialize for EventQueue {\n    fn serialize(&self) {}\n}\nimpl<'de> serde::Deserialize<'de> for Rng {}\nimpl Display for Other {}\n";
        let it = items(src);
        assert!(it.manual_serde.contains(&"EventQueue".into()));
        assert!(it.manual_serde.contains(&"Rng".into()));
        assert!(!it.manual_serde.contains(&"Other".into()));
    }

    #[test]
    fn method_calls_keep_the_simple_name() {
        let it = items("fn f(q: &Q) { q.pop_due(3); free(1); }\n");
        let names: Vec<&str> = it.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(names.contains(&"pop_due"));
        assert!(names.contains(&"free"));
    }
}
