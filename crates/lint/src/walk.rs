//! Deterministic, path-based workspace walk.
//!
//! The walk is driven by the directory layout, **not** by cargo
//! metadata, so crates excluded from the cargo workspace (the
//! criterion-dependent `crates/bench`) are still scanned.
//!
//! ## Scan roots and exclusion rules
//!
//! * Every `crates/<name>/src` directory plus the facade crate's
//!   `src/` gets the full rule set.
//! * `crates/<name>/tests`, `crates/<name>/examples`, and the root
//!   `tests/` and `examples/` trees are also walked, but
//!   [`rule_applies`](crate::rules::rule_applies) restricts them to r2
//!   (wall-clock/env): test code may allocate hash maps and unwrap
//!   freely, but an ambient-entropy read in a test masks exactly the
//!   divergence the differential suites exist to catch.
//! * `fixtures/` subdirectories under any `tests/` tree are skipped —
//!   `crates/lint/tests/fixtures/` holds the deliberately-hazardous
//!   rule fixtures, which must never fail the workspace's own gate.
//! * `benches/` trees stay out of scope entirely: bench code measures
//!   wall-clock time by design (the same reason r2 waives `bench.rs`).
//!
//! Directory entries are sorted before recursion so the report order —
//! and therefore the uploaded CI artifact — is byte-stable across
//! filesystems.

use std::io;
use std::path::{Path, PathBuf};

/// Collect every `.rs` file under the workspace's scan roots, sorted.
///
/// # Errors
/// Propagates filesystem errors other than a missing optional root.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_entries(&crates_dir)? {
            for tree in ["src", "tests", "examples"] {
                let dir = krate.join(tree);
                if dir.is_dir() {
                    collect_rs(&dir, &mut files)?;
                }
            }
        }
    }
    for tree in ["src", "tests", "examples"] {
        let dir = root.join(tree);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively gather `.rs` files under `dir` (sorted within each
/// directory by the sorted `read_dir`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            // Fixture directories hold deliberately-hazardous sources
            // (see the module docs) and are never part of the gate.
            if entry.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// `read_dir` with a defined order: the OS yields entries in arbitrary
/// order, which would make finding order nondeterministic — exactly the
/// class of bug this tool exists to catch.
fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = Vec::new();
    for e in std::fs::read_dir(dir)? {
        entries.push(e?.path());
    }
    entries.sort();
    Ok(entries)
}

/// Workspace-relative label (with `/` separators) for a scanned path.
#[must_use]
pub fn label_for(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_relative_and_slash_separated() {
        let root = Path::new("/repo");
        let p = Path::new("/repo/crates/model/src/store.rs");
        assert_eq!(label_for(root, p), "crates/model/src/store.rs");
        let outside = Path::new("/elsewhere/x.rs");
        assert_eq!(label_for(root, outside), "/elsewhere/x.rs");
    }
}
