//! `dreamsim-lint` — standalone front end for the determinism lint
//! engine.
//!
//! ```text
//! USAGE:
//!   dreamsim-lint [--root DIR] [--format text|json|sarif] [--out FILE]
//!                 [--list-rules] [FILES...]
//! ```
//!
//! With no `FILES`, walks every `crates/*/src` tree under `--root`
//! (default `.`) plus the facade crate's `src/` — including the
//! cargo-excluded `crates/bench` — and the `tests/`/`examples/` trees
//! (r2 only; see `walk.rs`). Exit code 0 when clean, 1 when there
//! are unsuppressed findings, 2 on usage or I/O errors, so it slots
//! directly into CI as a blocking gate.

use dreamsim_lint::{lint_files, lint_workspace, render, rule_catalogue, Format};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dreamsim-lint — static determinism checks for the DReAMSim workspace

USAGE:
  dreamsim-lint [--root DIR] [--format text|json|sarif] [--out FILE]
                [--list-rules] [FILES...]

Walks crates/*/src (path-based, so the cargo-excluded crates/bench is
included) plus tests/ and examples/ trees (r2 only) and reports
determinism hazards: nondeterministic iteration, wall-clock/entropy
reads, float equality, unjustified panics, unstable sorts,
undocumented #[serde(skip)] fields, unchecked counter arithmetic,
unproven checkpoint coverage, transitive entropy via helper fns, and
shard-unsafe state (interior mutability, unsafe, raw pointers).
Suppress a finding with a `lint: allow(<rule>) -- <reason>` comment;
the reason is mandatory and every suppression is counted in the
report. --format sarif emits SARIF 2.1.0 for CI check annotations.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut out_file: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    // lint: allow(r2) -- the lint binary parses its own argv, not simulator state
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(need(&mut args, "--root")?),
            "--format" => format = need(&mut args, "--format")?.parse()?,
            "--out" => out_file = Some(PathBuf::from(need(&mut args, "--out")?)),
            "--list-rules" => {
                print!("{}", rule_catalogue());
                return Ok(true);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"));
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let report = if files.is_empty() {
        lint_workspace(&root)
    } else {
        lint_files(&root, &files)
    }
    .map_err(|e| format!("scan failed: {e}"))?;

    let rendered = render(&report, format);
    match &out_file {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!(
                "dreamsim-lint: {} finding(s), {} suppression(s), {} file(s) -> {}",
                report.findings.len(),
                report.suppressions.len(),
                report.files_scanned,
                path.display()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(report.is_clean())
}

fn need(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}
