//! Hand-rolled Rust lexer for the determinism lint engine.
//!
//! The rules in this crate match on *token* streams, never on raw text,
//! so occurrences inside comments, string literals, raw strings, char
//! literals, and doc comments are never mistaken for code. The lexer is
//! deliberately small: it does not parse Rust, it only has to classify
//! source bytes well enough that
//!
//! * identifiers and literals are separated from comments and strings,
//! * multi-char operators the rules care about (`==`, `!=`, `::`) come
//!   out as single tokens,
//! * float literals are distinguishable from integer literals,
//! * lifetimes (`'a`) are not confused with char literals (`'a'`),
//! * line numbers survive for reporting.
//!
//! Comments are collected on the side (they carry suppression pragmas
//! and justification markers) rather than emitted into the token
//! stream.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix
    /// stripped).
    Ident,
    /// Integer literal (including tuple-index positions like the `0` in
    /// `pair.0`).
    Int,
    /// Float literal: has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix.
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Operator or punctuation; multi-char operators from a fixed list
    /// are single tokens, everything else is one char.
    Op,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification used by the rule matchers.
    pub kind: TokKind,
    /// Token text (for `Str`/`Char` the raw literal body is elided —
    /// rules never need it).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment (line or block) with the 1-based line span it covers.
#[derive(Clone, Debug)]
pub struct Comment {
    /// First line of the comment.
    pub line_start: u32,
    /// Last line of the comment (equals `line_start` for `//` comments).
    pub line_end: u32,
    /// Full comment text including the `//` / `/* */` markers.
    pub text: String,
}

/// Output of [`lex`]: the token stream plus side-band comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Total number of lines in the source.
    pub total_lines: u32,
}

/// Two-character operators emitted as single tokens. Order matters only
/// for readability; all entries are the same length.
const TWO_CHAR_OPS: [&str; 18] = [
    "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "..", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unrecognized bytes are emitted as
/// single-char `Op` tokens, and unterminated literals run to the end of
/// input (a linter must keep going, not abort the file).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: impl Into<String>, line: u32) {
        self.out.tokens.push(Tok {
            kind,
            text: text.into(),
            line,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' => self.prefixed(),
                '\'' => self.quote(),
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => self.op(),
            }
        }
        self.out.total_lines = self.line;
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line_start: start,
            line_end: start,
            text,
        });
    }

    /// Nested block comment (`/* /* */ */` closes at the outer `*/`).
    fn block_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line_start: start,
            line_end: self.line,
            text,
        });
    }

    /// Normal string body after the opening `"` has been seen (caller
    /// consumes the opening quote before calling).
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump();
        self.string_body();
        self.push(TokKind::Str, "\"…\"", line);
    }

    /// Raw string body: `#` count already known, opening quote consumed.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Tokens starting with `r` or `b`: raw strings (`r"…"`, `r#"…"#`),
    /// byte strings (`b"…"`, `br"…"`), byte chars (`b'…'`), raw
    /// identifiers (`r#ident`), or plain identifiers.
    fn prefixed(&mut self) {
        let line = self.line;
        let first = self.peek(0);
        let second = self.peek(1);
        match (first, second) {
            (Some('b'), Some('\'')) => {
                self.bump();
                self.bump();
                self.char_body();
                self.push(TokKind::Char, "b'…'", line);
            }
            (Some('b'), Some('"')) => {
                self.bump();
                self.bump();
                self.string_body();
                self.push(TokKind::Str, "b\"…\"", line);
            }
            (Some('b'), Some('r')) if matches!(self.peek(2), Some('"' | '#')) => {
                self.bump();
                self.bump();
                self.raw_after_prefix(line);
            }
            (Some('r'), Some('"' | '#')) => {
                // `r#ident` (raw identifier) vs `r#"…"#` (raw string):
                // decided inside by what follows the hashes.
                self.bump();
                self.raw_after_prefix(line);
            }
            _ => self.ident(),
        }
    }

    /// After the `r` of a raw string / raw identifier, `self.i` at the
    /// first `#` or `"`.
    fn raw_after_prefix(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) == Some('"') {
            for _ in 0..=hashes {
                self.bump();
            }
            self.raw_string_body(hashes);
            self.push(TokKind::Str, "r\"…\"", line);
        } else if hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
            self.bump();
            self.ident();
        } else {
            // `r` followed by stray hashes: emit the `r` as an ident and
            // let the main loop classify the rest.
            self.push(TokKind::Ident, "r", line);
        }
    }

    /// Char-literal body after the opening `'` (consumes through the
    /// closing `'`).
    fn char_body(&mut self) {
        if self.bump() == Some('\\') {
            // Escape: consume the escape head; `\u{…}` runs to `}`.
            if self.bump() == Some('u') && self.peek(0) == Some('{') {
                while let Some(c) = self.bump() {
                    if c == '}' {
                        break;
                    }
                }
            }
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    /// `'…`: lifetime or char literal.
    fn quote(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match (next, after) {
            // `'x'` — single ident-ish char closed by a quote.
            (Some(n), Some('\'')) if is_ident_start(n) => true,
            // `'a`, `'static`, `'_` followed by anything else: lifetime.
            (Some(n), _) if is_ident_start(n) => false,
            // `'\n'`, `'0'`, `' '` … anything non-ident is a char.
            _ => true,
        };
        if is_char {
            self.bump();
            self.char_body();
            self.push(TokKind::Char, "'…'", line);
        } else {
            self.bump();
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                name.push(c);
                self.bump();
            }
            self.push(TokKind::Lifetime, name, line);
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Tuple indices (`pair.0`) must stay integers: after a `.` the
        // digits are a field position, never a float.
        let after_dot =
            matches!(self.out.tokens.last(), Some(t) if t.kind == TokKind::Op && t.text == ".");
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Radix literal: digits and underscores only, then suffix.
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `1.5`, `1.` — but not ranges (`1..n`), method
        // calls on literals, or tuple-index digits.
        if !after_dot && self.peek(0) == Some('.') {
            let nxt = self.peek(1);
            let fractional = match nxt {
                Some(c) if c.is_ascii_digit() => true,
                Some('.') => false,
                Some(c) if is_ident_start(c) => false,
                _ => true,
            };
            if fractional {
                is_float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent: `1e9`, `2.5E-3`.
        if !after_dot && matches!(self.peek(0), Some('e' | 'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let has_exp = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some('+' | '-') => digit.is_some_and(|c| c.is_ascii_digit()),
                _ => false,
            };
            if has_exp {
                is_float = true;
                text.push('e');
                self.bump();
                if matches!(self.peek(0), Some('+' | '-')) {
                    text.push(self.bump().unwrap_or('+'));
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix: `1u64`, `1.5f32`.
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line);
    }

    fn op(&mut self) {
        let line = self.line;
        if let (Some(a), Some(b)) = (self.peek(0), self.peek(1)) {
            let pair: String = [a, b].iter().collect();
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                self.bump();
                self.bump();
                self.push(TokKind::Op, pair, line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokKind::Op, c.to_string(), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_hazard_words() {
        let l = lex("// HashMap in a comment\nlet s = \"Instant::now()\"; /* thread_rng */");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "Instant" && t.text != "thread_rng"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let l = lex("let x = r#\"unwrap() \" quote\"#; /* outer /* inner */ still */ y");
        let idents: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "y"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "'…'".into())));
        let toks = texts("let c = '\\''; let l: &'static str = s;");
        assert!(toks.contains(&(TokKind::Char, "'…'".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "static".into())));
    }

    #[test]
    fn float_vs_int_vs_range_vs_tuple_index() {
        assert!(texts("1.5").contains(&(TokKind::Float, "1.5".into())));
        assert!(texts("1e9").contains(&(TokKind::Float, "1e9".into())));
        assert!(texts("2.5e-3").contains(&(TokKind::Float, "2.5e-3".into())));
        assert!(texts("3f64").contains(&(TokKind::Float, "3f64".into())));
        assert!(texts("42u32").contains(&(TokKind::Int, "42u32".into())));
        assert!(texts("0xFF").contains(&(TokKind::Int, "0xFF".into())));
        let range = texts("for i in 0..10 {}");
        assert!(range.contains(&(TokKind::Int, "0".into())));
        assert!(range.contains(&(TokKind::Op, "..".into())));
        assert!(range.contains(&(TokKind::Int, "10".into())));
        let tup = texts("pair.0 == other.0");
        assert!(tup.contains(&(TokKind::Int, "0".into())));
        assert!(!tup.iter().any(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn multi_char_ops_are_single_tokens() {
        let toks = texts("a == b != c :: d -> e");
        for op in ["==", "!=", "::", "->"] {
            assert!(toks.contains(&(TokKind::Op, op.into())), "missing {op}");
        }
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let l = lex("a\n\"two\nlines\"\nb /* c\nd */ e");
        let a = &l.tokens[0];
        let b = &l.tokens[2];
        let e = &l.tokens[3];
        assert_eq!((a.text.as_str(), a.line), ("a", 1));
        assert_eq!((b.text.as_str(), b.line), ("b", 4));
        assert_eq!((e.text.as_str(), e.line), ("e", 5));
        assert_eq!(l.comments[0].line_start, 4);
        assert_eq!(l.comments[0].line_end, 5);
    }

    #[test]
    fn byte_literals_and_raw_idents() {
        let toks = texts("let x = b'\\n'; let y = b\"bytes\"; let r#type = 1;");
        assert!(toks.contains(&(TokKind::Char, "b'…'".into())));
        assert!(toks.contains(&(TokKind::Str, "b\"…\"".into())));
        assert!(toks.contains(&(TokKind::Ident, "type".into())));
    }
}
