//! Source-region analysis over the token stream: which lines belong to
//! test code (`#[cfg(test)]` items, `mod tests` bodies), which lines
//! carry code at all, and what comment text is attached to each line.
//!
//! Rules use this to (a) skip test code entirely — the determinism
//! guarantees only cover shipping simulator paths — and (b) find the
//! justification markers (`INVARIANT:`, `TIEBREAK:`, `REBUILD:`) and
//! suppression pragmas that sit in comments adjacent to a finding.

use crate::lexer::{Lexed, Tok, TokKind};

/// Per-line facts about one source file (all vectors are indexed by
/// 1-based line number; index 0 is unused).
#[derive(Debug)]
pub struct LineMap {
    /// Line is inside a `#[cfg(test)]` item or a `mod tests` body.
    test: Vec<bool>,
    /// Line carries at least one code token.
    code: Vec<bool>,
    /// Concatenated comment text touching the line (empty if none).
    comments: Vec<String>,
}

impl LineMap {
    /// Build the map for one lexed file.
    #[must_use]
    pub fn build(lexed: &Lexed) -> Self {
        let lines = lexed.total_lines as usize + 2;
        let mut map = Self {
            test: vec![false; lines],
            code: vec![false; lines],
            comments: vec![String::new(); lines],
        };
        for t in &lexed.tokens {
            map.code[t.line as usize] = true;
        }
        for c in &lexed.comments {
            for line in c.line_start..=c.line_end {
                let slot = &mut map.comments[line as usize];
                if !slot.is_empty() {
                    slot.push(' ');
                }
                slot.push_str(&c.text);
            }
        }
        for (start, end) in test_regions(&lexed.tokens) {
            let hi = (end as usize).min(lines - 1);
            for flag in &mut map.test[start as usize..=hi] {
                *flag = true;
            }
        }
        map
    }

    /// Whether `line` is inside test-only code.
    #[must_use]
    pub fn is_test(&self, line: u32) -> bool {
        self.test.get(line as usize).copied().unwrap_or(false)
    }

    /// Whether `line` has code tokens on it.
    #[must_use]
    pub fn has_code(&self, line: u32) -> bool {
        self.code.get(line as usize).copied().unwrap_or(false)
    }

    /// Comment text touching `line` (empty string if none).
    #[must_use]
    pub fn comment(&self, line: u32) -> &str {
        self.comments.get(line as usize).map_or("", String::as_str)
    }

    /// Whether a justification `marker` (e.g. `"INVARIANT:"`) appears in
    /// the comment on `line` itself or in the contiguous block of
    /// comment-only lines directly above it. This is how `.expect()`
    /// chains document their invariants:
    ///
    /// ```text
    /// // INVARIANT: the slot was checked busy two lines up.
    /// .expect("busy slot has a task")
    /// ```
    #[must_use]
    pub fn justified(&self, line: u32, marker: &str) -> bool {
        if self.comment(line).contains(marker) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && !self.has_code(l) && !self.comment(l).is_empty() {
            if self.comment(l).contains(marker) {
                return true;
            }
            l -= 1;
        }
        false
    }

    /// The first code-carrying line at or after `line` (used to attach a
    /// pragma written on its own comment line to the statement below).
    #[must_use]
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        (line as usize..self.code.len())
            .find(|&l| self.code[l])
            .map(|l| l as u32)
    }
}

/// Find `(start_line, end_line)` spans of test-only code: items under a
/// `#[cfg(test)]` attribute and bodies of `mod tests`.
fn test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut k = 0usize;
    while k < tokens.len() {
        // `#[…]` / `#![…]` attribute.
        if tokens[k].text == "#" && tokens[k].kind == TokKind::Op {
            let inner = matches!(tokens.get(k + 1), Some(t) if t.text == "!");
            let open = if inner { k + 2 } else { k + 1 };
            if matches!(tokens.get(open), Some(t) if t.text == "[") {
                let close = matching_bracket(tokens, open);
                if attr_is_cfg_test(&tokens[open + 1..close]) {
                    if inner {
                        // `#![cfg(test)]`: the whole file is test code.
                        regions.push((1, u32::MAX));
                    } else if let Some(span) = item_span(tokens, close + 1, tokens[k].line) {
                        regions.push(span);
                    }
                }
                k = close + 1;
                continue;
            }
        }
        // `mod tests { … }` without an attribute.
        if tokens[k].kind == TokKind::Ident
            && tokens[k].text == "mod"
            && matches!(tokens.get(k + 1), Some(t) if t.kind == TokKind::Ident && t.text == "tests")
            && matches!(tokens.get(k + 2), Some(t) if t.text == "{")
        {
            let close = matching_brace(tokens, k + 2);
            let end = tokens.get(close).map_or(u32::MAX, |t| t.line);
            regions.push((tokens[k].line, end));
            k = close + 1;
            continue;
        }
        k += 1;
    }
    regions
}

/// Whether attribute tokens (between `[` and `]`) are a `cfg` predicate
/// that compiles only under test: first ident `cfg`, mentions `test`,
/// and has no `not` (so `#[cfg(not(test))]` — shipping code — and
/// `#[cfg_attr(test, …)]` are both excluded).
fn attr_is_cfg_test(attr: &[Tok]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    idents.first() == Some(&"cfg") && idents.contains(&"test") && !idents.contains(&"not")
}

/// Span of the item following a `#[cfg(test)]` attribute, starting the
/// scan at token `k` (just past the attribute's `]`). Skips any further
/// attributes, then runs to the item's closing brace — or its `;` for
/// brace-less items (`use …;`, `mod tests;`).
fn item_span(tokens: &[Tok], mut k: usize, start_line: u32) -> Option<(u32, u32)> {
    // Skip stacked attributes (`#[cfg(test)] #[allow(…)] mod t {`).
    while matches!(tokens.get(k), Some(t) if t.text == "#")
        && matches!(tokens.get(k + 1), Some(t) if t.text == "[")
    {
        k = matching_bracket(tokens, k + 1) + 1;
    }
    let mut parens = 0usize;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "(" | "[" => parens += 1,
            ")" | "]" => parens = parens.saturating_sub(1),
            "{" if parens == 0 => {
                let close = matching_brace(tokens, k);
                let end = tokens.get(close).map_or(u32::MAX, |t| t.line);
                return Some((start_line, end));
            }
            ";" if parens == 0 => return Some((start_line, tokens[k].line)),
            _ => {}
        }
        k += 1;
    }
    Some((start_line, u32::MAX))
}

/// Index of the `]` matching the `[` at `open` (token index past the end
/// if unterminated).
fn matching_bracket(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Index of the `}` matching the `{` at `open` (token index past the end
/// if unterminated).
fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map(src: &str) -> LineMap {
        LineMap::build(&lex(src))
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let m = map(src);
        assert!(!m.is_test(1));
        assert!(m.is_test(2));
        assert!(m.is_test(3));
        assert!(m.is_test(4));
        assert!(m.is_test(5));
        assert!(!m.is_test(6));
    }

    #[test]
    fn mod_tests_without_attribute_is_masked() {
        let m = map("mod tests {\n    fn t() {}\n}\nfn live() {}\n");
        assert!(m.is_test(1));
        assert!(m.is_test(2));
        assert!(!m.is_test(4));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let m = map("#[cfg(not(test))]\nfn shipping() {}\n");
        assert!(!m.is_test(1));
        assert!(!m.is_test(2));
    }

    #[test]
    fn stacked_attributes_and_braces_in_signature() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t(x: [u8; 2]) -> Vec<u8> {\n    x.to_vec()\n}\nfn live() {}\n";
        let m = map(src);
        assert!(m.is_test(4));
        assert!(!m.is_test(6));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let m = map("#[cfg(test)]\nuse foo::bar;\nfn live() {}\n");
        assert!(m.is_test(2));
        assert!(!m.is_test(3));
    }

    #[test]
    fn justification_scans_contiguous_comment_block() {
        let src = "fn f() {\n    // INVARIANT: checked above.\n    // continues here.\n    x.expect(\"ok\");\n    y.expect(\"no\");\n}\n";
        let m = map(src);
        assert!(m.justified(4, "INVARIANT:"));
        assert!(!m.justified(5, "INVARIANT:"));
    }

    #[test]
    fn trailing_comment_justifies_its_own_line() {
        let m = map("let x = v.sort_unstable(); // TIEBREAK: u64 keys, ties identical\n");
        assert!(m.justified(1, "TIEBREAK:"));
    }
}
