//! The lint driver: lexes a file, runs the rule matchers, applies
//! suppression pragmas, and aggregates findings into a report.
//!
//! ## Suppression pragmas
//!
//! A finding is suppressed by a comment of the form
//!
//! ```text
//! // lint: allow(r2) -- the bench harness measures wall-clock by design
//! ```
//!
//! placed either trailing on the offending line or on its own comment
//! line directly above it. The `-- reason` is mandatory: a pragma
//! without one is itself reported (rule `p0`), so every suppression in
//! the tree carries its justification. Several rules can share one
//! pragma (`allow(r1, r4)`). A pragma that suppresses nothing is stale
//! and reported as `p1` so fixed code sheds its waivers.
//!
//! Pragmas inside test regions (`#[cfg(test)]`, `mod tests`) are inert:
//! the region is never scanned, so they can neither suppress anything
//! (no spurious suppression counts) nor go stale (no spurious `p1`),
//! and a malformed pragma there is not worth failing the build over.
//!
//! ## Multi-file analysis
//!
//! [`lint_sources`] is the primary entry point: it lexes and parses the
//! whole file set first, runs the workspace-global symbol analyses
//! (r8/r9 — see [`crate::symbols`]), then applies the per-file token
//! rules and pragmas. [`lint_source`] is the single-file convenience
//! wrapper; on one file the global analyses degrade gracefully
//! (unresolvable names prove nothing).

use crate::lexer::{lex, Comment, Lexed};
use crate::parser::{parse_items, FileItems};
use crate::regions::LineMap;
use crate::rules::{in_test_tree, rule_info, scan, RawFinding};
use serde::Serialize;
use std::collections::BTreeMap;

/// One unsuppressed rule violation.
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    /// Workspace-relative path (or the label the caller scanned under).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`r1` … `r6`, `p0`, `p1`).
    pub rule: String,
    /// Hazard description and suggested fix.
    pub message: String,
    /// Trimmed source line the finding points at.
    pub excerpt: String,
}

/// One finding that a pragma waived, with the pragma's reason.
#[derive(Clone, Debug, Serialize)]
pub struct Suppression {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// Rule id that was waived.
    pub rule: String,
    /// The mandatory justification from the pragma.
    pub reason: String,
}

/// Aggregated result of linting one or many files.
#[derive(Debug, Default, Serialize)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Waived findings with their reasons, sorted the same way.
    pub suppressions: Vec<Suppression>,
}

impl LintReport {
    /// Whether the tree is clean (no unsuppressed findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `(rule, count)` pairs over the findings, sorted by rule id.
    #[must_use]
    pub fn counts_by_rule(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule.clone()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Merge another file's outcome into this aggregate.
    pub fn absorb(&mut self, mut other: LintReport) {
        self.files_scanned += other.files_scanned;
        self.findings.append(&mut other.findings);
        self.suppressions.append(&mut other.suppressions);
    }

    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.suppressions
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }
}

/// A parsed suppression pragma.
#[derive(Debug)]
struct Pragma {
    /// Line the pragma's comment ends on (it governs the first code line
    /// at or below this).
    comment_line: u32,
    /// Lowercased rule ids it waives.
    rules: Vec<String>,
    /// Mandatory justification.
    reason: String,
}

/// Outcome of pragma parsing: valid pragmas plus `p0` malformed hits.
struct Pragmas {
    valid: Vec<Pragma>,
    malformed: Vec<(u32, String)>,
}

/// Strip one leading comment marker (`//`, `///`, `//!`, `/*`, or a
/// continuation `*`) so pragma detection anchors at the start of the
/// comment body. Only one marker is stripped: a pragma quoted inside a
/// doc comment (`//! // lint: …`) stays documentation, not a pragma.
fn comment_body(text: &str) -> &str {
    let t = text.trim_start();
    let t = if let Some(rest) = t.strip_prefix("//") {
        rest.strip_prefix(['/', '!']).unwrap_or(rest)
    } else if let Some(rest) = t.strip_prefix("/*") {
        rest
    } else if let Some(rest) = t.strip_prefix('*') {
        rest
    } else {
        t
    };
    t.trim_start()
}

fn parse_pragmas(comments: &[Comment]) -> Pragmas {
    let mut out = Pragmas {
        valid: Vec::new(),
        malformed: Vec::new(),
    };
    for c in comments {
        let body = comment_body(&c.text);
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            out.malformed.push((
                c.line_start,
                "pragma must use the form `lint: allow(<rules>) -- <reason>`".into(),
            ));
            continue;
        };
        let Some((inside, after)) = rest.split_once(')') else {
            out.malformed
                .push((c.line_start, "unterminated `allow(` in pragma".into()));
            continue;
        };
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_ascii_lowercase())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            out.malformed
                .push((c.line_start, "pragma allows no rules".into()));
            continue;
        }
        if let Some(bad) = rules.iter().find(|r| rule_info(r).is_none()) {
            out.malformed
                .push((c.line_start, format!("unknown rule id `{bad}` in pragma")));
            continue;
        }
        let after = after.trim_start();
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            out.malformed.push((
                c.line_start,
                "pragma is missing the mandatory `-- <reason>` justification".into(),
            ));
            continue;
        }
        out.valid.push(Pragma {
            comment_line: c.line_end,
            rules,
            reason: reason.to_string(),
        });
    }
    out
}

/// Lint one source file under the given workspace-relative `label`
/// (the label picks the rule scope — see
/// [`rule_applies`](crate::rules::rule_applies)).
#[must_use]
pub fn lint_source(label: &str, src: &str) -> LintReport {
    lint_sources(&[(label.to_string(), src.to_string())])
}

/// Lint a set of source files together. The workspace-global analyses
/// (checkpoint coverage, taint) see the whole set, so cross-file
/// hazards — a helper in one crate laundering wall-clock reads into
/// another — are caught here and only here.
#[must_use]
pub fn lint_sources(files: &[(String, String)]) -> LintReport {
    // Pass 1: lex, build regions, and parse items per file. Files in
    // tests/examples trees contribute no items: their types and fns
    // are outside the guarantees and must not perturb the proofs.
    let ctxs: Vec<(Lexed, LineMap, FileItems)> = files
        .iter()
        .map(|(label, src)| {
            let lexed = lex(src);
            let map = LineMap::build(&lexed);
            let items = if in_test_tree(label) {
                FileItems::default()
            } else {
                parse_items(&lexed, &map)
            };
            (lexed, map, items)
        })
        .collect();

    // Pass 2: global symbol analyses over the full item set.
    let view: Vec<(&str, &FileItems)> = files
        .iter()
        .zip(&ctxs)
        .map(|((label, _), (_, _, items))| (label.as_str(), items))
        .collect();
    let mut global: BTreeMap<usize, Vec<RawFinding>> = BTreeMap::new();
    for (file_idx, finding) in crate::symbols::global_scan(&view) {
        global.entry(file_idx).or_default().push(finding);
    }

    // Pass 3: per-file token rules + pragma resolution.
    let mut report = LintReport::default();
    for (i, (label, src)) in files.iter().enumerate() {
        let (lexed, map, _) = &ctxs[i];
        let mut raw = scan(lexed, map, label);
        if let Some(extra) = global.remove(&i) {
            raw.extend(extra);
        }
        raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        raw.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
        report.absorb(apply_pragmas(label, src, lexed, map, raw));
    }
    report.sort();
    report
}

/// Resolve suppression pragmas against one file's raw findings and
/// assemble its report.
fn apply_pragmas(
    label: &str,
    src: &str,
    lexed: &Lexed,
    map: &LineMap,
    raw: Vec<RawFinding>,
) -> LintReport {
    let mut pragmas = parse_pragmas(&lexed.comments);
    // Pragmas in test regions are inert: the region is never scanned,
    // so counting them (as suppressions, p0, or p1) would misstate the
    // audit totals for code the guarantees actually cover.
    pragmas.valid.retain(|p| !map.is_test(p.comment_line));
    pragmas.malformed.retain(|(line, _)| !map.is_test(*line));
    let lines: Vec<&str> = src.lines().collect();
    let excerpt = |line: u32| -> String {
        let text = lines
            .get((line as usize).saturating_sub(1))
            .copied()
            .unwrap_or("")
            .trim();
        let mut e: String = text.chars().take(120).collect();
        if text.chars().count() > 120 {
            e.push('…');
        }
        e
    };

    // Resolve each pragma to the code line it governs.
    let mut governed: Vec<(u32, &Pragma, bool)> = pragmas
        .valid
        .iter()
        .map(|p| {
            let target = if map.has_code(p.comment_line) {
                p.comment_line
            } else {
                map.next_code_line(p.comment_line + 1).unwrap_or(0)
            };
            (target, p, false)
        })
        .collect();

    let mut report = LintReport {
        files_scanned: 1,
        ..LintReport::default()
    };

    for f in raw {
        let hit = governed
            .iter_mut()
            .find(|(target, p, _)| *target == f.line && p.rules.iter().any(|r| r == f.rule));
        if let Some((_, p, used)) = hit {
            *used = true;
            report.suppressions.push(Suppression {
                file: label.to_string(),
                line: f.line,
                rule: f.rule.to_string(),
                reason: p.reason.clone(),
            });
        } else {
            report.findings.push(Finding {
                file: label.to_string(),
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message,
                excerpt: excerpt(f.line),
            });
        }
    }

    for (line, message) in pragmas.malformed {
        report.findings.push(Finding {
            file: label.to_string(),
            line,
            rule: "p0".into(),
            message,
            excerpt: excerpt(line),
        });
    }
    for (_, p, used) in governed {
        if !used {
            report.findings.push(Finding {
                file: label.to_string(),
                line: p.comment_line,
                rule: "p1".into(),
                message: format!(
                    "stale pragma: allow({}) suppressed nothing — delete it",
                    p.rules.join(", ")
                ),
                excerpt: excerpt(p.comment_line),
            });
        }
    }
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABEL: &str = "crates/model/src/example.rs";

    #[test]
    fn trailing_pragma_suppresses_and_is_counted() {
        let src = "use std::collections::HashMap; // lint: allow(r1) -- membership only, never iterated\n";
        let r = lint_source(LABEL, src);
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressions.len(), 1);
        assert_eq!(r.suppressions[0].rule, "r1");
        assert!(r.suppressions[0].reason.contains("membership"));
    }

    #[test]
    fn pragma_on_line_above_governs_next_code_line() {
        let src = "// lint: allow(r1) -- scratch map local to one call\nlet m = HashMap::new();\n";
        let r = lint_source(LABEL, src);
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressions.len(), 1);
    }

    #[test]
    fn pragma_without_reason_is_malformed_and_does_not_suppress() {
        let src = "let m = HashMap::new(); // lint: allow(r1)\n";
        let r = lint_source(LABEL, src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"r1"), "r1 must survive: {rules:?}");
        assert!(rules.contains(&"p0"), "missing p0: {rules:?}");
    }

    #[test]
    fn unknown_rule_id_is_malformed() {
        let src = "fn f() {} // lint: allow(r99) -- no such rule\n";
        let r = lint_source(LABEL, src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "p0");
    }

    #[test]
    fn stale_pragma_is_reported() {
        let src = "// lint: allow(r5) -- nothing sorts here any more\nlet x = 1;\n";
        let r = lint_source(LABEL, src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "p1");
    }

    #[test]
    fn quoted_pragma_inside_doc_comment_is_ignored() {
        let src = "//! // lint: allow(r1) -- an example, not a waiver\nfn f() {}\n";
        let r = lint_source(LABEL, src);
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert!(r.suppressions.is_empty());
    }

    #[test]
    fn multi_rule_pragma_covers_both() {
        let src = "// lint: allow(r1, r2) -- mirrors an external API in one adapter line\n\
                   let t = Instant::now(); let m: HashMap<u32, u32> = HashMap::default();\n";
        let r = lint_source("crates/engine/src/adapter.rs", src);
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressions.len(), 2);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let _ = x.unwrap(); }\n}\n";
        let r = lint_source(LABEL, src);
        assert!(r.is_clean(), "findings: {:?}", r.findings);
    }

    #[test]
    fn justified_expect_passes_unjustified_fails() {
        let src = "fn f() {\n    // INVARIANT: head checked non-empty above.\n    let a = q.pop().expect(\"non-empty\");\n    let b = q.pop().expect(\"non-empty\");\n}\n";
        let r = lint_source(LABEL, src);
        assert_eq!(r.findings.len(), 1, "findings: {:?}", r.findings);
        assert_eq!(r.findings[0].line, 4);
        assert_eq!(r.findings[0].rule, "r4");
    }

    #[test]
    fn test_region_pragmas_are_inert_and_uncounted() {
        // One live-path pragma (counted) plus two pragmas inside
        // #[cfg(test)]: a valid-looking one that would previously be
        // reported stale (p1) and a malformed one that would
        // previously fail the build (p0). Both must be inert, and the
        // suppression total must count only the live-path waiver.
        let src = "\
use std::collections::HashMap; // lint: allow(r1) -- membership only, never iterated
#[cfg(test)]
mod tests {
    // lint: allow(r1) -- inert: the region is never scanned
    use std::collections::HashMap;
    // lint: allow(r99)
    fn t() {}
}
";
        let r = lint_source(LABEL, src);
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(
            r.suppressions.len(),
            1,
            "suppressions: {:?}",
            r.suppressions
        );
        assert_eq!(r.suppressions[0].line, 1);
    }

    #[test]
    fn lint_sources_catches_cross_file_taint() {
        let files = vec![
            (
                "crates/sched/src/helper.rs".to_string(),
                "pub fn wall_probe() -> u64 {\n    std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()\n}\n".to_string(),
            ),
            (
                "crates/engine/src/x.rs".to_string(),
                "pub fn step(c: u64) -> u64 { c.max(wall_probe()) }\n".to_string(),
            ),
        ];
        let r = lint_sources(&files);
        // helper.rs: direct r2 on the SystemTime line; x.rs: r9 at the
        // call site, naming the root.
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "r9" && f.file == "crates/engine/src/x.rs"),
            "findings: {:?}",
            r.findings
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "r2" && f.file == "crates/sched/src/helper.rs"),
            "findings: {:?}",
            r.findings
        );
        assert_eq!(r.files_scanned, 2);
    }

    #[test]
    fn waived_source_stops_taint_at_the_root() {
        let files = vec![
            (
                "crates/sched/src/helper.rs".to_string(),
                "pub fn wall_probe() -> u64 {\n    // lint: allow(r2) -- progress display only, never reaches state\n    std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()\n}\n".to_string(),
            ),
            (
                "crates/engine/src/x.rs".to_string(),
                "pub fn step(c: u64) -> u64 { c.max(wall_probe()) }\n".to_string(),
            ),
        ];
        // The audited r2 waiver on the source stops the taint at its
        // root: callers need no pragma of their own.
        let r = lint_sources(&files);
        assert!(r.is_clean(), "findings: {:?}", r.findings);
    }

    #[test]
    fn r9_call_site_is_suppressible_by_pragma() {
        let files = vec![
            (
                "crates/sched/src/helper.rs".to_string(),
                "pub fn wall_probe() -> u64 {\n    std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()\n}\n".to_string(),
            ),
            (
                "crates/engine/src/x.rs".to_string(),
                "// lint: allow(r9) -- logged for operators, never enters the event loop\npub fn step(c: u64) -> u64 { c.max(wall_probe()) }\n".to_string(),
            ),
        ];
        let r = lint_sources(&files);
        assert!(
            r.suppressions.iter().any(|s| s.rule == "r9"),
            "suppressions: {:?}",
            r.suppressions
        );
        // The unwaived source itself still carries its direct r2 (and
        // the helper's own unwrap chain is clean), so only that remains.
        assert!(
            r.findings.iter().all(|f| f.rule == "r2"),
            "findings: {:?}",
            r.findings
        );
    }

    #[test]
    fn scope_r1_only_in_scheduler_crates() {
        let src = "use std::collections::HashMap;\n";
        assert!(!lint_source("crates/model/src/x.rs", src).is_clean());
        assert!(lint_source("crates/rng/src/x.rs", src).is_clean());
        assert!(lint_source("crates/cli/src/x.rs", src).is_clean());
    }

    #[test]
    fn scope_r2_waived_for_cli_and_bench() {
        let src = "use std::time::Instant;\n";
        assert!(!lint_source("crates/engine/src/x.rs", src).is_clean());
        assert!(lint_source("crates/cli/src/main.rs", src).is_clean());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_clean());
        assert!(lint_source("crates/sweep/src/bench.rs", src).is_clean());
    }
}
