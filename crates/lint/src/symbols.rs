//! Workspace-global symbol analyses: the checkpoint-coverage proof
//! (r8) and interprocedural nondeterminism taint (r9).
//!
//! Both analyses consume the per-file [`FileItems`](crate::parser)
//! facts and therefore see the whole file set passed to
//! [`lint_sources`](crate::engine::lint_sources) at once — this is what
//! lifts the engine beyond the token rules' file-local blindness.
//!
//! ## r8 — checkpoint-coverage proof
//!
//! The checkpoint is the single serialized root of simulator state
//! ([`ROOT_TYPE`]). The proof has two halves:
//!
//! 1. **Reachability**: BFS from every struct named `Checkpoint` over
//!    field-type identifiers. Every reachable struct/enum must be
//!    serializable — `#[derive(Serialize)]` or a hand-written
//!    `impl Serialize for T`. Hand-written impls are *opaque leaves*:
//!    their field coverage is owned by the impl (and the round-trip
//!    tests), not provable from field lists, so traversal stops there.
//!    `#[serde(skip)]` fields are not traversed (r6 separately demands
//!    their `// REBUILD:` story). Unresolved names (std/alloc types,
//!    type aliases, generics) are skipped: the proof is over workspace
//!    state types, and an unknown name proves nothing either way.
//! 2. **Live pairs** ([`LIVE_PAIRS`]): the live `Simulation` struct is
//!    captured *field by field* into `Checkpoint`, so a new live field
//!    can silently escape the snapshot while every reachable type still
//!    serializes. Each live-struct field must either name-match a
//!    snapshot field or carry a `// REBUILD:` note saying how resume
//!    reconstructs it. The pair check only runs when both types are in
//!    the scanned set — a single-file scan cannot prove or refute it.
//!
//! ## r9 — nondeterminism taint
//!
//! Sources are function bodies that read ambient entropy (the r2 token
//! set) on a line not waived by an audited `lint: allow(…r2…)` pragma.
//! Taint propagates callee→caller to a fixpoint over the workspace
//! call graph; calls resolve by simple name (every same-named `fn` is
//! a candidate — conservative, and workspace fn names are in practice
//! distinct where it matters). The lattice is flat (clean < tainted)
//! and propagation is monotone, so the fixpoint is reached in at most
//! `|fns|` passes. A finding fires at each call site in an r9-scoped
//! file whose callee is tainted, carrying the entropy root for the
//! audit trail. Direct reads in scoped files are r2's job; r9 covers
//! the helper-function laundering r2 cannot see.

use crate::parser::{FileItems, StructDef};
use crate::rules::{rule_applies, RawFinding};
use std::collections::{BTreeMap, BTreeSet};

/// Root type of the serialized simulator state.
pub const ROOT_TYPE: &str = "Checkpoint";

/// `(live struct, snapshot struct)` pairs whose fields are captured
/// name-by-name rather than by serializing the live struct itself.
pub const LIVE_PAIRS: [(&str, &str); 1] = [("Simulation", "Checkpoint")];

/// Run both global analyses; findings come back tagged with the index
/// of the file they belong to.
#[must_use]
pub fn global_scan(files: &[(&str, &FileItems)]) -> Vec<(usize, RawFinding)> {
    let mut out = checkpoint_coverage(files);
    out.extend(nondet_taint(files));
    out
}

/// A reference into the file set: `(file index, item index)`.
type Ref = (usize, usize);

/// The r8 checkpoint-coverage proof.
fn checkpoint_coverage(files: &[(&str, &FileItems)]) -> Vec<(usize, RawFinding)> {
    // Name → definitions, and the set of hand-serialized type names.
    let mut structs: BTreeMap<&str, Vec<Ref>> = BTreeMap::new();
    let mut enums: BTreeMap<&str, Vec<Ref>> = BTreeMap::new();
    let mut manual: BTreeSet<&str> = BTreeSet::new();
    for (fi, (_, items)) in files.iter().enumerate() {
        for (si, s) in items.structs.iter().enumerate() {
            structs.entry(&s.name).or_default().push((fi, si));
        }
        for (ei, e) in items.enums.iter().enumerate() {
            enums.entry(&e.name).or_default().push((fi, ei));
        }
        for name in &items.manual_serde {
            manual.insert(name);
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(bool, Ref)> = BTreeSet::new();
    let mut queue: Vec<&str> = vec![ROOT_TYPE];
    let mut queued: BTreeSet<&str> = queue.iter().copied().collect();
    while let Some(name) = queue.pop() {
        for &(fi, si) in structs.get(name).into_iter().flatten() {
            if !seen.insert((false, (fi, si))) {
                continue;
            }
            let def = &files[fi].1.structs[si];
            let hand_written = manual.contains(name);
            if !def.derives_serialize && !hand_written {
                out.push((fi, unserializable(name, "struct", def.line)));
            }
            if hand_written {
                continue; // opaque leaf — the impl owns field coverage
            }
            for field in &def.fields {
                if field.serde_skip {
                    continue; // r6 demands the REBUILD story separately
                }
                for ident in &field.type_idents {
                    if queued.insert(ident) {
                        queue.push(ident);
                    }
                }
            }
        }
        for &(fi, ei) in enums.get(name).into_iter().flatten() {
            if !seen.insert((true, (fi, ei))) {
                continue;
            }
            let def = &files[fi].1.enums[ei];
            let hand_written = manual.contains(name);
            if !def.derives_serialize && !hand_written {
                out.push((fi, unserializable(name, "enum", def.line)));
            }
            if hand_written {
                continue;
            }
            for ident in &def.type_idents {
                if queued.insert(ident) {
                    queue.push(ident);
                }
            }
        }
    }

    // Live-pair field coverage.
    for (live_name, snap_name) in LIVE_PAIRS {
        let Some(snaps) = structs.get(snap_name) else {
            continue; // snapshot type not in the scanned set: unprovable
        };
        let snap_fields: BTreeSet<&str> = snaps
            .iter()
            .flat_map(|&(fi, si)| files[fi].1.structs[si].fields.iter())
            .map(|f| f.name.as_str())
            .collect();
        for &(fi, si) in structs.get(live_name).into_iter().flatten() {
            let def: &StructDef = &files[fi].1.structs[si];
            for field in &def.fields {
                if snap_fields.contains(field.name.as_str()) || field.rebuild_note {
                    continue;
                }
                out.push((
                    fi,
                    RawFinding {
                        rule: "r8",
                        line: field.line,
                        message: format!(
                            "live-state field `{live_name}::{}` has no `{snap_name}` counterpart \
                             and no `// REBUILD:` note; capture it in the snapshot or document \
                             how resume rebuilds it",
                            field.name
                        ),
                    },
                ));
            }
        }
    }
    out
}

fn unserializable(name: &str, kind: &str, line: u32) -> RawFinding {
    RawFinding {
        rule: "r8",
        line,
        message: format!(
            "checkpoint-reachable {kind} `{name}` cannot be serialized: no \
             `#[derive(Serialize)]` and no manual serde impl; derive it, hand-write the impl, \
             or detach it from the snapshot with `#[serde(skip)]` + `// REBUILD:`"
        ),
    }
}

/// The r9 interprocedural taint pass.
fn nondet_taint(files: &[(&str, &FileItems)]) -> Vec<(usize, RawFinding)> {
    // Flatten fn defs and index them by simple name.
    let mut defs: Vec<Ref> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, (_, items)) in files.iter().enumerate() {
        for (ni, f) in items.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(defs.len());
            defs.push((fi, ni));
        }
    }

    // Taint state: the entropy root description, once tainted.
    let mut taint: Vec<Option<String>> = defs
        .iter()
        .map(|&(fi, ni)| {
            let f = &files[fi].1.fns[ni];
            f.entropy.as_ref().map(|(tok, line)| {
                format!("`{tok}` read in `{}` at {}:{line}", f.name, files[fi].0)
            })
        })
        .collect();

    // Monotone fixpoint: a clean fn becomes tainted when any callee
    // candidate is tainted; the root description propagates unchanged
    // so every finding names its ultimate entropy source.
    let mut changed = true;
    while changed {
        changed = false;
        for d in 0..defs.len() {
            if taint[d].is_some() {
                continue;
            }
            let (fi, ni) = defs[d];
            let root = files[fi].1.fns[ni].calls.iter().find_map(|call| {
                by_name
                    .get(call.callee.as_str())
                    .into_iter()
                    .flatten()
                    .find_map(|&t| taint[t].clone())
            });
            if root.is_some() {
                taint[d] = root;
                changed = true;
            }
        }
    }

    // Findings: tainted call sites in r9-scoped files.
    let mut out = Vec::new();
    for (fi, (label, items)) in files.iter().enumerate() {
        if !rule_applies("r9", label) {
            continue;
        }
        for f in &items.fns {
            for call in &f.calls {
                let root = by_name
                    .get(call.callee.as_str())
                    .into_iter()
                    .flatten()
                    .find_map(|&t| taint[t].as_deref());
                if let Some(root) = root {
                    out.push((
                        fi,
                        RawFinding {
                            rule: "r9",
                            line: call.line,
                            message: format!(
                                "call to `{}` transitively reaches ambient entropy ({root}); \
                                 thread simulated time or the seeded Rng through instead",
                                call.callee
                            ),
                        },
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;
    use crate::regions::LineMap;

    fn scan_srcs(srcs: &[(&str, &str)]) -> Vec<(usize, RawFinding)> {
        let parsed: Vec<FileItems> = srcs
            .iter()
            .map(|(_, src)| {
                let lexed = lex(src);
                let map = LineMap::build(&lexed);
                parse_items(&lexed, &map)
            })
            .collect();
        let view: Vec<(&str, &FileItems)> = srcs
            .iter()
            .zip(&parsed)
            .map(|(&(label, _), items)| (label, items))
            .collect();
        global_scan(&view)
    }

    #[test]
    fn unserializable_reachable_struct_fires_r8() {
        let findings = scan_srcs(&[(
            "crates/engine/src/x.rs",
            "#[derive(serde::Serialize)]\npub struct Checkpoint { pub stats: Stats }\n\
             pub struct Stats { pub n: u64 }\n",
        )]);
        assert!(
            findings
                .iter()
                .any(|(_, f)| f.rule == "r8" && f.message.contains("`Stats`")),
            "findings: {findings:?}"
        );
    }

    #[test]
    fn derived_and_manual_serde_types_are_covered() {
        let findings = scan_srcs(&[(
            "crates/engine/src/x.rs",
            "#[derive(serde::Serialize)]\npub struct Checkpoint { pub stats: Stats, pub q: Queue }\n\
             #[derive(serde::Serialize)]\npub struct Stats { pub n: u64 }\n\
             pub struct Queue { inner: Vec<u64> }\n\
             impl serde::Serialize for Queue {}\n",
        )]);
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn reachability_crosses_files_and_stops_at_skip_fields() {
        let findings = scan_srcs(&[
            (
                "crates/engine/src/a.rs",
                "#[derive(serde::Serialize)]\npub struct Checkpoint {\n    // REBUILD: rebuilt on resume.\n    #[serde(skip)]\n    pub cache: Index,\n    pub stats: Stats,\n}\n",
            ),
            (
                "crates/engine/src/b.rs",
                "pub struct Index { m: u64 }\n#[derive(serde::Serialize)]\npub struct Stats { pub n: u64 }\n",
            ),
        ]);
        // Index sits behind #[serde(skip)] so it is NOT reachable;
        // Stats is reachable in the other file and is covered.
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn live_pair_field_without_counterpart_or_rebuild_fires_r8() {
        let findings = scan_srcs(&[(
            "crates/engine/src/x.rs",
            "#[derive(serde::Serialize)]\npub struct Checkpoint { pub clock: u64 }\n\
             pub struct Simulation {\n    pub clock: u64,\n    pub scratch: u64,\n    // REBUILD: observers re-register on resume.\n    pub observers: u64,\n}\n",
        )]);
        let r8: Vec<&RawFinding> = findings.iter().map(|(_, f)| f).collect();
        assert_eq!(r8.len(), 1, "findings: {findings:?}");
        assert!(r8[0].message.contains("`Simulation::scratch`"));
    }

    #[test]
    fn live_pair_check_needs_both_types_present() {
        let findings = scan_srcs(&[(
            "crates/engine/src/x.rs",
            "pub struct Simulation { pub scratch: u64 }\n",
        )]);
        assert!(
            findings.is_empty(),
            "single-file scan cannot prove the pair"
        );
    }

    #[test]
    fn transitive_entropy_taints_callers_across_files() {
        let findings = scan_srcs(&[
            (
                "crates/sweep/src/util.rs",
                "pub fn wall_seconds() -> u64 {\n    std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()\n}\n",
            ),
            (
                "crates/engine/src/x.rs",
                "pub fn schedule_tick(x: u64) -> u64 {\n    wall_seconds() + x\n}\n",
            ),
        ]);
        let r9: Vec<&(usize, RawFinding)> =
            findings.iter().filter(|(_, f)| f.rule == "r9").collect();
        assert_eq!(r9.len(), 1, "findings: {findings:?}");
        assert_eq!(r9[0].0, 1, "finding lands in the caller's file");
        assert!(r9[0].1.message.contains("wall_seconds"));
        assert!(
            r9[0].1.message.contains("std::time"),
            "root names the entropy source: {}",
            r9[0].1.message
        );
    }

    #[test]
    fn waived_source_does_not_taint() {
        let findings = scan_srcs(&[
            (
                "crates/lint/src/main.rs",
                "pub fn run() -> u64 {\n    // lint: allow(r2) -- parses its own argv, not simulator state\n    std::env::args().count() as u64\n}\n",
            ),
            (
                "crates/engine/src/x.rs",
                "pub fn drive(s: &mut Sim) { s.run(); }\n",
            ),
        ]);
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn taint_is_not_reported_outside_scope() {
        let findings = scan_srcs(&[
            (
                "crates/sweep/src/bench.rs",
                "pub fn time_reps() -> u64 {\n    let t = std::time::Instant::now(); 0\n}\npub fn micro_point() -> u64 { time_reps() }\n",
            ),
            (
                "crates/cli/src/main.rs",
                "pub fn cmd_bench() { micro_point(); }\n",
            ),
        ]);
        // bench.rs is r2/r9-waived by path; cli is out of scope.
        assert!(findings.is_empty(), "findings: {findings:?}");
    }
}
