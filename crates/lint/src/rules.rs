//! The determinism rule catalogue and the token-stream matchers.
//!
//! Every rule guards one hazard class that can silently break the
//! simulator's bit-identical guarantees (checkpoint resume, the
//! linear-vs-indexed differential proof, seeded figure sweeps):
//!
//! | id | hazard |
//! |----|--------|
//! | r1 | `HashMap`/`HashSet` in scheduler-visible crates — iteration order varies per process |
//! | r2 | wall clock / ambient entropy (`Instant`, `SystemTime`, `std::time`, `std::env`, `thread_rng`) |
//! | r3 | float `==`/`!=` and `partial_cmp().unwrap()` where `total_cmp` is required |
//! | r4 | `.unwrap()`/`.expect()` without an adjacent `// INVARIANT:` justification |
//! | r5 | `sort_unstable*` without a `// TIEBREAK:` note documenting why ties cannot reorder |
//! | r6 | `#[serde(skip)]` fields without a `// REBUILD:` rebuild-on-resume story |
//! | r7 | unannotated narrowing `as` casts and unchecked `+`/`*` on tick/area counters |
//! | r8 | checkpoint-reachable state that the snapshot provably does not cover |
//! | r9 | calls that transitively reach ambient entropy through helper fns |
//! | r10 | `static mut` / interior mutability in shard-visible state without `// SHARD-SAFE:` |
//! | r11 | `unsafe` or raw pointers in shard-visible state without `// SHARD-SAFE:` |
//! | p0 | malformed suppression pragma (unparseable, unknown rule id, or missing reason) |
//! | p1 | unused suppression pragma (suppresses nothing — stale after a fix) |
//!
//! r8 and r9 are the symbol-aware analyses (see [`crate::symbols`]);
//! this module holds their catalogue entries and scoping, while the
//! matchers live in the global pass because they need the whole file
//! set at once.
//!
//! Rules are scoped by path: r1 and r9 only fire in the crates whose
//! state feeds the event loop (`model`, `engine`, `sched`, `sweep`);
//! r2 and r9 are waived for the `cli` crate and for bench harness code
//! (`crates/bench` and `bench.rs` modules), which measure wall-clock
//! time by design; r7 covers only the `model` and `engine` hot paths,
//! where a wrapped tick or truncated area silently corrupts the
//! simulation instead of crashing it. An r7 site is justified with a
//! `// BOUND:` comment naming the bound that rules overflow/truncation
//! out. r10/r11 cover `model`, `engine`, and `sched` — the state a
//! sharded PDES engine would execute concurrently (ROADMAP item 2);
//! `sweep` is excluded because its worker pool uses `Mutex` by design,
//! *outside* the per-shard state. A shard-safety site is justified
//! with a `// SHARD-SAFE:` comment naming why concurrent shards cannot
//! observe it.
//! Test code (`#[cfg(test)]`, `mod tests`) is never scanned, and files
//! under `tests/` or `examples/` trees are scanned for r2 only (see
//! [`in_test_tree`]) — the guarantees cover shipping simulator paths,
//! but a wall-clock read in a test still masks real divergence.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::regions::LineMap;

/// Static description of one rule, for `--list-rules` and docs.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable id used in findings and suppression pragmas.
    pub id: &'static str,
    /// Short human name.
    pub name: &'static str,
    /// One-line description of the hazard.
    pub summary: &'static str,
}

/// The full rule catalogue (including the pragma meta-rules).
pub const RULES: [RuleInfo; 13] = [
    RuleInfo {
        id: "r1",
        name: "nondet-iteration",
        summary: "HashMap/HashSet in scheduler-visible code: iteration order varies per process; \
                  use BTreeMap/BTreeSet or an order-preserving index",
    },
    RuleInfo {
        id: "r2",
        name: "ambient-entropy",
        summary: "wall clock or ambient entropy (Instant, SystemTime, std::time, std::env, \
                  thread_rng) outside cli/bench: simulated time and the seeded Rng are the only \
                  admissible sources",
    },
    RuleInfo {
        id: "r3",
        name: "float-hazard",
        summary: "float ==/!= or partial_cmp().unwrap(): use integer ticks, an epsilon, or \
                  f64::total_cmp",
    },
    RuleInfo {
        id: "r4",
        name: "unjustified-panic",
        summary: ".unwrap()/.expect() without an adjacent // INVARIANT: comment naming the \
                  invariant that rules the panic out",
    },
    RuleInfo {
        id: "r5",
        name: "unstable-sort",
        summary: "sort_unstable* without a // TIEBREAK: note documenting why equal keys cannot \
                  reorder observably",
    },
    RuleInfo {
        id: "r6",
        name: "skipped-field",
        summary: "#[serde(skip)] field without a // REBUILD: note telling the checkpoint-resume \
                  story (rebuilt, re-captured, or safely empty)",
    },
    RuleInfo {
        id: "r7",
        name: "unchecked-counter-arith",
        summary: "narrowing `as` cast or unchecked +/* on a tick/area counter in model/engine \
                  without a // BOUND: note: overflow wraps and truncation drops bits silently \
                  in release; use saturating/checked/try_from or document the bound",
    },
    RuleInfo {
        id: "r8",
        name: "checkpoint-coverage",
        summary: "state reachable from the checkpoint that the snapshot provably does not \
                  cover: a reachable type without Serialize capability, or a live Simulation \
                  field with no Checkpoint counterpart and no // REBUILD: note",
    },
    RuleInfo {
        id: "r9",
        name: "transitive-entropy",
        summary: "call that transitively reaches ambient entropy (wall clock, env, thread_rng) \
                  through helper fns: the file-local r2 cannot see laundering through a callee; \
                  thread simulated time or the seeded Rng through instead",
    },
    RuleInfo {
        id: "r10",
        name: "shard-mutability",
        summary: "static mut or interior mutability (Cell, RefCell, Mutex, RwLock, atomics, \
                  lazy statics) in model/engine/sched without a // SHARD-SAFE: note: shared \
                  mutable state breaks the planned sharded PDES engine's isolation",
    },
    RuleInfo {
        id: "r11",
        name: "shard-unsafety",
        summary: "unsafe block or raw pointer in model/engine/sched without a // SHARD-SAFE: \
                  note: the parallel engine relies on the borrow checker proving shard \
                  disjointness, which unsafe code silently opts out of",
    },
    RuleInfo {
        id: "p0",
        name: "malformed-pragma",
        summary: "suppression pragma that cannot be honoured: unparseable, unknown rule id, or \
                  missing the mandatory `-- reason`",
    },
    RuleInfo {
        id: "p1",
        name: "unused-pragma",
        summary: "suppression pragma that suppressed nothing: stale after a fix, delete it",
    },
];

/// Look up a rule by id.
#[must_use]
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Crates whose state feeds the deterministic event loop (r1 scope).
const R1_CRATES: [&str; 4] = ["model", "engine", "sched", "sweep"];

/// Crates whose hot paths carry the tick/area counters (r7 scope).
const R7_CRATES: [&str; 2] = ["model", "engine"];

/// Crates holding the state a sharded PDES engine would execute
/// concurrently (r10/r11 scope). `sweep` is deliberately absent: its
/// worker pool shares a `Mutex` *between* grid points by design.
const R10_CRATES: [&str; 3] = ["model", "engine", "sched"];

/// Interior-mutability type names (r10). `Atomic*` is matched by
/// prefix separately.
const R10_CELLS: [&str; 8] = [
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
];

/// Cast targets r7 treats as narrowing from the simulator's `u64`
/// ticks / `u32` areas (`usize`/`isize` are platform-width, so a cast
/// into them truncates on 32-bit targets).
const R7_NARROWING: [&str; 9] = [
    "u8", "u16", "u32", "i8", "i16", "i32", "f32", "usize", "isize",
];

/// Identifier fragments that mark a tick/area counter for r7.
const R7_COUNTER_WORDS: [&str; 6] = ["tick", "clock", "area", "downtime", "elapsed", "makespan"];

/// Whether `path` is in a `tests/` or `examples/` tree. Those trees
/// are scanned for r2 only: test code may allocate hash maps and
/// unwrap freely, but a wall-clock or env read in a test masks exactly
/// the divergence the differential suites exist to catch.
#[must_use]
pub fn in_test_tree(path: &str) -> bool {
    path.split('/').any(|s| s == "tests" || s == "examples")
}

/// Whether `rule` applies to the file at `path` (paths use `/`
/// separators; fixture tests pass synthetic labels to pick a scope).
#[must_use]
pub fn rule_applies(rule: &str, path: &str) -> bool {
    if in_test_tree(path) && rule != "r2" {
        return false;
    }
    let segments: Vec<&str> = path.split('/').collect();
    match rule {
        "r1" => match segments.iter().position(|s| *s == "crates") {
            Some(i) => segments.get(i + 1).is_some_and(|c| R1_CRATES.contains(c)),
            // Paths outside a crates/ tree (ad-hoc file scans) get the
            // full rule set.
            None => true,
        },
        "r2" => !segments
            .iter()
            .any(|s| *s == "cli" || *s == "bench" || *s == "bench.rs"),
        "r7" => match segments.iter().position(|s| *s == "crates") {
            Some(i) => segments.get(i + 1).is_some_and(|c| R7_CRATES.contains(c)),
            // Same fallback as r1: ad-hoc scans get the full rule set.
            None => true,
        },
        // r9 shares r1's crate scope *and* r2's bench waiver: the bench
        // harness measures wall-clock by design, transitively included.
        "r9" => {
            let in_scope = match segments.iter().position(|s| *s == "crates") {
                Some(i) => segments.get(i + 1).is_some_and(|c| R1_CRATES.contains(c)),
                None => true,
            };
            in_scope && !segments.iter().any(|s| *s == "bench" || *s == "bench.rs")
        }
        "r10" | "r11" => match segments.iter().position(|s| *s == "crates") {
            Some(i) => segments.get(i + 1).is_some_and(|c| R10_CRATES.contains(c)),
            None => true,
        },
        _ => true,
    }
}

/// A rule hit before suppression pragmas are applied.
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// Rule id (`r1` … `r6`).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Human message naming the hazard and the fix.
    pub message: String,
}

/// Run every scoped rule over one lexed file. Findings come out
/// deduplicated per `(rule, line)` and sorted by line.
#[must_use]
pub fn scan(lexed: &Lexed, map: &LineMap, path: &str) -> Vec<RawFinding> {
    let toks = &lexed.tokens;
    let mut out: Vec<RawFinding> = Vec::new();
    let applies = |rule: &str| rule_applies(rule, path);

    for (k, t) in toks.iter().enumerate() {
        if map.is_test(t.line) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                scan_ident(toks, k, map, &applies, &mut out);
            }
            TokKind::Op => {
                scan_op(toks, k, map, &applies, &mut out);
            }
            _ => {}
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// Operator-token checks. One token can be a candidate for several
/// rules (`*` is r7 counter arithmetic *and* an r11 raw-pointer
/// sigil), so these run sequentially instead of as exclusive match
/// arms.
fn scan_op(
    toks: &[Tok],
    k: usize,
    map: &LineMap,
    applies: &impl Fn(&str) -> bool,
    out: &mut Vec<RawFinding>,
) {
    let t = &toks[k];
    if (t.text == "==" || t.text == "!=") && applies("r3") && float_neighbour(toks, k) {
        out.push(RawFinding {
            rule: "r3",
            line: t.line,
            message: format!(
                "float `{}` comparison: exact float equality is \
                 representation-sensitive; compare integer ticks or use an epsilon",
                t.text
            ),
        });
    }
    if matches!(t.text.as_str(), "+" | "*" | "+=" | "*=")
        && applies("r7")
        && !map.justified(t.line, "BOUND:")
    {
        if let Some(name) = counter_operand(toks, k) {
            out.push(RawFinding {
                rule: "r7",
                line: t.line,
                message: format!(
                    "unchecked `{}` on counter `{name}`: tick/area arithmetic wraps \
                     silently on overflow in release; use saturating/checked ops or add \
                     a `// BOUND:` note naming the bound",
                    t.text
                ),
            });
        }
    }
    // Raw pointer type: `*const T` / `*mut T` (r11). A dereference or
    // multiplication is never followed by the `const`/`mut` keyword.
    if t.text == "*"
        && applies("r11")
        && matches!(
            toks.get(k + 1),
            Some(n) if n.kind == TokKind::Ident && (n.text == "const" || n.text == "mut")
        )
        && !map.justified(t.line, "SHARD-SAFE:")
    {
        out.push(RawFinding {
            rule: "r11",
            line: t.line,
            message: format!(
                "raw pointer `*{}` in shard-visible code without a `// SHARD-SAFE:` note: the \
                 parallel engine relies on borrows proving shard disjointness",
                toks[k + 1].text
            ),
        });
    }
    if t.text == "#" {
        scan_attr(toks, k, map, applies, out);
    }
}

fn scan_ident(
    toks: &[Tok],
    k: usize,
    map: &LineMap,
    applies: &impl Fn(&str) -> bool,
    out: &mut Vec<RawFinding>,
) {
    let t = &toks[k];
    let prev_is_dot = k > 0 && toks[k - 1].kind == TokKind::Op && toks[k - 1].text == ".";
    let next_is_paren = matches!(toks.get(k + 1), Some(n) if n.text == "(");
    match t.text.as_str() {
        "HashMap" | "HashSet" if applies("r1") => out.push(RawFinding {
            rule: "r1",
            line: t.line,
            message: format!(
                "nondeterministic iteration hazard: `{}` in scheduler-visible code; use \
                 BTreeMap/BTreeSet or an order-preserving index",
                t.text
            ),
        }),
        "Instant" | "SystemTime" | "thread_rng" if applies("r2") => out.push(RawFinding {
            rule: "r2",
            line: t.line,
            message: format!(
                "ambient entropy: `{}` outside cli/bench; simulated time and the seeded Rng are \
                 the only admissible sources",
                t.text
            ),
        }),
        "std" if applies("r2") => {
            let path_next = matches!(toks.get(k + 1), Some(n) if n.text == "::");
            if path_next {
                if let Some(seg) = toks.get(k + 2) {
                    if seg.kind == TokKind::Ident && (seg.text == "time" || seg.text == "env") {
                        out.push(RawFinding {
                            rule: "r2",
                            line: t.line,
                            message: format!(
                                "ambient entropy: `std::{}` outside cli/bench; simulated time \
                                 and the seeded Rng are the only admissible sources",
                                seg.text
                            ),
                        });
                    }
                }
            }
        }
        "partial_cmp" if applies("r3") && next_is_paren => {
            if let Some(close) = matching_paren(toks, k + 1) {
                let chained_panic = matches!(toks.get(close + 1), Some(d) if d.text == ".")
                    && matches!(
                        toks.get(close + 2),
                        Some(m) if m.text == "unwrap" || m.text == "expect"
                    );
                if chained_panic {
                    out.push(RawFinding {
                        rule: "r3",
                        line: t.line,
                        message: "float ordering via `partial_cmp().unwrap()`: NaN panics and \
                                  totality is unchecked; use `f64::total_cmp`"
                            .into(),
                    });
                }
            }
        }
        "unwrap" | "expect"
            if prev_is_dot
                && next_is_paren
                && applies("r4")
                && !map.justified(t.line, "INVARIANT:") =>
        {
            out.push(RawFinding {
                rule: "r4",
                line: t.line,
                message: format!(
                    "possible panic: `.{}()` without an adjacent `// INVARIANT:` comment; \
                     return a typed error or document the invariant that rules the panic out",
                    t.text
                ),
            });
        }
        "as" if applies("r7") && !map.justified(t.line, "BOUND:") => {
            if let Some(ty) = toks.get(k + 1) {
                if ty.kind == TokKind::Ident && R7_NARROWING.contains(&ty.text.as_str()) {
                    out.push(RawFinding {
                        rule: "r7",
                        line: t.line,
                        message: format!(
                            "narrowing cast `as {}` without a `// BOUND:` note: out-of-range \
                             values truncate silently; use try_from/From or document the bound",
                            ty.text
                        ),
                    });
                }
            }
        }
        "static" if applies("r10") && !map.justified(t.line, "SHARD-SAFE:") => {
            if matches!(toks.get(k + 1), Some(n) if n.kind == TokKind::Ident && n.text == "mut") {
                out.push(RawFinding {
                    rule: "r10",
                    line: t.line,
                    message: "`static mut` in shard-visible code without a `// SHARD-SAFE:` \
                              note: process-global mutable state is visible to every shard"
                        .into(),
                });
            }
        }
        "unsafe" if applies("r11") && !map.justified(t.line, "SHARD-SAFE:") => {
            out.push(RawFinding {
                rule: "r11",
                line: t.line,
                message: "`unsafe` in shard-visible code without a `// SHARD-SAFE:` note: the \
                          parallel engine relies on the borrow checker proving shard \
                          disjointness, which unsafe code opts out of"
                    .into(),
            });
        }
        s if (R10_CELLS.contains(&s) || s.starts_with("Atomic"))
            && applies("r10")
            && !map.justified(t.line, "SHARD-SAFE:") =>
        {
            out.push(RawFinding {
                rule: "r10",
                line: t.line,
                message: format!(
                    "interior mutability: `{s}` in shard-visible code without a \
                     `// SHARD-SAFE:` note: shared mutation bypasses the shard isolation the \
                     parallel engine depends on",
                ),
            });
        }
        s if s.starts_with("sort_unstable")
            && prev_is_dot
            && applies("r5")
            && !map.justified(t.line, "TIEBREAK:") =>
        {
            out.push(RawFinding {
                rule: "r5",
                line: t.line,
                message: format!(
                    "unstable sort: `.{}()` without an adjacent `// TIEBREAK:` note; equal \
                     keys may reorder — document why ties are unobservable or sort by a \
                     total key",
                    t.text
                ),
            });
        }
        _ => {}
    }
}

/// `#[serde(skip)]` attribute scan (r6).
fn scan_attr(
    toks: &[Tok],
    k: usize,
    map: &LineMap,
    applies: &impl Fn(&str) -> bool,
    out: &mut Vec<RawFinding>,
) {
    if !applies("r6") {
        return;
    }
    if !matches!(toks.get(k + 1), Some(n) if n.text == "[") {
        return;
    }
    let Some(close) = matching_square(toks, k + 1) else {
        return;
    };
    let idents: Vec<&str> = toks[k + 1..close]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    if idents.first() == Some(&"serde")
        && idents.contains(&"skip")
        && !map.justified(toks[k].line, "REBUILD:")
    {
        out.push(RawFinding {
            rule: "r6",
            line: toks[k].line,
            message: "`#[serde(skip)]` field without an adjacent `// REBUILD:` note; a \
                      checkpoint-resumed value is silently defaulted unless the resume path \
                      provably rebuilds it — document that story"
                .into(),
        });
    }
}

/// The tick/area-counter identifier adjacent to the arithmetic op at
/// `k`, if any (r7). The left operand must end an expression — which
/// also rules out `*` as a dereference and `+` in generic bounds
/// (`dyn Trait + Send` has no counter-named neighbour anyway). The
/// right-hand side walks a field chain (`self.stats.total_area`) to its
/// final segment, since that is the name that says "counter".
fn counter_operand(toks: &[Tok], k: usize) -> Option<String> {
    let prev = k.checked_sub(1).and_then(|p| toks.get(p))?;
    let ends_expr = matches!(prev.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
        || prev.text == ")"
        || prev.text == "]";
    if !ends_expr {
        return None;
    }
    if prev.kind == TokKind::Ident && is_counter_name(&prev.text) {
        return Some(prev.text.clone());
    }
    let mut j = k + 1;
    let mut last: Option<&Tok> = None;
    while let Some(t) = toks.get(j) {
        if t.kind != TokKind::Ident {
            break;
        }
        last = Some(t);
        if matches!(toks.get(j + 1), Some(d) if d.text == ".") {
            j += 2;
        } else {
            break;
        }
    }
    last.filter(|t| is_counter_name(&t.text))
        .map(|t| t.text.clone())
}

/// Whether an identifier names a tick/area counter (r7 lexicon).
fn is_counter_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    R7_COUNTER_WORDS.iter().any(|w| lower.contains(w))
}

/// Whether either operand next to the comparison at `k` is a float
/// literal.
fn float_neighbour(toks: &[Tok], k: usize) -> bool {
    let prev = k.checked_sub(1).and_then(|p| toks.get(p));
    let next = toks.get(k + 1);
    prev.is_some_and(|t| t.kind == TokKind::Float) || next.is_some_and(|t| t.kind == TokKind::Float)
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `]` matching the `[` at `open`.
fn matching_square(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}
