//! Mutation self-check: the negative control behind the workspace's
//! zero-findings claim.
//!
//! A static analyzer that reports zero findings could be vacuously
//! blind (a parse regression, a scope typo) and nobody would notice.
//! This test seeds the two headline hazards into copies of the *real*
//! engine sources and asserts the proofs catch them:
//!
//! * a fresh `Simulation` field with no `Checkpoint` counterpart and
//!   no `// REBUILD:` note → r8 must fire;
//! * a transitive `SystemTime::now()` helper called from a new engine
//!   fn → r9 must fire at the call site.

use dreamsim_lint::lint_sources;

/// Read one of the real engine sources.
fn engine_src(name: &str) -> String {
    let path = format!("{}/../engine/src/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// The file set the checkpoint proof needs: the live struct, the
/// snapshot struct, and the stats types both reference.
fn file_set(sim: String) -> Vec<(String, String)> {
    vec![
        ("crates/engine/src/sim.rs".to_string(), sim),
        (
            "crates/engine/src/checkpoint.rs".to_string(),
            engine_src("checkpoint.rs"),
        ),
        (
            "crates/engine/src/stats.rs".to_string(),
            engine_src("stats.rs"),
        ),
    ]
}

#[test]
fn unmutated_sources_carry_no_r8_r9_findings() {
    let report = lint_sources(&file_set(engine_src("sim.rs")));
    let symbol_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "r8" || f.rule == "r9")
        .collect();
    assert!(
        symbol_findings.is_empty(),
        "baseline must be clean: {symbol_findings:?}"
    );
}

#[test]
fn injected_unserialized_field_trips_r8() {
    let sim = engine_src("sim.rs");
    let anchor = "    checkpoint_bytes: u64,\n}";
    assert_eq!(
        sim.matches(anchor).count(),
        1,
        "Simulation's last field moved; update the mutation anchor"
    );
    let mutated = sim.replace(
        anchor,
        "    checkpoint_bytes: u64,\n    injected_unserialized_field: u64,\n}",
    );
    let report = lint_sources(&file_set(mutated));
    assert!(
        report.findings.iter().any(|f| f.rule == "r8"
            && f.file == "crates/engine/src/sim.rs"
            && f.message
                .contains("`Simulation::injected_unserialized_field`")),
        "seeded uncovered field must be caught, got {:?}",
        report.findings
    );
}

#[test]
fn injected_transitive_wall_clock_trips_r9() {
    let mut sim = engine_src("sim.rs");
    sim.push_str(
        "\nfn injected_wall_probe() -> u64 {\n    \
         std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()\n}\n\n\
         pub fn injected_service_hook(base: u64) -> u64 {\n    \
         base.max(injected_wall_probe())\n}\n",
    );
    let report = lint_sources(&file_set(sim));
    assert!(
        report.findings.iter().any(|f| f.rule == "r9"
            && f.file == "crates/engine/src/sim.rs"
            && f.message.contains("injected_wall_probe")),
        "seeded transitive entropy must be caught, got {:?}",
        report.findings
    );
    // The direct read is still r2's job — both layers must report.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "r2" && f.message.contains("std::time")),
        "direct read must also be caught, got {:?}",
        report.findings
    );
}
