//! r3 fixture: float equality comparisons.
pub fn converged(delta: f64) -> bool {
    delta == 0.0
}

pub fn still_moving(delta: f64) -> bool {
    0.0 != delta
}

pub fn pick(a: f64, b: f64) -> f64 {
    if a.partial_cmp(&b).unwrap() == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}
