//! r4 fixture (clean): every panic site carries an adjacent INVARIANT
//! note — trailing on the same line, or directly above inside a chain.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // INVARIANT: caller guarantees xs is non-empty
}

pub fn parse(s: &str) -> u32 {
    s.parse()
        // INVARIANT: s was produced by u32::to_string upstream.
        .expect("round-trip of a u32")
}
