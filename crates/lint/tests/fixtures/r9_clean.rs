//! r9 fixture (clean): the entropy read carries an audited waiver, so
//! the taint stops at its root and callers need no pragma of their
//! own.

/// Display helper; the pragma's audited reason covers callers too.
fn wall_seconds() -> u64 {
    // lint: allow(r2) -- progress display only; never feeds simulation state
    std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()
}

pub fn schedule_tick(now: u64) -> u64 {
    now.max(wall_seconds())
}
