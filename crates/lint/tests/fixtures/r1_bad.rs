//! r1 fixture: hash collections in deterministic crates.
use std::collections::HashMap;
use std::collections::HashSet;

pub struct Table {
    by_id: HashMap<u32, u64>,
    seen: HashSet<u32>,
}

impl Table {
    pub fn tally(&self) -> usize {
        self.by_id.len() + self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_maps_are_fine_in_tests() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
