//! r5 fixture (clean): unstable sorts with the tie-break documented, and
//! a stable sort which needs no note.
pub fn order(mut xs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    // TIEBREAK: full-tuple key, so equal elements are indistinguishable.
    xs.sort_unstable_by_key(|p| (p.1, p.0));
    xs
}

pub fn order_ids(mut ids: Vec<u32>) -> Vec<u32> {
    ids.sort_unstable(); // TIEBREAK: u32 keys are total; duplicates are identical
    ids
}

pub fn order_stable(mut xs: Vec<u32>) -> Vec<u32> {
    xs.sort();
    xs
}
