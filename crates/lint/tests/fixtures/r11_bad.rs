//! r11 fixture: unsafe code and raw pointers in shard-visible code,
//! none of it justified.

pub struct SlotView {
    pub base: *const u64,
    pub cursor: *mut u64,
}

pub fn read_slot(view: &SlotView, idx: usize) -> u64 {
    unsafe { *view.base.add(idx) }
}
