//! r6 fixture (clean): the skipped field documents its rebuild story.
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
pub struct State {
    pub counter: u64,
    // REBUILD: derived from `counter` by rebuild_cache() immediately
    // after deserialization; never read before that.
    #[serde(skip)]
    pub cache: Vec<u64>,
}
