//! r7 fixture: narrowing casts and unchecked counter arithmetic with no
//! documented bound.
pub fn truncate(ticks: u64) -> u32 {
    ticks as u32
}

pub fn index(area: u64) -> usize {
    area as usize
}

pub fn advance(clock: u64, delta: u64) -> u64 {
    clock + delta
}

pub fn scale(total_area: u64, n: u64) -> u64 {
    total_area * n
}

pub fn accumulate(stats: &mut Stats, d: u64) {
    stats.downtime += d;
}

pub struct Stats {
    pub downtime: u64,
}
