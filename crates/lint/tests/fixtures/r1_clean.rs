//! r1 fixture (clean): ordered collections, plus a doc-comment mention
//! of HashMap that must not trip the lexer-aware scan.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Unlike a HashMap, a BTreeMap iterates in key order.
pub struct Table {
    by_id: BTreeMap<u32, u64>,
    seen: BTreeSet<u32>,
}

impl Table {
    pub fn tally(&self) -> usize {
        let name = "HashMap in a string is not a finding";
        self.by_id.len() + self.seen.len() + name.len()
    }
}
