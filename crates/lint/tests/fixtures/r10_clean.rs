//! r10 fixture (clean): every interior-mutability site documents why
//! concurrent shards cannot observe it.

// SHARD-SAFE: the merge buffer is owned by the single merger thread;
// shards only ever hand it sealed segments at the window barrier.
use std::sync::Mutex;

pub struct MergeBuffer {
    // SHARD-SAFE: locked only at the inter-window barrier, when no
    // shard is executing events.
    pub pending: Mutex<Vec<u64>>,
}
