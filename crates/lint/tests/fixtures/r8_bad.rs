//! r8 fixture: checkpoint-reachable state the snapshot provably
//! misses — one reachable type without Serialize capability, and one
//! live field with no snapshot counterpart.
use serde::{Deserialize, Serialize};

/// The serialized snapshot root.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    pub clock: u64,
    pub stats: Stats,
}

/// Reachable from the snapshot but not serializable.
pub struct Stats {
    pub completed: u64,
}

/// Live state: `scratch` has no `Checkpoint` counterpart and no
/// `// REBUILD:` note, so a resume would silently lose it.
pub struct Simulation {
    pub clock: u64,
    pub stats: Stats,
    pub scratch: Vec<u64>,
}
