//! r10 fixture: process-global mutable state and interior mutability
//! in shard-visible code, none of it justified.
use std::cell::RefCell;
use std::sync::Mutex;

static mut GLOBAL_TICKS: u64 = 0;

pub struct ShardState {
    pub counter: RefCell<u64>,
    pub log: Mutex<Vec<u64>>,
}
