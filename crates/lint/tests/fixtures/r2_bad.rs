//! r2 fixture: wall-clock and environment reads in simulation code.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn configured_threads() -> usize {
    std::env::var("THREADS").map_or(1, |v| v.parse().unwrap_or(1))
}
