//! r4 fixture: unwrap/expect with no adjacent INVARIANT justification.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    // A plain comment that is not an invariant note does not justify it.
    s.parse().expect("must be a number")
}
