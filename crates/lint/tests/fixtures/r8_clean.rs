//! r8 fixture (clean): every reachable type serializes — by derive or
//! by hand — and every live field is captured or documents its
//! rebuild story.
use serde::{Deserialize, Serialize};

/// The serialized snapshot root.
#[derive(Serialize, Deserialize)]
pub struct Checkpoint {
    pub clock: u64,
    pub stats: Stats,
    pub queue: EventQueue,
}

#[derive(Serialize, Deserialize)]
pub struct Stats {
    pub completed: u64,
}

/// Serialized by hand: the impl below owns field coverage (the proof
/// treats hand-serialized types as opaque leaves).
pub struct EventQueue {
    heap: Vec<u64>,
}

impl Serialize for EventQueue {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.heap.serialize(s)
    }
}

/// Live state: every field either name-matches a snapshot field or
/// carries a `// REBUILD:` audit note.
pub struct Simulation {
    pub clock: u64,
    pub stats: Stats,
    pub queue: EventQueue,
    // REBUILD: observers are process-local hooks; callers re-register
    // them after resume.
    pub observers: Vec<u32>,
}
