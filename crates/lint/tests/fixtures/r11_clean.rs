//! r11 fixture (clean): the raw pointer and the unsafe block document
//! the shard-disjointness argument.

pub struct SlotView {
    // SHARD-SAFE: points into this shard's own slot arena; shards
    // never exchange views.
    pub base: *const u64,
}

pub fn read_slot(view: &SlotView, idx: usize) -> u64 {
    // SHARD-SAFE: idx is bounds-checked by the caller against this
    // shard's arena length.
    unsafe { *view.base.add(idx) }
}
