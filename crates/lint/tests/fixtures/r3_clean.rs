//! r3 fixture (clean): total_cmp and an explicit tolerance instead of
//! float `==`; integer equality is not a finding.
pub fn converged(prev: f64, next: f64) -> bool {
    (prev - next).abs() < 1e-12
}

pub fn pick(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

pub fn same_count(a: u64, b: u64) -> bool {
    a == b
}
