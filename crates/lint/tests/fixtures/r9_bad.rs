//! r9 fixture: ambient entropy laundered through a helper fn — the
//! file-local r2 flags the read itself, but only the interprocedural
//! taint pass catches the call site.

/// Helper that reads the wall clock.
fn wall_seconds() -> u64 {
    std::time::SystemTime::now().elapsed().unwrap_or_default().as_secs()
}

/// Scheduler path: this call transitively reaches the wall clock.
pub fn schedule_tick(now: u64) -> u64 {
    now.max(wall_seconds())
}
