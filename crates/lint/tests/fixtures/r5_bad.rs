//! r5 fixture: unstable sorts with no documented tie-break.
pub fn order(mut xs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    xs.sort_unstable_by_key(|p| p.1);
    xs
}

pub fn order_ids(mut ids: Vec<u32>) -> Vec<u32> {
    ids.sort_unstable();
    ids
}
