//! r6 fixture: a skipped field with no rebuild-on-resume note.
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
pub struct State {
    pub counter: u64,
    #[serde(skip)]
    pub cache: Vec<u64>,
}
