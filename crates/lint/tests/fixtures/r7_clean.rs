//! r7 fixture (clean): every narrowing cast and counter addition either
//! documents its bound, uses checked arithmetic, or is out of the
//! rule's reach (widening casts, non-counter operands, dereferences).
pub fn truncate(ticks: u64) -> u32 {
    // BOUND: validated <= u32::MAX at parameter construction.
    ticks as u32
}

pub fn index(area: u64) -> usize {
    area as usize // BOUND: area <= 4000 per Table II validation
}

pub fn widen(area: u32) -> u64 {
    u64::from(area)
}

pub fn advance(clock: u64, delta: u64) -> u64 {
    clock.saturating_add(delta)
}

pub fn bounded_advance(clock: u64, delta: u64) -> u64 {
    // BOUND: delta <= task_time.hi and the run ends before 2^63 ticks.
    clock + delta
}

pub fn not_a_counter(items: u64, n: u64) -> u64 {
    items + n
}

pub fn deref_not_multiply(slot_area: &u64) -> u64 {
    *slot_area
}
