//! r2 fixture (clean): simulated time comes from the tick counter, and
//! the one real-clock read is suppressed with a reasoned pragma.
pub struct Clock {
    tick: u64,
}

impl Clock {
    pub fn advance(&mut self) -> u64 {
        self.tick += 1; // BOUND: one increment per event; runs end far below 2^64
        self.tick
    }
}

pub fn progress_seconds() -> u64 {
    // lint: allow(r2) -- progress display only; never feeds simulation state
    std::time::Instant::now().elapsed().as_secs()
}
