//! End-to-end tests of the `dreamsim-lint` binary as a CI gate: exit
//! code 1 (with the finding in the output) on a tree seeded with a
//! known-bad file, exit 0 on a clean tree.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dreamsim-lint")
}

/// A scratch workspace under the target dir, unique per test name.
fn scratch_tree(test: &str, file: &str, contents: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("gate-{test}"));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clear scratch tree");
    }
    let path = root.join(file);
    std::fs::create_dir_all(path.parent().expect("file has a parent")).expect("mkdir");
    std::fs::write(&path, contents).expect("write seed file");
    root
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn gate_fails_on_a_seeded_bad_file() {
    let root = scratch_tree("bad", "crates/model/src/table.rs", &fixture("r1_bad"));
    let out = Command::new(bin())
        .args(["--root"])
        .arg(&root)
        .args(["--format", "json"])
        .output()
        .expect("run dreamsim-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded r1 violation must fail the gate; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"rule\": \"r1\"") && stdout.contains("crates/model/src/table.rs"),
        "JSON output must name the rule and file; got: {stdout}"
    );
}

#[test]
fn gate_passes_on_a_clean_tree() {
    let root = scratch_tree("clean", "crates/model/src/table.rs", &fixture("r1_clean"));
    let out = Command::new(bin())
        .args(["--root"])
        .arg(&root)
        .output()
        .expect("run dreamsim-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean tree must pass; stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn gate_writes_the_json_artifact() {
    let root = scratch_tree("artifact", "crates/model/src/table.rs", &fixture("r1_bad"));
    let report_path = root.join("lint-report.json");
    let out = Command::new(bin())
        .args(["--root"])
        .arg(&root)
        .args(["--format", "json", "--out"])
        .arg(&report_path)
        .output()
        .expect("run dreamsim-lint");
    assert_eq!(out.status.code(), Some(1));
    let json = std::fs::read_to_string(&report_path).expect("artifact written");
    assert!(
        json.contains("\"findings\""),
        "artifact is a report: {json}"
    );
}

#[test]
fn gate_writes_the_sarif_artifact() {
    let root = scratch_tree("sarif", "crates/model/src/table.rs", &fixture("r1_bad"));
    let report_path = root.join("lint-report.sarif");
    let out = Command::new(bin())
        .args(["--root"])
        .arg(&root)
        .args(["--format", "sarif", "--out"])
        .arg(&report_path)
        .output()
        .expect("run dreamsim-lint");
    assert_eq!(out.status.code(), Some(1), "findings still fail the gate");
    let sarif = std::fs::read_to_string(&report_path).expect("artifact written");
    assert!(
        sarif.contains("\"version\": \"2.1.0\"")
            && sarif.contains("\"ruleId\": \"r1\"")
            && sarif.contains("crates/model/src/table.rs"),
        "SARIF artifact names the rule and file: {sarif}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(bin())
        .arg("--no-such-flag")
        .output()
        .expect("run dreamsim-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn explicit_file_arguments_are_scanned() {
    let root = scratch_tree("files", "src/lib.rs", &fixture("r4_bad"));
    let out = Command::new(bin())
        .args(["--root"])
        .arg(&root)
        .arg(root.join("src/lib.rs"))
        .output()
        .expect("run dreamsim-lint");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("[r4]"));
}
