//! Fixture-driven rule tests: one bad/clean pair per rule, linted
//! through the public `lint_source` entry point with synthetic labels
//! that place the fixture in a specific scope.

use dreamsim_lint::{lint_source, LintReport};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Lint a fixture as if it lived at `label` (scoping is path-based).
fn lint_fixture(name: &str, label: &str) -> LintReport {
    lint_source(label, &fixture(name))
}

/// Label that puts every rule in scope (r1 needs model/engine/sched/
/// sweep; r2 needs a non-cli, non-bench path).
const IN_SCOPE: &str = "crates/engine/src/fixture.rs";

fn rules_hit(report: &LintReport) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn bad_fixtures_trip_their_rule() {
    for rule in [
        "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11",
    ] {
        let report = lint_fixture(&format!("{rule}_bad"), IN_SCOPE);
        assert!(
            rules_hit(&report).contains(&rule),
            "{rule}_bad.rs should produce at least one {rule} finding, got {:?}",
            rules_hit(&report)
        );
        for f in &report.findings {
            assert_eq!(f.file, IN_SCOPE);
            assert!(f.line > 0, "findings carry 1-based lines");
            assert!(!f.excerpt.is_empty(), "findings carry a source excerpt");
        }
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for rule in [
        "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11",
    ] {
        let report = lint_fixture(&format!("{rule}_clean"), IN_SCOPE);
        assert!(
            report.is_clean(),
            "{rule}_clean.rs should be clean, got {:?}",
            report.findings
        );
    }
}

#[test]
fn bad_fixture_findings_are_line_accurate() {
    let report = lint_fixture("r1_bad", "crates/model/src/table.rs");
    let lines: Vec<u32> = report
        .findings
        .iter()
        .filter(|f| f.rule == "r1")
        .map(|f| f.line)
        .collect();
    // Two `use` lines and two struct fields; the test-module HashMap is
    // exempt.
    assert_eq!(lines, vec![2, 3, 6, 7], "findings: {:?}", report.findings);
}

#[test]
fn r2_clean_pragma_is_counted_with_its_reason() {
    let report = lint_fixture("r2_clean", IN_SCOPE);
    assert!(report.is_clean());
    assert_eq!(report.suppressions.len(), 1);
    let s = &report.suppressions[0];
    assert_eq!(s.rule, "r2");
    assert_eq!(
        s.reason,
        "progress display only; never feeds simulation state"
    );
}

#[test]
fn r1_is_scoped_to_scheduler_visible_crates() {
    let in_cli = lint_fixture("r1_bad", "crates/cli/src/table.rs");
    assert!(
        !rules_hit(&in_cli).contains(&"r1"),
        "r1 must not fire in crates/cli"
    );
    for scope in ["model", "engine", "sched", "sweep"] {
        let report = lint_fixture("r1_bad", &format!("crates/{scope}/src/table.rs"));
        assert!(
            rules_hit(&report).contains(&"r1"),
            "r1 must fire in {scope}"
        );
    }
}

#[test]
fn r2_is_waived_for_cli_and_bench() {
    for label in [
        "crates/cli/src/main.rs",
        "crates/bench/src/lib.rs",
        "crates/sweep/src/bench.rs",
    ] {
        let report = lint_fixture("r2_bad", label);
        assert!(
            !rules_hit(&report).contains(&"r2"),
            "r2 must be waived for {label}, got {:?}",
            report.findings
        );
    }
    assert!(rules_hit(&lint_fixture("r2_bad", IN_SCOPE)).contains(&"r2"));
}

#[test]
fn adhoc_paths_outside_crates_get_the_full_rule_set() {
    let report = lint_fixture("r1_bad", "scratch/table.rs");
    assert!(rules_hit(&report).contains(&"r1"));
}

#[test]
fn r7_is_scoped_to_model_and_engine() {
    for label in [
        "crates/sched/src/x.rs",
        "crates/sweep/src/x.rs",
        "crates/cli/src/x.rs",
    ] {
        let report = lint_fixture("r7_bad", label);
        assert!(
            !rules_hit(&report).contains(&"r7"),
            "r7 must not fire in {label}, got {:?}",
            report.findings
        );
    }
    for scope in ["model", "engine"] {
        let report = lint_fixture("r7_bad", &format!("crates/{scope}/src/x.rs"));
        assert!(
            rules_hit(&report).contains(&"r7"),
            "r7 must fire in {scope}"
        );
    }
}

#[test]
fn r7_bad_findings_cover_both_hazard_shapes() {
    let report = lint_fixture("r7_bad", "crates/engine/src/x.rs");
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "r7")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("narrowing cast")),
        "cast shape missing: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("unchecked `+`")),
        "addition shape missing: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("unchecked `*`")),
        "multiplication shape missing: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("unchecked `+=`")),
        "compound-assign shape missing: {messages:?}"
    );
}

#[test]
fn r8_bad_covers_both_proof_halves() {
    let report = lint_fixture("r8_bad", IN_SCOPE);
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "r8")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("`Stats`")),
        "unserializable reachable type missing: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("`Simulation::scratch`")),
        "uncovered live field missing: {messages:?}"
    );
}

#[test]
fn r9_bad_flags_the_call_site_with_its_root() {
    let report = lint_fixture("r9_bad", IN_SCOPE);
    let r9: Vec<_> = report.findings.iter().filter(|f| f.rule == "r9").collect();
    assert_eq!(r9.len(), 1, "findings: {:?}", report.findings);
    assert!(r9[0].message.contains("wall_seconds"));
    assert!(r9[0].excerpt.contains("wall_seconds()"));
}

#[test]
fn r9_is_scoped_like_r1_with_the_bench_waiver() {
    for label in [
        "crates/cli/src/main.rs",
        "crates/rng/src/lib.rs",
        "crates/sweep/src/bench.rs",
        "crates/bench/src/lib.rs",
    ] {
        let report = lint_fixture("r9_bad", label);
        assert!(
            !rules_hit(&report).contains(&"r9"),
            "r9 must not fire in {label}, got {:?}",
            report.findings
        );
    }
    for scope in ["model", "engine", "sched", "sweep"] {
        let report = lint_fixture("r9_bad", &format!("crates/{scope}/src/x.rs"));
        assert!(
            rules_hit(&report).contains(&"r9"),
            "r9 must fire in {scope}"
        );
    }
}

#[test]
fn r10_and_r11_are_scoped_to_shard_state_crates() {
    for rule in ["r10", "r11"] {
        for label in ["crates/sweep/src/parallel.rs", "crates/cli/src/main.rs"] {
            let report = lint_fixture(&format!("{rule}_bad"), label);
            assert!(
                !rules_hit(&report).contains(&rule),
                "{rule} must not fire in {label}, got {:?}",
                report.findings
            );
        }
        for scope in ["model", "engine", "sched"] {
            let report = lint_fixture(&format!("{rule}_bad"), &format!("crates/{scope}/src/x.rs"));
            assert!(
                rules_hit(&report).contains(&rule),
                "{rule} must fire in {scope}"
            );
        }
    }
}

#[test]
fn r10_bad_covers_static_mut_and_interior_mutability() {
    let report = lint_fixture("r10_bad", IN_SCOPE);
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "r10")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("`static mut`")),
        "static-mut shape missing: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("`RefCell`")),
        "cell shape missing: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("`Mutex`")),
        "lock shape missing: {messages:?}"
    );
}

#[test]
fn r11_bad_covers_unsafe_and_raw_pointers() {
    let report = lint_fixture("r11_bad", IN_SCOPE);
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "r11")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("`unsafe`")),
        "unsafe shape missing: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("raw pointer `*const`")),
        "*const shape missing: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("raw pointer `*mut`")),
        "*mut shape missing: {messages:?}"
    );
}

#[test]
fn test_trees_are_scanned_for_r2_only() {
    let label = "crates/engine/tests/integration.rs";
    assert!(
        rules_hit(&lint_fixture("r2_bad", label)).contains(&"r2"),
        "r2 must still fire in tests/ trees"
    );
    for rule in ["r1", "r4", "r10"] {
        let report = lint_fixture(&format!("{rule}_bad"), label);
        assert!(
            !rules_hit(&report).contains(&rule),
            "{rule} must be waived in tests/ trees, got {:?}",
            report.findings
        );
    }
}

#[test]
fn malformed_pragma_is_a_p0_finding() {
    let src = "// lint: allow(r1)\nfn f() {}\n";
    let report = lint_source(IN_SCOPE, src);
    assert!(
        rules_hit(&report).contains(&"p0"),
        "reason-less pragma must be flagged, got {:?}",
        report.findings
    );
}

#[test]
fn stale_pragma_is_a_p1_finding() {
    let src = "fn f() -> u32 {\n    // lint: allow(r4) -- nothing to suppress here\n    42\n}\n";
    let report = lint_source(IN_SCOPE, src);
    assert!(
        rules_hit(&report).contains(&"p1"),
        "pragma that suppresses nothing must be flagged, got {:?}",
        report.findings
    );
}
