//! The linter runs on its own workspace: the tree must be clean, and
//! every suppression must carry a reason. This is the in-repo version
//! of the blocking CI gate.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = dreamsim_lint::lint_workspace(workspace_root()).expect("workspace walk");
    assert!(
        report.is_clean(),
        "the workspace must lint clean; findings:\n{}",
        dreamsim_lint::render(&report, dreamsim_lint::Format::Text)
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let report = dreamsim_lint::lint_workspace(workspace_root()).expect("workspace walk");
    assert!(
        !report.suppressions.is_empty(),
        "the tree is expected to carry at least the documented pragmas \
         (balancer zero-guards, lint argv); if all were removed, drop \
         this assertion"
    );
    for s in &report.suppressions {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression at {}:{} has an empty reason",
            s.file,
            s.line
        );
    }
}

#[test]
fn walk_covers_the_cargo_excluded_bench_crate() {
    let files = dreamsim_lint::walk::workspace_files(workspace_root()).expect("walk");
    let labels: Vec<String> = files
        .iter()
        .map(|p| dreamsim_lint::walk::label_for(workspace_root(), p))
        .collect();
    assert!(
        labels.iter().any(|l| l.starts_with("crates/bench/src/")),
        "path-based walk must include crates/bench even though the cargo \
         workspace excludes it; got {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.starts_with("crates/lint/src/")),
        "the linter scans itself"
    );
    // tests/ trees are in scope (r2 only — see walk.rs), but the
    // deliberately-bad fixtures under crates/lint/tests/fixtures/ must
    // never pollute the workspace report.
    assert!(
        labels.iter().any(|l| l.starts_with("tests/")),
        "root tests/ tree must be walked for r2; got {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.starts_with("crates/sweep/tests/")),
        "crate tests/ trees must be walked for r2; got {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.starts_with("examples/")),
        "root examples/ tree must be walked for r2; got {labels:?}"
    );
    assert!(
        !labels.iter().any(|l| l.contains("fixtures")),
        "fixture directories hold deliberately-bad sources and must be \
         excluded; got {labels:?}"
    );
}
