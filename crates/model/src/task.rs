//! Application tasks (Eq. 3): `Taskᵢ(t_required, Cpref, data)`.
//!
//! A task asks for a *preferred* processor configuration `Cpref` and runs
//! for `t_required` timeticks once placed on it. Per Table II, a fraction
//! of tasks (15 % in the paper's runs) prefer a configuration that does
//! not exist in the configuration list; the scheduler then falls back to
//! the *closest match* — the smallest configuration bigger than the
//! preferred one. Such preferences are modeled as
//! [`PreferredConfig::Phantom`] carrying only the required area.

use crate::ids::{Area, ConfigId, TaskId, Ticks};
use serde::{Deserialize, Serialize};

/// What configuration a task asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreferredConfig {
    /// The task prefers a configuration present in the configuration list.
    Known(ConfigId),
    /// The task prefers a configuration *not* in the list; only its area
    /// requirement is known, and the scheduler must substitute the
    /// closest match (Section V).
    Phantom {
        /// Area the preferred (unavailable) configuration would need.
        area: Area,
    },
}

/// Lifecycle state of a task (drives the Table I counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Created, not yet handled by the scheduler.
    #[default]
    Created,
    /// Waiting in the suspension queue for a busy node to free up.
    Suspended,
    /// Executing on a node.
    Running,
    /// Finished execution.
    Completed,
    /// Rejected: no configuration or node could ever serve it.
    Discarded,
}

/// An application task (Eq. 3 plus the bookkeeping fields of the UML
/// `Task` class: create/start/completion times, assigned configuration,
/// suspension retries).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task identifier (`TaskNo`).
    pub id: TaskId,
    /// Execution time on the preferred configuration, in timeticks
    /// (`t_required`).
    pub required_time: Ticks,
    /// The preferred configuration (`Cpref`) — possibly phantom.
    pub preferred: PreferredConfig,
    /// Area needed by the preferred configuration (`NeededArea`); for
    /// known preferences this mirrors the config's `ReqArea`, for phantom
    /// preferences it is the only sizing information available.
    pub needed_area: Area,
    /// Input data size in bytes (`data` in Eq. 3); affects nothing in the
    /// paper's evaluation but is carried for workload realism.
    pub data_bytes: u64,
    /// Creation (arrival) time (`CreateTime`).
    pub create_time: Ticks,
    /// Time the task started executing on a node (`StartTime`).
    pub start_time: Option<Ticks>,
    /// Time the task finished (`CompletionTime`).
    pub completion_time: Option<Ticks>,
    /// Configuration actually assigned (`AssignedConfig`); differs from
    /// `preferred` when the closest match was used.
    pub assigned_config: Option<ConfigId>,
    /// Configuration the scheduler resolved for this task (exact or
    /// closest match), cached at first scheduling so suspension-queue
    /// rescans don't repeat the configuration-list search.
    pub resolved_config: Option<ConfigId>,
    /// Number of times the task was pulled from the suspension queue and
    /// retried (`SusRetry`).
    pub sus_retry: u64,
    /// Fault-injection extension: how many times this task has been
    /// retried after a failed reconfiguration or resubmitted after a
    /// failed execution / node failure. Stays 0 in failure-free runs.
    #[serde(default)]
    pub fault_retries: u32,
    /// Fault-injection extension: when the task last entered the
    /// suspension queue. Lets a suspension-deadline event recognise that
    /// the task it timed was resumed and re-suspended in the meantime.
    #[serde(default)]
    pub suspended_at: Option<Ticks>,
    /// Current lifecycle state.
    pub state: TaskState,
}

impl Task {
    /// Create a task at `create_time` with the given preference.
    ///
    /// `needed_area` must be supplied by the caller because for
    /// [`PreferredConfig::Known`] it mirrors the configuration's area,
    /// which the task table does not have access to.
    #[must_use]
    pub fn new(
        id: TaskId,
        create_time: Ticks,
        required_time: Ticks,
        preferred: PreferredConfig,
        needed_area: Area,
    ) -> Self {
        Self {
            id,
            required_time,
            preferred,
            needed_area,
            data_bytes: 0,
            create_time,
            start_time: None,
            completion_time: None,
            assigned_config: None,
            resolved_config: None,
            sus_retry: 0,
            fault_retries: 0,
            suspended_at: None,
            state: TaskState::Created,
        }
    }

    /// Builder-style data payload size.
    #[must_use]
    pub fn with_data_bytes(mut self, bytes: u64) -> Self {
        self.data_bytes = bytes;
        self
    }

    /// Waiting time per Eq. 8 components available on the task itself:
    /// `tstart − tcreate`. The communication and configuration components
    /// are added by the statistics module, which knows the placement.
    /// Returns `None` until the task has started.
    #[must_use]
    pub fn queueing_delay(&self) -> Option<Ticks> {
        self.start_time.map(|s| s.saturating_sub(self.create_time))
    }

    /// Whether the task reached a terminal state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, TaskState::Completed | TaskState::Discarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(
            TaskId(1),
            100,
            5000,
            PreferredConfig::Known(ConfigId(2)),
            800,
        )
    }

    #[test]
    fn new_task_is_created_state() {
        let t = task();
        assert_eq!(t.state, TaskState::Created);
        assert!(!t.is_terminal());
        assert_eq!(t.queueing_delay(), None);
        assert_eq!(t.sus_retry, 0);
    }

    #[test]
    fn queueing_delay_after_start() {
        let mut t = task();
        t.start_time = Some(175);
        assert_eq!(t.queueing_delay(), Some(75));
    }

    #[test]
    fn queueing_delay_saturates_rather_than_underflows() {
        // A start time before creation is a driver bug, but the metric
        // must not panic mid-simulation; it clamps to zero.
        let mut t = task();
        t.start_time = Some(50);
        assert_eq!(t.queueing_delay(), Some(0));
    }

    #[test]
    fn terminal_states() {
        let mut t = task();
        for (s, term) in [
            (TaskState::Created, false),
            (TaskState::Suspended, false),
            (TaskState::Running, false),
            (TaskState::Completed, true),
            (TaskState::Discarded, true),
        ] {
            t.state = s;
            assert_eq!(t.is_terminal(), term, "{s:?}");
        }
    }

    #[test]
    fn phantom_preference_carries_area() {
        let t = Task::new(
            TaskId(0),
            0,
            10,
            PreferredConfig::Phantom { area: 1234 },
            1234,
        );
        match t.preferred {
            PreferredConfig::Phantom { area } => assert_eq!(area, 1234),
            PreferredConfig::Known(_) => panic!("expected phantom"),
        }
        assert_eq!(t.needed_area, 1234);
    }

    #[test]
    fn builder_data_bytes() {
        let t = task().with_data_bytes(4096);
        assert_eq!(t.data_bytes, 4096);
    }

    #[test]
    fn serde_round_trip() {
        let t = task();
        let js = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&js).unwrap();
        assert_eq!(t, back);
    }
}
