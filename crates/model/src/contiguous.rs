//! Contiguous 1-D placement: a more realistic FPGA area model.
//!
//! The paper models reconfigurable area as a scalar budget (Eq. 4). Real
//! partially reconfigurable devices place each module into a
//! **contiguous** span of fabric columns, so a node whose free area is
//! scattered across small gaps cannot host a large configuration even
//! when the scalar sum suggests it could — external fragmentation. This
//! module provides the interval allocator behind the optional
//! contiguous placement mode (`PlacementModel::Contiguous`, DESIGN.md
//! experiment A5), which quantifies how optimistic the paper's scalar
//! model is.
//!
//! The allocator tracks occupied `[start, start+width)` intervals keyed
//! by the owning slot index, supports first-fit and best-fit gap
//! selection, and reports fragmentation statistics.

use crate::ids::Area;
use serde::{Deserialize, Serialize};

/// One occupied interval of the strip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// First column.
    pub start: Area,
    /// Width in columns.
    pub width: Area,
    /// Owning slot index in the node's config-task-pair slab.
    pub slot: u32,
}

impl Region {
    fn end(&self) -> Area {
        self.start + self.width
    }
}

/// Gap-selection policy for placements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapFit {
    /// Leftmost gap that fits.
    #[default]
    FirstFit,
    /// Smallest gap that fits (minimizes leftover splinters).
    BestFit,
}

/// A 1-D strip of reconfigurable fabric columns.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Strip {
    width: Area,
    /// Occupied regions, sorted by `start`, pairwise disjoint.
    regions: Vec<Region>,
}

impl Strip {
    /// A strip of `width` columns, all free.
    #[must_use]
    pub fn new(width: Area) -> Self {
        Self {
            width,
            regions: Vec::new(),
        }
    }

    /// Total column count.
    #[must_use]
    pub fn width(&self) -> Area {
        self.width
    }

    /// Sum of free columns (the scalar `AvailableArea`).
    #[must_use]
    pub fn total_free(&self) -> Area {
        self.width - self.regions.iter().map(|r| r.width).sum::<Area>()
    }

    /// Free gaps as `(start, width)`, left to right (zero-width gaps
    /// omitted).
    pub fn gaps(&self) -> impl Iterator<Item = (Area, Area)> + '_ {
        let mut cursor = 0;
        let mut idx = 0;
        std::iter::from_fn(move || loop {
            if idx < self.regions.len() {
                let r = self.regions[idx];
                let gap = (cursor, r.start - cursor);
                cursor = r.end();
                idx += 1;
                if gap.1 > 0 {
                    return Some(gap);
                }
            } else if cursor < self.width {
                let gap = (cursor, self.width - cursor);
                cursor = self.width;
                return Some(gap);
            } else {
                return None;
            }
        })
    }

    /// Width of the largest free gap.
    #[must_use]
    pub fn largest_gap(&self) -> Area {
        self.gaps().map(|(_, w)| w).max().unwrap_or(0)
    }

    /// Can a module of `width` columns be placed right now?
    #[must_use]
    pub fn can_fit(&self, width: Area) -> bool {
        width == 0 || self.largest_gap() >= width
    }

    /// Would a module of `width` fit if the given slots were evicted
    /// first? (Feasibility for Algorithm 1 under contiguity.)
    #[must_use]
    pub fn can_fit_after_removing(&self, width: Area, evict: &[u32]) -> bool {
        if width == 0 {
            return true;
        }
        let mut remaining: Vec<Region> = self
            .regions
            .iter()
            .copied()
            .filter(|r| !evict.contains(&r.slot))
            .collect();
        remaining.sort_by_key(|r| r.start);
        let mut cursor = 0;
        let mut best = 0;
        for r in &remaining {
            best = best.max(r.start - cursor);
            cursor = r.end();
        }
        best = best.max(self.width - cursor);
        best >= width
    }

    /// External fragmentation in `[0, 1]`: `1 − largest_gap/total_free`
    /// (0 when free space is one contiguous run or the strip is full).
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        let free = self.total_free();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_gap() as f64 / free as f64
    }

    /// Place a module of `width` for `slot`, returning its start column.
    /// Fails (without changing anything) when no gap fits.
    pub fn place(&mut self, width: Area, slot: u32, fit: GapFit) -> Option<Area> {
        debug_assert!(
            self.regions.iter().all(|r| r.slot != slot),
            "slot {slot} already placed"
        );
        if width == 0 {
            return Some(0);
        }
        let mut chosen: Option<(Area, Area)> = None; // (start, gap width)
        for (start, gw) in self.gaps() {
            if gw < width {
                continue;
            }
            match fit {
                GapFit::FirstFit => {
                    chosen = Some((start, gw));
                    break;
                }
                GapFit::BestFit => {
                    if chosen.is_none_or(|(_, w)| gw < w) {
                        chosen = Some((start, gw));
                    }
                }
            }
        }
        let (start, _) = chosen?;
        let pos = self
            .regions
            .binary_search_by_key(&start, |r| r.start)
            .unwrap_err();
        self.regions.insert(pos, Region { start, width, slot });
        Some(start)
    }

    /// Free the region owned by `slot`. Returns whether it existed.
    pub fn free_slot(&mut self, slot: u32) -> bool {
        match self.regions.iter().position(|r| r.slot == slot) {
            Some(i) => {
                self.regions.remove(i);
                true
            }
            None => false,
        }
    }

    /// Remove every region (node made blank).
    pub fn clear(&mut self) {
        self.regions.clear();
    }

    /// Number of placed regions.
    #[must_use]
    pub fn placed_count(&self) -> usize {
        self.regions.len()
    }

    /// Validate internal consistency (sortedness, disjointness, bounds).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let mut cursor = 0;
        for r in &self.regions {
            if r.width == 0 || r.start < cursor || r.end() > self.width {
                return false;
            }
            cursor = r.end();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_strip_is_one_big_gap() {
        let s = Strip::new(100);
        assert_eq!(s.total_free(), 100);
        assert_eq!(s.largest_gap(), 100);
        assert!(s.can_fit(100));
        assert!(!s.can_fit(101));
        assert_eq!(s.fragmentation(), 0.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn first_fit_places_leftmost() {
        let mut s = Strip::new(100);
        assert_eq!(s.place(30, 0, GapFit::FirstFit), Some(0));
        assert_eq!(s.place(30, 1, GapFit::FirstFit), Some(30));
        assert_eq!(s.place(40, 2, GapFit::FirstFit), Some(60));
        assert_eq!(s.total_free(), 0);
        assert!(s.place(1, 3, GapFit::FirstFit).is_none());
        assert!(s.is_consistent());
    }

    #[test]
    fn freeing_creates_fragmentation() {
        let mut s = Strip::new(100);
        s.place(30, 0, GapFit::FirstFit);
        s.place(30, 1, GapFit::FirstFit);
        s.place(40, 2, GapFit::FirstFit);
        // Free the middle region: 30 free columns but max gap 30.
        assert!(s.free_slot(1));
        assert_eq!(s.total_free(), 30);
        assert_eq!(s.largest_gap(), 30);
        assert!(s.can_fit(30));
        assert!(!s.can_fit(31));
        // Also free slot 0: gap [0,60).
        assert!(s.free_slot(0));
        assert_eq!(s.largest_gap(), 60);
        assert_eq!(s.fragmentation(), 0.0);
    }

    #[test]
    fn scalar_area_can_lie_where_contiguity_cannot() {
        // The A5 headline scenario: 50 free columns, but split 25+25.
        let mut s = Strip::new(100);
        s.place(25, 0, GapFit::FirstFit); // [0,25)
        s.place(25, 1, GapFit::FirstFit); // [25,50)
        s.place(25, 2, GapFit::FirstFit); // [50,75)
        s.place(25, 3, GapFit::FirstFit); // [75,100)
        s.free_slot(0);
        s.free_slot(2);
        assert_eq!(s.total_free(), 50);
        assert!(!s.can_fit(26), "scalar 50 free but max gap is 25");
        assert!(s.fragmentation() > 0.0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_gap() {
        let mut s = Strip::new(100);
        s.place(10, 0, GapFit::FirstFit); // [0,10)
        s.place(20, 1, GapFit::FirstFit); // [10,30)
        s.place(30, 2, GapFit::FirstFit); // [30,60)
        s.free_slot(1); // gap [10,30) width 20
                        // gaps now: [10,30)=20 and [60,100)=40.
        assert_eq!(s.place(15, 3, GapFit::BestFit), Some(10));
        // First fit would also pick 10 here; test the reverse case:
        let mut s2 = Strip::new(100);
        s2.place(10, 0, GapFit::FirstFit); // [0,10)
        s2.free_slot(0); // gap [0,10) and that's it: [0,100) actually.
        assert_eq!(s2.place(5, 1, GapFit::FirstFit), Some(0));
        let mut s3 = Strip::new(100);
        s3.place(40, 0, GapFit::FirstFit); // [0,40)
        s3.place(10, 1, GapFit::FirstFit); // [40,50)
        s3.place(30, 2, GapFit::FirstFit); // [50,80); gap [80,100)=20
        s3.free_slot(0); // gaps: [0,40)=40, [80,100)=20
        assert_eq!(
            s3.place(15, 3, GapFit::BestFit),
            Some(80),
            "best fit takes the 20-gap"
        );
        assert_eq!(
            s3.place(15, 4, GapFit::FirstFit),
            Some(0),
            "first fit takes the left gap"
        );
    }

    #[test]
    fn can_fit_after_removing_models_eviction() {
        let mut s = Strip::new(100);
        s.place(30, 0, GapFit::FirstFit); // [0,30)
        s.place(30, 1, GapFit::FirstFit); // [30,60)
        s.place(30, 2, GapFit::FirstFit); // [60,90)
        assert!(!s.can_fit(40));
        // Evicting the middle alone gives a 30-gap: still no.
        assert!(!s.can_fit_after_removing(40, &[1]));
        // Evicting slots 0+1 coalesces [0,60).
        assert!(s.can_fit_after_removing(40, &[0, 1]));
        // Eviction check must not mutate.
        assert_eq!(s.placed_count(), 3);
    }

    #[test]
    fn free_unknown_slot_is_noop() {
        let mut s = Strip::new(50);
        assert!(!s.free_slot(9));
        s.place(10, 0, GapFit::FirstFit);
        assert!(!s.free_slot(9));
        assert_eq!(s.placed_count(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = Strip::new(60);
        s.place(20, 0, GapFit::FirstFit);
        s.place(20, 1, GapFit::FirstFit);
        s.clear();
        assert_eq!(s.total_free(), 60);
        assert_eq!(s.placed_count(), 0);
        assert!(s.is_consistent());
    }

    #[test]
    fn zero_width_placement_is_trivially_ok() {
        let mut s = Strip::new(10);
        assert_eq!(s.place(0, 0, GapFit::FirstFit), Some(0));
        assert!(s.can_fit(0));
        assert!(s.can_fit_after_removing(0, &[]));
    }

    #[test]
    fn gaps_iterator_covers_free_space_exactly() {
        let mut s = Strip::new(100);
        s.place(10, 0, GapFit::FirstFit);
        s.place(15, 1, GapFit::FirstFit);
        s.free_slot(0);
        let gaps: Vec<(Area, Area)> = s.gaps().collect();
        assert_eq!(gaps, vec![(0, 10), (25, 75)]);
        let total: Area = gaps.iter().map(|g| g.1).sum();
        assert_eq!(total, s.total_free());
    }
}
