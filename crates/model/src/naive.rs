//! Naive full-scan query implementations, used by the data-structure
//! ablation (DESIGN.md experiment A2).
//!
//! The paper motivates its per-configuration linked lists by the cost of
//! searching node state "if the total number of nodes is very large".
//! These functions answer the same queries as
//! [`ResourceManager::find_best_idle`](crate::store::ResourceManager::find_best_idle)
//! et al. **without** the lists, by scanning every slot of every node —
//! charging the correspondingly larger step counts. Benchmarks compare
//! the two to quantify what the lists buy.
//!
//! Results are guaranteed to select the same node/area (ties may resolve
//! to a different slot of the same quality, since scan order differs from
//! list order); the equivalence tests below pin that contract.

use crate::ids::{Area, ConfigId, EntryRef};
use crate::steps::{StepCounter, StepKind};
use crate::store::ResourceManager;

/// Best-fit idle instance of `config` by scanning all slots of all nodes.
pub fn find_best_idle_naive(
    rm: &ResourceManager,
    config: ConfigId,
    steps: &mut StepCounter,
) -> Option<EntryRef> {
    let mut best: Option<(Area, EntryRef)> = None;
    for n in rm.nodes() {
        for (idx, slot) in n.slots() {
            steps.tick(StepKind::Scheduling);
            if slot.config == config && slot.task.is_none() {
                let cand = (n.available_area(), EntryRef::new(n.id, idx));
                if best.is_none_or(|(a, _)| cand.0 < a) {
                    best = Some(cand);
                }
            }
        }
    }
    best.map(|(_, e)| e)
}

/// Does any busy instance of `config` exist? Full scan.
pub fn busy_instance_exists_naive(
    rm: &ResourceManager,
    config: ConfigId,
    steps: &mut StepCounter,
) -> bool {
    for n in rm.nodes() {
        for (_, slot) in n.slots() {
            steps.tick(StepKind::Scheduling);
            if slot.config == config && slot.task.is_some() {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::ids::{NodeId, TaskId};
    use crate::node::Node;

    fn setup() -> (ResourceManager, StepCounter) {
        let configs = vec![
            Config::new(ConfigId(0), 400, 10),
            Config::new(ConfigId(1), 700, 10),
        ];
        let nodes = (0..4)
            .map(|i| Node::new(NodeId::from_index(i), 2000 + 500 * i as u64, 1))
            .collect();
        (ResourceManager::new(nodes, configs), StepCounter::new())
    }

    #[test]
    fn naive_matches_list_based_best_fit() {
        let (mut rm, mut s) = setup();
        for i in 0..4 {
            rm.configure_slot(NodeId(i), ConfigId(0), &mut s).unwrap();
        }
        let via_list = rm.find_best_idle(ConfigId(0), &mut s).unwrap();
        let via_scan = find_best_idle_naive(&rm, ConfigId(0), &mut s).unwrap();
        assert_eq!(via_list.node, via_scan.node);
    }

    #[test]
    fn naive_charges_more_steps_with_many_foreign_slots() {
        let (mut rm, mut s) = setup();
        // Fill nodes with config-1 slots that config-0 searches must skip.
        for i in 0..4 {
            rm.configure_slot(NodeId(i), ConfigId(1), &mut s).unwrap();
        }
        rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        let mut s_list = StepCounter::new();
        rm.find_best_idle(ConfigId(0), &mut s_list);
        let mut s_scan = StepCounter::new();
        find_best_idle_naive(&rm, ConfigId(0), &mut s_scan);
        assert_eq!(
            s_list.scheduling, 1,
            "list search touches only its instances"
        );
        assert_eq!(s_scan.scheduling, 5, "scan touches every live slot");
    }

    #[test]
    fn naive_ignores_busy_instances() {
        let (mut rm, mut s) = setup();
        let e = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.assign_task(e, TaskId(0), &mut s).unwrap();
        assert!(find_best_idle_naive(&rm, ConfigId(0), &mut s).is_none());
        assert!(busy_instance_exists_naive(&rm, ConfigId(0), &mut s));
        assert!(!busy_instance_exists_naive(&rm, ConfigId(1), &mut s));
    }

    #[test]
    fn empty_store_returns_none() {
        let (rm, mut s) = setup();
        assert!(find_best_idle_naive(&rm, ConfigId(0), &mut s).is_none());
        assert_eq!(s.scheduling, 0, "no live slots to scan");
    }
}
