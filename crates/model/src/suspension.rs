//! The suspension queue (the paper's `SusList`).
//!
//! When no node can take a task *now* but some busy node could after its
//! current work drains, the scheduler parks the task here
//! (`AddTaskToSusQueue`). Every task completion rescans the queue
//! (`SearchSusQueue` / `RemoveTaskFromSusQueue`) for a parked task the
//! freed capacity can serve. Rescans are FIFO, so earlier-suspended tasks
//! get first claim — and every examined entry charges one housekeeping
//! step, which is a major contributor to the *total scheduler workload*
//! metric in saturated runs.

use crate::ids::TaskId;
use crate::steps::{StepCounter, StepKind};
use std::collections::VecDeque;

/// FIFO queue of suspended tasks.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SuspensionQueue {
    queue: VecDeque<TaskId>,
    /// High-water mark, reported by the monitoring module.
    peak_len: usize,
    /// Total number of suspensions performed (tasks may re-enter).
    total_suspensions: u64,
}

impl SuspensionQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current queue length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Largest length ever reached.
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total `AddTaskToSusQueue` calls over the run.
    #[must_use]
    pub fn total_suspensions(&self) -> u64 {
        self.total_suspensions
    }

    /// `AddTaskToSusQueue()`: park a task at the tail.
    pub fn push(&mut self, task: TaskId, steps: &mut StepCounter) {
        self.queue.push_back(task);
        self.total_suspensions += 1;
        self.peak_len = self.peak_len.max(self.queue.len());
        steps.tick(StepKind::Housekeeping);
    }

    /// `SearchSusQueue()` + `RemoveTaskFromSusQueue()`: scan from the
    /// front for the first task `accept` is willing to take, remove and
    /// return it. Charges one housekeeping step per examined entry.
    pub fn remove_first_match(
        &mut self,
        steps: &mut StepCounter,
        mut accept: impl FnMut(TaskId) -> bool,
    ) -> Option<TaskId> {
        for i in 0..self.queue.len() {
            steps.tick(StepKind::Housekeeping);
            if accept(self.queue[i]) {
                return self.queue.remove(i);
            }
        }
        None
    }

    /// Iterate the queued tasks front-to-back without removing them
    /// (monitoring; charges no steps).
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.queue.iter().copied()
    }

    /// Remove a specific task wherever it sits (used by failure
    /// injection when a task is killed while suspended). Charges one
    /// housekeeping step per examined entry.
    pub fn remove_task(&mut self, task: TaskId, steps: &mut StepCounter) -> bool {
        for i in 0..self.queue.len() {
            steps.tick(StepKind::Housekeeping);
            if self.queue[i] == task {
                self.queue.remove(i);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        for i in 0..5 {
            q.push(TaskId(i), &mut s);
        }
        let order: Vec<TaskId> = q.iter().collect();
        assert_eq!(order, (0..5).map(TaskId).collect::<Vec<_>>());
        assert_eq!(q.len(), 5);
        assert_eq!(s.housekeeping, 5);
    }

    #[test]
    fn remove_first_match_takes_earliest_acceptable() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        for i in 0..6 {
            q.push(TaskId(i), &mut s);
        }
        let before = s.housekeeping;
        // Accept only even-numbered tasks greater than 1.
        let got = q.remove_first_match(&mut s, |t| t.0 > 1 && t.0 % 2 == 0);
        assert_eq!(got, Some(TaskId(2)));
        assert_eq!(s.housekeeping - before, 3, "examined tasks 0,1,2");
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn remove_first_match_none_scans_everything() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        for i in 0..4 {
            q.push(TaskId(i), &mut s);
        }
        let before = s.housekeeping;
        assert_eq!(q.remove_first_match(&mut s, |_| false), None);
        assert_eq!(s.housekeeping - before, 4);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn peak_and_total_counters() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        q.push(TaskId(0), &mut s);
        q.push(TaskId(1), &mut s);
        q.remove_first_match(&mut s, |_| true);
        q.push(TaskId(2), &mut s);
        assert_eq!(q.peak_len(), 2);
        assert_eq!(q.total_suspensions(), 3);
    }

    #[test]
    fn remove_task_targets_specific_entry() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        for i in 0..4 {
            q.push(TaskId(i), &mut s);
        }
        assert!(q.remove_task(TaskId(2), &mut s));
        assert!(!q.remove_task(TaskId(2), &mut s));
        let order: Vec<TaskId> = q.iter().collect();
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(3)]);
    }

    #[test]
    fn remove_task_absent_id_scans_whole_queue_without_change() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        for i in 0..4 {
            q.push(TaskId(i), &mut s);
        }
        let before = s.housekeeping;
        assert!(!q.remove_task(TaskId(99), &mut s));
        assert_eq!(
            s.housekeeping - before,
            4,
            "a miss still examines every entry"
        );
        assert_eq!(q.len(), 4);
        assert_eq!(
            q.iter().collect::<Vec<_>>(),
            (0..4).map(TaskId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn remove_task_duplicate_id_removes_only_the_first() {
        // The driver never parks the same task twice concurrently, but
        // the queue itself must stay well-behaved if it happens: one
        // removal takes exactly one (the earliest) occurrence.
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        q.push(TaskId(7), &mut s);
        q.push(TaskId(3), &mut s);
        q.push(TaskId(7), &mut s);
        assert!(q.remove_task(TaskId(7), &mut s));
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![TaskId(3), TaskId(7)]);
        assert!(q.remove_task(TaskId(7), &mut s));
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![TaskId(3)]);
        assert!(!q.remove_task(TaskId(7), &mut s));
    }

    #[test]
    fn remove_first_match_duplicate_ids_take_front_occurrence() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        q.push(TaskId(5), &mut s);
        q.push(TaskId(5), &mut s);
        q.push(TaskId(1), &mut s);
        assert_eq!(
            q.remove_first_match(&mut s, |t| t == TaskId(5)),
            Some(TaskId(5))
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![TaskId(5), TaskId(1)]);
    }

    #[test]
    fn remove_first_match_charges_steps_up_to_the_match_only() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        for i in 0..8 {
            q.push(TaskId(i), &mut s);
        }
        let before = s.housekeeping;
        assert_eq!(
            q.remove_first_match(&mut s, |t| t == TaskId(0)),
            Some(TaskId(0))
        );
        assert_eq!(s.housekeeping - before, 1, "front hit examines one entry");
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        assert!(q.is_empty());
        assert_eq!(q.remove_first_match(&mut s, |_| true), None);
        assert!(!q.remove_task(TaskId(0), &mut s));
        assert_eq!(s.housekeeping, 0);
    }
}
