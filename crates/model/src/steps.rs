//! Search-step accounting.
//!
//! The paper defines a *search step* as "a basic unit of exploration to
//! search a memory location" and derives two Table I metrics from it:
//!
//! * **Average scheduling steps per task** — steps the scheduler itself
//!   takes to place a task (`Total_Search_Length_Scheduler`).
//! * **Total scheduler workload** — scheduling steps *plus* the
//!   housekeeping steps of the resource information module (maintaining
//!   idle/busy lists and the suspension queue).
//!
//! Every traversal in [`crate::lists`], [`crate::store`], and
//! [`crate::suspension`] charges one of the two categories through this
//! counter. Algorithm 1 in the paper increments both counters per visited
//! entry (`SearchLength` and `TotalSimWorkLoad`); we reproduce that by
//! always folding scheduling steps into the workload total.

use serde::{Deserialize, Serialize};

/// Which activity a traversal belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// Steps taken while deciding where a task goes (Algorithm 1, list
    /// searches, node-table scans initiated by the scheduler).
    Scheduling,
    /// Steps taken by the resource information module for bookkeeping
    /// (list insert/remove traversals, suspension-queue rescans).
    Housekeeping,
}

/// Accumulator for search steps, shared by the scheduler and the resource
/// manager during a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepCounter {
    /// `Total_Search_Length_Scheduler`: scheduling steps only.
    pub scheduling: u64,
    /// Housekeeping steps only.
    pub housekeeping: u64,
}

impl StepCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` steps of the given kind.
    #[inline]
    pub fn charge(&mut self, kind: StepKind, n: u64) {
        match kind {
            StepKind::Scheduling => self.scheduling += n,
            StepKind::Housekeeping => self.housekeeping += n,
        }
    }

    /// Charge one step of the given kind.
    #[inline]
    pub fn tick(&mut self, kind: StepKind) {
        self.charge(kind, 1);
    }

    /// The paper's *total scheduler workload*: scheduling plus
    /// housekeeping steps.
    #[must_use]
    pub fn total_workload(&self) -> u64 {
        self.scheduling + self.housekeeping
    }

    /// Difference against an earlier snapshot (for per-task accounting).
    #[must_use]
    pub fn since(&self, earlier: &StepCounter) -> StepCounter {
        StepCounter {
            scheduling: self.scheduling - earlier.scheduling,
            housekeeping: self.housekeeping - earlier.housekeeping,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_kind() {
        let mut c = StepCounter::new();
        c.tick(StepKind::Scheduling);
        c.charge(StepKind::Scheduling, 4);
        c.charge(StepKind::Housekeeping, 10);
        assert_eq!(c.scheduling, 5);
        assert_eq!(c.housekeeping, 10);
        assert_eq!(c.total_workload(), 15);
    }

    #[test]
    fn since_computes_deltas() {
        let mut c = StepCounter::new();
        c.charge(StepKind::Scheduling, 3);
        let snap = c;
        c.charge(StepKind::Scheduling, 7);
        c.charge(StepKind::Housekeeping, 2);
        let d = c.since(&snap);
        assert_eq!(d.scheduling, 7);
        assert_eq!(d.housekeeping, 2);
    }

    #[test]
    fn default_is_zero() {
        let c = StepCounter::default();
        assert_eq!(c.total_workload(), 0);
    }
}
