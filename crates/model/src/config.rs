//! Processor configurations (Eq. 2):
//! `Cᵢ(ReqArea, Ptype, param, BSize, ConfigTime)`.
//!
//! A configuration is a synthesizable soft processor that can be
//! instantiated on any node with enough free reconfigurable area. `Ptype`
//! names the processor class (the paper's examples: multipliers, systolic
//! arrays, soft cores such as the parameterizable ρ-VEX VLIW, custom
//! signal processors); `param` carries its architectural parameters.

use crate::caps::Capabilities;
use crate::ids::{Area, ConfigId, Ticks};
use serde::{Deserialize, Serialize};

/// The processor class a configuration instantiates (the paper's
/// `Ptype`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum ProcessorType {
    /// Hardware multiplier array.
    Multiplier {
        /// Operand width in bits.
        width_bits: u16,
    },
    /// Systolic array.
    SystolicArray {
        /// Grid rows.
        rows: u16,
        /// Grid columns.
        cols: u16,
    },
    /// Parameterizable soft-core VLIW in the style of ρ-VEX
    /// (Wong, van As & Brown, ICFPT 2008), the paper's running example.
    SoftCoreVliw {
        /// Issue width.
        issues: u8,
        /// Number of ALUs.
        alus: u8,
        /// Number of multiplier units.
        multipliers: u8,
        /// Number of memory slots.
        memory_slots: u8,
        /// Number of cluster cores.
        clusters: u8,
    },
    /// Custom-made signal processor.
    SignalProcessor {
        /// Number of filter taps.
        taps: u16,
    },
    /// Generic placeholder used by synthetic workloads that do not care
    /// about the processor class.
    #[default]
    Generic,
}

impl ProcessorType {
    /// A short stable label, used in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ProcessorType::Multiplier { .. } => "multiplier",
            ProcessorType::SystolicArray { .. } => "systolic-array",
            ProcessorType::SoftCoreVliw { .. } => "softcore-vliw",
            ProcessorType::SignalProcessor { .. } => "signal-processor",
            ProcessorType::Generic => "generic",
        }
    }
}

/// A named architectural parameter of a `Ptype`
/// (the paper's `param = {parameter₁, …, parameterₖ}`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name (e.g. "issues").
    pub name: String,
    /// Parameter value.
    pub value: i64,
}

/// A processor configuration (Eq. 2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// This configuration's identifier (`ConfigNo`).
    pub id: ConfigId,
    /// Reconfigurable area the configuration occupies (`ReqArea`).
    pub req_area: Area,
    /// Processor class (`Ptype`).
    pub ptype: ProcessorType,
    /// Architectural parameter list (`param`).
    pub params: Vec<Param>,
    /// Bitstream file size in bytes (`BSize`).
    pub bitstream_bytes: u64,
    /// Time to configure a node region with this configuration, in
    /// timeticks (`ConfigTime`).
    pub config_time: Ticks,
    /// Capabilities the configuration requires from its host node.
    /// Empty in the paper's evaluation; richer policies may use it.
    pub required_caps: Capabilities,
}

impl Config {
    /// Construct a minimal configuration with the fields the evaluation
    /// exercises; `ptype` defaults to [`ProcessorType::Generic`], bitstream
    /// size is estimated from area (one kilobyte per area unit, a typical
    /// frame-per-slice scaling).
    #[must_use]
    pub fn new(id: ConfigId, req_area: Area, config_time: Ticks) -> Self {
        Self {
            id,
            req_area,
            ptype: ProcessorType::Generic,
            params: Vec::new(),
            // BOUND: req_area <= 2000 (Table II); the product stays far below 2^64.
            bitstream_bytes: req_area * 1024,
            config_time,
            required_caps: Capabilities::none(),
        }
    }

    /// Builder-style override of the processor type.
    #[must_use]
    pub fn with_ptype(mut self, ptype: ProcessorType) -> Self {
        self.ptype = ptype;
        self
    }

    /// Builder-style override of the parameter list.
    #[must_use]
    pub fn with_params(mut self, params: Vec<Param>) -> Self {
        self.params = params;
        self
    }

    /// Builder-style override of the bitstream size.
    #[must_use]
    pub fn with_bitstream_bytes(mut self, bytes: u64) -> Self {
        self.bitstream_bytes = bytes;
        self
    }

    /// Builder-style override of required capabilities.
    #[must_use]
    pub fn with_required_caps(mut self, caps: Capabilities) -> Self {
        self.required_caps = caps;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caps::Capability;

    #[test]
    fn new_fills_defaults() {
        let c = Config::new(ConfigId(3), 500, 15);
        assert_eq!(c.id, ConfigId(3));
        assert_eq!(c.req_area, 500);
        assert_eq!(c.config_time, 15);
        assert_eq!(c.ptype, ProcessorType::Generic);
        assert_eq!(c.bitstream_bytes, 500 * 1024);
        assert!(c.params.is_empty());
        assert!(c.required_caps.is_empty());
    }

    #[test]
    fn builder_overrides() {
        let c = Config::new(ConfigId(0), 100, 10)
            .with_ptype(ProcessorType::SoftCoreVliw {
                issues: 4,
                alus: 4,
                multipliers: 2,
                memory_slots: 1,
                clusters: 1,
            })
            .with_params(vec![Param {
                name: "issues".into(),
                value: 4,
            }])
            .with_bitstream_bytes(4096)
            .with_required_caps([Capability::DspSlices].into_iter().collect());
        assert_eq!(c.ptype.label(), "softcore-vliw");
        assert_eq!(c.params.len(), 1);
        assert_eq!(c.bitstream_bytes, 4096);
        assert!(c.required_caps.contains(Capability::DspSlices));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            ProcessorType::Multiplier { width_bits: 32 }.label(),
            "multiplier"
        );
        assert_eq!(
            ProcessorType::SystolicArray { rows: 4, cols: 4 }.label(),
            "systolic-array"
        );
        assert_eq!(
            ProcessorType::SignalProcessor { taps: 64 }.label(),
            "signal-processor"
        );
        assert_eq!(ProcessorType::Generic.label(), "generic");
    }

    #[test]
    fn serde_round_trip() {
        let c = Config::new(ConfigId(9), 1234, 12);
        let js = serde_json::to_string(&c).unwrap();
        let back: Config = serde_json::from_str(&js).unwrap();
        assert_eq!(c, back);
    }
}
