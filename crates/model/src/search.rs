//! Pluggable scheduler-search backends (DESIGN.md §11).
//!
//! The paper concedes that "currently, a simple linear search is
//! employed" for every placement query, and the step-count metrics of
//! Table I are *defined* by those linear walks. This module decouples
//! the **model cost** (scheduling steps charged per search, which feed
//! the figures and reports) from the **wall-clock cost** (how long the
//! simulator actually takes to answer the query):
//!
//! * [`SearchBackend::Linear`] — the paper-faithful scans, default.
//! * [`SearchBackend::Indexed`] — ordered indexes that answer the same
//!   queries in `O(log n)` wall-clock time while still charging the
//!   linear backend's exact step counts, so every report, figure
//!   series, and checkpoint stays **byte-identical** between backends
//!   (proven by the differential harness in `tests/differential.rs`).
//!
//! ## Index structures
//!
//! * a config-area table sorted by `(ReqArea, ConfigId)` for
//!   `FindClosestConfig` (the configuration list is immutable, so this
//!   is built once per rebuild);
//! * `BTreeSet<(TotalArea, NodeId)>` over **blank** up-nodes and
//!   `BTreeSet<(AvailableArea, NodeId)>` over **partially blank**
//!   up-nodes, for `FindBestNode` on blank/partially-blank phases;
//! * per configuration, a `BTreeMap<(AvailableArea, Reverse(seq)),
//!   EntryRef>` over the idle instances, where `seq` is a monotone
//!   push sequence number that reproduces the intrusive idle list's
//!   LIFO tie-breaking exactly (see below).
//!
//! ## Tie-break fidelity
//!
//! The linear `find_best_idle` walks the idle list head→tail and keeps
//! the *first* entry of minimal available area; the head is the most
//! recently pushed entry, so among equals the **largest push sequence**
//! wins. Keying the idle index by `(area, Reverse(seq))` makes
//! `BTreeMap::first_key_value` return exactly that entry. Dually,
//! `find_worst_idle` keeps the first entry of maximal area, recovered
//! by ranging into the maximal-area group from `Reverse(u64::MAX)`.
//!
//! ## What stays linear under both backends
//!
//! `find_first_idle` (the list head is already O(1)), `collect_idle`
//! (must return entries in list order for the random policy's RNG
//! stream), `find_any_idle_node` (Algorithm 1's per-slot accumulation
//! with early exit), and `busy_candidate_exists` (its step charge
//! equals the position of the first match, which no order-preserving
//! index can reproduce without doing the scan). These are documented in
//! DESIGN.md §11; the differential harness covers them anyway because
//! both backends share the same code paths for them.
//!
//! ## Consistency
//!
//! [`ResourceManager`](crate::store::ResourceManager) keeps the index
//! incrementally in sync from every mutation path (configure,
//! assign/release, evict, fail/repair). `check_invariants` — and hence
//! the engine auditor — cross-checks the live index against a
//! from-scratch [`SearchIndex::rebuild`] via [`IndexSnapshot`]
//! equality, which pins membership, keys, *and* tie-break order.
//! Checkpoints never serialize the index (`#[serde(skip)]`); a resumed
//! run rebuilds it when the backend is re-selected.

use crate::config::Config;
use crate::ids::{Area, ConfigId, EntryRef, NodeId};
use crate::lists::{ConfigLists, ListKind};
use crate::soa::NodeStore;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

/// Which implementation answers the store's placement searches.
///
/// Both concrete backends charge identical
/// [`StepCounter`](crate::StepCounter) costs and return identical
/// results; they differ only in wall-clock time. Selected per run (CLI
/// `--search`); never serialized into reports or checkpoints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SearchBackend {
    /// The paper's linear scans (default).
    #[default]
    Linear,
    /// Ordered-index lookups with linear-equivalent step charging.
    Indexed,
    /// Pick [`Linear`](Self::Linear) or [`Indexed`](Self::Indexed) per
    /// run from the node count (see [`Self::resolve`]). The store
    /// resolves this to a concrete backend at selection time, so `Auto`
    /// never answers a query itself.
    Auto,
}

/// Node count at which [`SearchBackend::Auto`] switches from linear to
/// indexed searches.
///
/// The indexed backend's per-query win grows with the node count, but
/// it pays a roughly constant index-maintenance cost on every store
/// mutation. `BENCH_search.json` puts the end-to-end break-even at
/// ≈200 nodes (0.86–0.89× at 100 nodes, 0.98–1.04× at 200), so auto
/// stays linear below 200 nodes and goes indexed at 200 and above,
/// where the maintenance cost is amortized.
pub const AUTO_INDEXED_MIN_NODES: usize = 200;

impl SearchBackend {
    /// Parse a CLI spelling (`"linear"` / `"indexed"` / `"auto"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "linear" => Some(SearchBackend::Linear),
            "indexed" => Some(SearchBackend::Indexed),
            "auto" => Some(SearchBackend::Auto),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SearchBackend::Linear => "linear",
            SearchBackend::Indexed => "indexed",
            SearchBackend::Auto => "auto",
        }
    }

    /// Resolve to a concrete backend for a store of `total_nodes`
    /// nodes: `Auto` picks by [`AUTO_INDEXED_MIN_NODES`]; the explicit
    /// backends return themselves. Backend choice never changes
    /// results, so this affects wall-clock time only.
    #[must_use]
    pub fn resolve(self, total_nodes: usize) -> SearchBackend {
        match self {
            SearchBackend::Auto => {
                if total_nodes >= AUTO_INDEXED_MIN_NODES {
                    SearchBackend::Indexed
                } else {
                    SearchBackend::Linear
                }
            }
            concrete => concrete,
        }
    }
}

impl std::fmt::Display for SearchBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Key of one idle-index entry: the holding node's available area plus
/// a reversed push-sequence number (larger `seq` = pushed more
/// recently = nearer the intrusive list's head).
type IdleKey = (Area, Reverse<u64>);

/// Which of the two node sets a node is currently registered in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SetKind {
    /// `blank`: keyed by `TotalArea`.
    Blank,
    /// `partial`: keyed by `AvailableArea`.
    Partial,
}

/// Per-node bookkeeping so incremental updates can find and re-key the
/// node's index entries without scanning.
#[derive(Clone, Debug, Default)]
struct NodeIndexState {
    /// Which set the node is registered in, with the key area used
    /// (`None` while the node is down).
    set_key: Option<(SetKind, Area)>,
    /// The available area under which this node's idle entries are
    /// currently keyed in the per-config idle maps.
    keyed_avail: Area,
    /// Idle entries of this node as `(slot, config, push sequence)`,
    /// sorted by slot so every traversal (re-keying on area change)
    /// visits slots in a defined order. A sorted `Vec` rather than a
    /// `BTreeMap`: nodes hold a handful of slots, and these entries are
    /// touched on every store mutation — a tree node allocation per
    /// touched node was measurably the wrong trade.
    slots: Vec<(u32, ConfigId, u64)>,
}

impl NodeIndexState {
    /// Insert `(slot, config, seq)` keeping the slot order.
    fn insert_slot(&mut self, slot: u32, config: ConfigId, seq: u64) {
        let pos = self.slots.partition_point(|&(s, _, _)| s < slot);
        debug_assert!(
            self.slots.get(pos).is_none_or(|&(s, _, _)| s != slot),
            "slot {slot} double-indexed"
        );
        self.slots.insert(pos, (slot, config, seq));
    }

    /// Remove the entry for `slot`, returning its `(config, seq)`.
    fn remove_slot(&mut self, slot: u32) -> Option<(ConfigId, u64)> {
        match self.slots.binary_search_by_key(&slot, |&(s, _, _)| s) {
            Ok(pos) => {
                let (_, config, seq) = self.slots.remove(pos);
                Some((config, seq))
            }
            Err(_) => None,
        }
    }
}

/// Comparable, order-preserving summary of a [`SearchIndex`].
///
/// Two indexes describing the same store state — one maintained
/// incrementally, one rebuilt from scratch — produce **equal**
/// snapshots: the idle component lists entries in key order, so
/// equality pins not just membership but the LIFO tie-break order the
/// linear backend would use. Property tests compare these after every
/// mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexSnapshot {
    /// `(TotalArea, NodeId)` of every blank up-node, ascending.
    pub blank: Vec<(Area, NodeId)>,
    /// `(AvailableArea, NodeId)` of every partially-blank up-node,
    /// ascending.
    pub partial: Vec<(Area, NodeId)>,
    /// Per configuration: the idle instances as
    /// `(AvailableArea, EntryRef)` in best-fit-then-recency order.
    pub idle: Vec<Vec<(Area, EntryRef)>>,
    /// The sorted `(ReqArea, ConfigId)` table.
    pub configs_by_area: Vec<(Area, ConfigId)>,
}

/// The ordered indexes backing [`SearchBackend::Indexed`].
///
/// Owned by [`ResourceManager`](crate::store::ResourceManager), which
/// drives all updates; empty (and unused) while the backend is
/// [`SearchBackend::Linear`].
#[derive(Clone, Debug, Default)]
pub struct SearchIndex {
    /// `(ReqArea, ConfigId)` sorted ascending; immutable per rebuild.
    configs_by_area: Vec<(Area, ConfigId)>,
    /// Blank up-nodes keyed by `(TotalArea, NodeId)`.
    blank: BTreeSet<(Area, NodeId)>,
    /// Partially-blank up-nodes keyed by `(AvailableArea, NodeId)`.
    partial: BTreeSet<(Area, NodeId)>,
    /// Per configuration: idle instances keyed by
    /// `(AvailableArea, Reverse(push_seq))`.
    idle: Vec<BTreeMap<IdleKey, EntryRef>>,
    /// Per-node registration bookkeeping.
    node_state: Vec<NodeIndexState>,
    /// Next push sequence number (monotone; never reused).
    seq_next: u64,
}

impl SearchIndex {
    /// Build the index from scratch off the current store state.
    ///
    /// Idle entries get push sequences assigned in list order (head =
    /// largest), so a rebuilt index reproduces the live index's
    /// tie-break order exactly — the property the incremental hooks are
    /// audited against.
    #[must_use]
    pub fn rebuild(nodes: &NodeStore, configs: &[Config], lists: &ConfigLists) -> Self {
        let mut configs_by_area: Vec<(Area, ConfigId)> =
            configs.iter().map(|c| (c.req_area, c.id)).collect();
        // TIEBREAK: ConfigId is unique per element, so the (area, id)
        // keys are all distinct — stability cannot matter.
        configs_by_area.sort_unstable();
        let mut idx = Self {
            configs_by_area,
            blank: BTreeSet::new(),
            partial: BTreeSet::new(),
            idle: vec![BTreeMap::new(); configs.len()],
            node_state: (0..nodes.len())
                .map(|i| NodeIndexState {
                    set_key: None,
                    keyed_avail: nodes.available_area(i),
                    slots: Vec::new(),
                })
                .collect(),
            seq_next: 0,
        };
        // Bulk-build the blank/partial sets: collect the keys into flat
        // vectors and let `FromIterator` sort and bottom-up-build the
        // trees — a million per-element random inserts was the dominant
        // startup cost at the top bench rung.
        let mut blank_keys: Vec<(Area, NodeId)> = Vec::new();
        let mut partial_keys: Vec<(Area, NodeId)> = Vec::new();
        for i in 0..nodes.len() {
            let desired = idx.desired_set_key(nodes, i);
            idx.node_state[i].set_key = desired;
            match desired {
                Some((SetKind::Blank, area)) => blank_keys.push((area, NodeId::from_index(i))),
                Some((SetKind::Partial, area)) => partial_keys.push((area, NodeId::from_index(i))),
                None => {}
            }
        }
        idx.blank = blank_keys.into_iter().collect();
        idx.partial = partial_keys.into_iter().collect();
        for c in configs {
            let entries: Vec<EntryRef> = lists.iter(nodes, ListKind::Idle, c.id).collect();
            let len = entries.len() as u64;
            for (pos, e) in entries.into_iter().enumerate() {
                // Head of the list was pushed last → largest sequence.
                // BOUND: seq_next is monotone over at most one push per
                // list entry, far below u64 range.
                let seq = idx.seq_next + (len - 1 - pos as u64);
                let avail = nodes.available_area(e.node.index());
                idx.idle[c.id.index()].insert((avail, Reverse(seq)), e);
                idx.node_state[e.node.index()].insert_slot(e.slot, c.id, seq);
            }
            // BOUND: total pushes bounded by total idle entries.
            idx.seq_next += len;
        }
        idx
    }

    /// Drop all index contents (switching back to the linear backend).
    pub(crate) fn clear(&mut self) {
        *self = Self::default();
    }

    fn set_mut(&mut self, kind: SetKind) -> &mut BTreeSet<(Area, NodeId)> {
        match kind {
            SetKind::Blank => &mut self.blank,
            SetKind::Partial => &mut self.partial,
        }
    }

    /// The set registration node `i` should currently have.
    fn desired_set_key(&self, nodes: &NodeStore, i: usize) -> Option<(SetKind, Area)> {
        if nodes.is_down(i) {
            None
        } else if nodes.is_blank(i) {
            Some((SetKind::Blank, nodes.total_area(i)))
        } else {
            Some((SetKind::Partial, nodes.available_area(i)))
        }
    }

    /// Re-register `node` after any mutation that may have changed its
    /// blank/partial/down status or its available area: fixes its set
    /// membership and re-keys its idle entries under the new available
    /// area.
    pub(crate) fn refresh_node(&mut self, nodes: &NodeStore, node: NodeId) {
        let i = node.index();
        let desired = self.desired_set_key(nodes, i);
        let current = self.node_state[i].set_key;
        if current != desired {
            if let Some((kind, area)) = current {
                self.set_mut(kind).remove(&(area, node));
            }
            if let Some((kind, area)) = desired {
                self.set_mut(kind).insert((area, node));
            }
            self.node_state[i].set_key = desired;
        }
        let avail = nodes.available_area(i);
        let old = self.node_state[i].keyed_avail;
        if old != avail {
            // Move every idle entry of this node to its new area key,
            // in slot order (the moves commute, but an ordered walk
            // keeps even the intermediate states deterministic). The
            // disjoint field borrows let this walk the slot vector in
            // place, with no scratch allocation.
            let (node_state, idle) = (&mut self.node_state, &mut self.idle);
            for &(_, config, seq) in &node_state[i].slots {
                let map = &mut idle[config.index()];
                if let Some(e) = map.remove(&(old, Reverse(seq))) {
                    map.insert((avail, Reverse(seq)), e);
                } else {
                    debug_assert!(false, "idle entry of {node} missing during re-key");
                }
            }
            node_state[i].keyed_avail = avail;
        }
    }

    /// Register a freshly idle slot (configure or task release). Call
    /// [`refresh_node`](Self::refresh_node) first so the node's keyed
    /// area is current.
    pub(crate) fn add_entry(&mut self, nodes: &NodeStore, entry: EntryRef, config: ConfigId) {
        let i = entry.node.index();
        let avail = nodes.available_area(i);
        debug_assert_eq!(
            self.node_state[i].keyed_avail, avail,
            "add_entry requires a refreshed node"
        );
        let seq = self.seq_next;
        self.seq_next += 1;
        self.idle[config.index()].insert((avail, Reverse(seq)), entry);
        self.node_state[i].insert_slot(entry.slot, config, seq);
    }

    /// Drop one idle entry (task assignment or eviction). Must run
    /// *before* the mutation changes the node's available area.
    pub(crate) fn remove_entry(&mut self, node: NodeId, slot: u32) {
        let i = node.index();
        if let Some((config, seq)) = self.node_state[i].remove_slot(slot) {
            let keyed = self.node_state[i].keyed_avail;
            let removed = self.idle[config.index()].remove(&(keyed, Reverse(seq)));
            debug_assert!(removed.is_some(), "idle entry {node}#{slot} not indexed");
        } else {
            debug_assert!(false, "removing unindexed entry {node}#{slot}");
        }
    }

    /// Drop every trace of `node` (node failure): its idle entries and
    /// its blank/partial registration.
    pub(crate) fn purge_node(&mut self, nodes: &NodeStore, node: NodeId) {
        let i = node.index();
        let keyed = self.node_state[i].keyed_avail;
        let (node_state, idle) = (&mut self.node_state, &mut self.idle);
        for (_, config, seq) in node_state[i].slots.drain(..) {
            idle[config.index()].remove(&(keyed, Reverse(seq)));
        }
        if let Some((kind, area)) = self.node_state[i].set_key.take() {
            self.set_mut(kind).remove(&(area, node));
        }
        self.node_state[i].keyed_avail = nodes.available_area(i);
    }

    // ------------------------------------------------------------------
    // Queries (used by ResourceManager's dispatch; step charging is the
    // caller's responsibility so model cost stays backend-independent).
    // ------------------------------------------------------------------

    /// Number of idle instances of `config` (equals the idle list
    /// length, which is the linear search's step charge).
    #[must_use]
    pub(crate) fn idle_len(&self, config: ConfigId) -> usize {
        self.idle[config.index()].len()
    }

    /// Idle instance with minimal `(AvailableArea, Reverse(seq))` —
    /// the linear best-fit walk's exact pick.
    #[must_use]
    pub(crate) fn best_idle(&self, config: ConfigId) -> Option<EntryRef> {
        self.idle[config.index()].first_key_value().map(|(_, &e)| e)
    }

    /// Idle instance the linear worst-fit walk would pick: the most
    /// recently pushed entry of the maximal-area group.
    #[must_use]
    pub(crate) fn worst_idle(&self, config: ConfigId) -> Option<EntryRef> {
        let map = &self.idle[config.index()];
        let (&(max_area, _), _) = map.last_key_value()?;
        map.range((max_area, Reverse(u64::MAX))..)
            .next()
            .map(|(_, &e)| e)
    }

    /// Blank up-nodes with `TotalArea ≥ min_area`, ascending by
    /// `(TotalArea, NodeId)` — the linear scan's preference order.
    pub(crate) fn blank_candidates(&self, min_area: Area) -> impl Iterator<Item = NodeId> + '_ {
        self.blank.range((min_area, NodeId(0))..).map(|&(_, id)| id)
    }

    /// Partially-blank up-nodes with `AvailableArea ≥ min_area`,
    /// ascending by `(AvailableArea, NodeId)`.
    pub(crate) fn partial_candidates(&self, min_area: Area) -> impl Iterator<Item = NodeId> + '_ {
        self.partial
            .range((min_area, NodeId(0))..)
            .map(|&(_, id)| id)
    }

    /// The configuration the linear `FindClosestConfig` scan would
    /// return: minimal `(ReqArea, ConfigId)` with `ReqArea` strictly
    /// above `needed_area`.
    #[must_use]
    pub(crate) fn closest_config(&self, needed_area: Area) -> Option<ConfigId> {
        let i = self
            .configs_by_area
            .partition_point(|&(a, _)| a <= needed_area);
        self.configs_by_area.get(i).map(|&(_, id)| id)
    }

    /// Order-preserving summary for consistency checks (see
    /// [`IndexSnapshot`]).
    #[must_use]
    pub fn snapshot(&self) -> IndexSnapshot {
        IndexSnapshot {
            blank: self.blank.iter().copied().collect(),
            partial: self.partial.iter().copied().collect(),
            idle: self
                .idle
                .iter()
                .map(|m| m.iter().map(|(&(a, _), &e)| (a, e)).collect())
                .collect(),
            configs_by_area: self.configs_by_area.clone(),
        }
    }
}

impl IndexSnapshot {
    /// First component on which `self` and `other` disagree, for
    /// auditor diagnostics; `None` when equal.
    #[must_use]
    pub fn first_divergence(&self, other: &IndexSnapshot) -> Option<String> {
        if self.blank != other.blank {
            return Some(format!(
                "blank set: live {:?} vs rebuilt {:?}",
                self.blank, other.blank
            ));
        }
        if self.partial != other.partial {
            return Some(format!(
                "partially-blank set: live {:?} vs rebuilt {:?}",
                self.partial, other.partial
            ));
        }
        if self.configs_by_area != other.configs_by_area {
            return Some("config-area table out of order".to_string());
        }
        for (i, (a, b)) in self.idle.iter().zip(&other.idle).enumerate() {
            if a != b {
                return Some(format!(
                    "idle index of ConfigId({i}): live {a:?} vs rebuilt {b:?}"
                ));
            }
        }
        if self.idle.len() != other.idle.len() {
            return Some(format!(
                "idle index covers {} configs, rebuild covers {}",
                self.idle.len(),
                other.idle.len()
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_round_trips() {
        for b in [
            SearchBackend::Linear,
            SearchBackend::Indexed,
            SearchBackend::Auto,
        ] {
            assert_eq!(SearchBackend::parse(b.label()), Some(b));
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!(SearchBackend::parse("btree"), None);
        assert_eq!(SearchBackend::default(), SearchBackend::Linear);
    }

    #[test]
    fn auto_resolves_by_node_count() {
        assert_eq!(
            SearchBackend::Auto.resolve(AUTO_INDEXED_MIN_NODES - 1),
            SearchBackend::Linear
        );
        assert_eq!(
            SearchBackend::Auto.resolve(AUTO_INDEXED_MIN_NODES),
            SearchBackend::Indexed
        );
        assert_eq!(SearchBackend::Auto.resolve(10_000), SearchBackend::Indexed);
        // Explicit backends are fixed points of resolution.
        assert_eq!(SearchBackend::Linear.resolve(10_000), SearchBackend::Linear);
        assert_eq!(SearchBackend::Indexed.resolve(1), SearchBackend::Indexed);
    }

    #[test]
    fn empty_index_answers_nothing() {
        let idx = SearchIndex::rebuild(&NodeStore::default(), &[], &ConfigLists::new(0));
        assert_eq!(idx.closest_config(0), None);
        assert_eq!(idx.blank_candidates(0).next(), None);
        assert_eq!(idx.partial_candidates(0).next(), None);
        let snap = idx.snapshot();
        assert!(snap.blank.is_empty() && snap.partial.is_empty());
        assert_eq!(snap.first_divergence(&idx.snapshot()), None);
    }
}
