//! Strongly typed identifiers and scalar units.
//!
//! The paper measures reconfigurable area in abstract *area units* ("e.g.
//! area slices") and time in *timeticks*; both are plain `u64` aliases
//! here. Entity identifiers are newtypes over dense indices into the
//! respective arenas, so a `TaskId` can never be used where a `NodeId` is
//! expected.

use serde::{Deserialize, Serialize};

/// Reconfigurable area, in abstract area units (Table II uses e.g. node
/// `TotalArea` ∈ \[1000..4000\]).
pub type Area = u64;

/// Simulated time, in timeticks (Eq. 5: total simulation time is the
/// total number of timeticks).
pub type Ticks = u64;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index this id wraps.
            #[inline]
            #[must_use]
            pub fn index(self) -> usize {
                // BOUND: u32 id; usize is at least 32 bits on every supported target.
                self.0 as usize
            }

            /// Construct from a dense index.
            ///
            /// # Panics
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                // INVARIANT: arenas are dense and sized at init from the
                // validated SimParams, which cap every entity count far
                // below u32::MAX (documented panic for hand-built ids).
                Self(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type! {
    /// Identifier of a reconfigurable node (the paper's `NodeNo`).
    NodeId
}
id_type! {
    /// Identifier of a processor configuration (the paper's `ConfigNo`).
    ConfigId
}
id_type! {
    /// Identifier of an application task (the paper's `TaskNo`).
    TaskId
}

/// Reference to one config-task-pair slot on a node: the unit the
/// per-configuration idle/busy lists link together. Ordered by
/// `(node, slot)` so entry sets can live in deterministic ordered
/// collections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntryRef {
    /// The node holding the slot.
    pub node: NodeId,
    /// Index into the node's slot slab.
    pub slot: u32,
}

impl EntryRef {
    /// Convenience constructor.
    #[inline]
    #[must_use]
    pub fn new(node: NodeId, slot: u32) -> Self {
        Self { node, slot }
    }
}

impl std::fmt::Display for EntryRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.node, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_indices() {
        for i in [0usize, 1, 77, 1_000_000] {
            assert_eq!(NodeId::from_index(i).index(), i);
            assert_eq!(ConfigId::from_index(i).index(), i);
            assert_eq!(TaskId::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn oversized_index_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TaskId(3));
        set.insert(TaskId(3));
        set.insert(TaskId(4));
        assert_eq!(set.len(), 2);
        assert!(TaskId(3) < TaskId(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "NodeId(7)");
        assert_eq!(EntryRef::new(NodeId(7), 2).to_string(), "NodeId(7)#2");
    }

    #[test]
    fn entry_ref_equality() {
        let a = EntryRef::new(NodeId(1), 0);
        let b = EntryRef::new(NodeId(1), 0);
        let c = EntryRef::new(NodeId(1), 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn serde_round_trip() {
        let r = EntryRef::new(NodeId(9), 4);
        let json = serde_json::to_string(&r).unwrap();
        let back: EntryRef = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
