//! # dreamsim-model
//!
//! The DReAMSim system model (Nadeem et al., IPDPSW 2012, Section IV):
//! reconfigurable nodes, processor configurations, application tasks, and
//! the dynamic data structures the resource information manager uses to
//! track them.
//!
//! The paper models (Eq. 1–3):
//!
//! * a **node** `Nodeᵢ(TotalArea, AvailableArea, C, family, caps, state)`
//!   — a partially reconfigurable processing element holding a set `C` of
//!   currently instantiated processor configurations ([`node::Node`]);
//! * a **configuration** `Cᵢ(ReqArea, Ptype, param, BSize, ConfigTime)` —
//!   a soft processor occupying `ReqArea` area units
//!   ([`config::Config`]);
//! * a **task** `Taskᵢ(t_required, Cpref, data)` — a unit of work that
//!   wants a particular processor configuration ([`task::Task`]).
//!
//! Section IV.B's dynamic structures are reproduced in [`lists`] (the
//! per-configuration idle/busy linked lists headed by `Idle_start` /
//! `Busy_start` and threaded through `Inext`/`Bnext` pointers) and
//! [`suspension`] (the suspension queue). [`store::ResourceManager`] ties
//! everything together and is the single mutation point, so the area and
//! list invariants can be checked in one place
//! ([`store::ResourceManager::check_invariants`]).
//!
//! Every traversal of a list or scan of the node table is charged to a
//! [`steps::StepCounter`], reproducing the paper's two step metrics
//! (*average scheduling steps per task* and *total scheduler workload*,
//! Table I).
//!
//! One deliberate generalization over Fig. 3 is documented in DESIGN.md:
//! idle/busy list links live **per (node, slot)** rather than per node,
//! because a partially reconfigured node can be idle in one
//! configuration's list and busy in another's at the same time. With one
//! slot per node (full reconfiguration) the structure degenerates to the
//! paper's exact layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caps;
pub mod config;
pub mod contiguous;
pub mod ids;
pub mod lists;
pub mod naive;
pub mod node;
pub mod search;
pub mod soa;
pub mod steps;
pub mod store;
pub mod suspension;
pub mod task;

pub use caps::{Capabilities, Capability, DeviceFamily};
pub use config::{Config, ProcessorType};
pub use contiguous::{GapFit, Strip};
pub use ids::{Area, ConfigId, EntryRef, NodeId, TaskId, Ticks};
pub use lists::ConfigLists;
pub use node::{Node, NodeState, Slot};
pub use search::{IndexSnapshot, SearchBackend, SearchIndex, AUTO_INDEXED_MIN_NODES};
pub use soa::{NodeRef, NodeStore, Nodes, SlotView};
pub use steps::StepCounter;
pub use store::{Demand, ResourceManager};
pub use suspension::SuspensionQueue;
pub use task::{PreferredConfig, Task, TaskState};
