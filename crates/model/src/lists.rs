//! Per-configuration idle and busy linked lists (Fig. 3).
//!
//! Each configuration keeps two singly-linked lists threaded through the
//! `link` field of the node slots it is instantiated in: the list of
//! *idle* instances (head: the paper's `Idle_start`) and the list of
//! *busy* instances (`Busy_start`). The paper motivates them as the way
//! to "ease up the search effort needed to get the state information of a
//! certain node" when the node count is large.
//!
//! Faithful to the original design, the lists are singly linked, so
//! removing an arbitrary entry requires a traversal from the head — and
//! those traversals are exactly the housekeeping component of the *total
//! scheduler workload* metric. Every visited link charges one
//! housekeeping step.
//!
//! Since the SoA refactor (DESIGN.md §18) the links are threaded through
//! the flat `slot_link` column of [`NodeStore`], so a list splice touches
//! one dense cell per visited entry instead of a whole `Node` struct.
//!
//! Each list additionally keeps a contiguous *shadow* mirror (oldest
//! entry first, head last). Removal locates the entry and its
//! predecessor by scanning the shadow back-to-front — the same visit
//! order and the same one-housekeeping-step-per-visit charge as the
//! link walk, but over a few contiguous cache lines instead of a
//! pointer chase across the whole slot arena. The intrusive links stay
//! fully maintained (iteration and serialization are unchanged); the
//! shadow is derived state, skipped by serde and rebuilt from the links
//! on first use after deserialization.

use crate::ids::{ConfigId, EntryRef};
use crate::soa::NodeStore;
use crate::steps::{StepCounter, StepKind};

/// Which of the two lists an operation targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListKind {
    /// The idle-instances list (`Idle_start` / `Inext`).
    Idle,
    /// The busy-instances list (`Busy_start` / `Bnext`).
    Busy,
}

/// Heads of the idle/busy lists for every configuration.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ConfigLists {
    idle_head: Vec<Option<EntryRef>>,
    busy_head: Vec<Option<EntryRef>>,
    /// Contiguous mirror of each idle list, oldest first (head is the
    /// last element). Derived from the intrusive links; never
    /// serialized, rebuilt lazily after deserialization.
    // REBUILD: derived acceleration state — `ensure_shadows` rebuilds
    // the mirrors from the serialized heads and slot links on the first
    // `push`/`remove` after a resume, before any list is mutated.
    #[serde(skip)]
    idle_shadow: Vec<Vec<EntryRef>>,
    /// Busy-list mirror; see `idle_shadow`.
    // REBUILD: same story as `idle_shadow` — rebuilt by
    // `ensure_shadows` before the first mutation after a resume.
    #[serde(skip)]
    busy_shadow: Vec<Vec<EntryRef>>,
}

// The shadows are derived acceleration state: two lists are equal iff
// their serialized shape (the heads, plus the links in the node store)
// is — exactly the equality the pre-shadow derive expressed.
impl PartialEq for ConfigLists {
    fn eq(&self, other: &Self) -> bool {
        self.idle_head == other.idle_head && self.busy_head == other.busy_head
    }
}

impl Eq for ConfigLists {}

impl Default for ConfigLists {
    fn default() -> Self {
        Self::new(0)
    }
}

impl ConfigLists {
    /// Create empty lists for `num_configs` configurations.
    #[must_use]
    pub fn new(num_configs: usize) -> Self {
        Self {
            idle_head: vec![None; num_configs],
            busy_head: vec![None; num_configs],
            idle_shadow: vec![Vec::new(); num_configs],
            busy_shadow: vec![Vec::new(); num_configs],
        }
    }

    /// Rebuild the shadow mirrors from the intrusive links if they are
    /// missing (the `serde(skip)` default after deserialization). A
    /// populated shadow is maintained incrementally by `push`/`remove`
    /// and never drifts, so the rebuild triggers at most once per
    /// restored store.
    fn ensure_shadows(&mut self, nodes: &NodeStore) {
        if self.idle_shadow.len() == self.idle_head.len()
            && self.busy_shadow.len() == self.busy_head.len()
        {
            return;
        }
        let walk = |heads: &[Option<EntryRef>]| -> Vec<Vec<EntryRef>> {
            heads
                .iter()
                .map(|&head| {
                    let mut chain: Vec<EntryRef> =
                        ListIter { nodes, cur: head }.collect();
                    // The walk is head-first (newest first); the shadow
                    // stores oldest first.
                    chain.reverse();
                    chain
                })
                .collect()
        };
        self.idle_shadow = walk(&self.idle_head);
        self.busy_shadow = walk(&self.busy_head);
    }

    /// Number of configurations covered.
    #[must_use]
    pub fn num_configs(&self) -> usize {
        self.idle_head.len()
    }

    fn head(&self, kind: ListKind, config: ConfigId) -> Option<EntryRef> {
        match kind {
            ListKind::Idle => self.idle_head[config.index()],
            ListKind::Busy => self.busy_head[config.index()],
        }
    }

    fn head_mut(&mut self, kind: ListKind, config: ConfigId) -> &mut Option<EntryRef> {
        match kind {
            ListKind::Idle => &mut self.idle_head[config.index()],
            ListKind::Busy => &mut self.busy_head[config.index()],
        }
    }

    fn shadow_mut(&mut self, kind: ListKind, config: ConfigId) -> &mut Vec<EntryRef> {
        match kind {
            ListKind::Idle => &mut self.idle_shadow[config.index()],
            ListKind::Busy => &mut self.busy_shadow[config.index()],
        }
    }

    /// Push `entry` at the front of the `kind` list of `config`.
    /// O(1); charges one housekeeping step (the head update).
    ///
    /// # Panics
    /// Panics (in debug builds) if the slot is not live or belongs to a
    /// different configuration.
    pub fn push(
        &mut self,
        nodes: &mut NodeStore,
        kind: ListKind,
        config: ConfigId,
        entry: EntryRef,
        steps: &mut StepCounter,
    ) {
        debug_assert_eq!(
            nodes.slot(entry.node.index(), entry.slot).map(|s| s.config),
            Some(config),
            "entry {entry} is not a live slot of {config}"
        );
        self.ensure_shadows(nodes);
        let old_head = *self.head_mut(kind, config);
        // INVARIANT: the debug_assert above pins `entry` to a live slot
        // of `config`; the auditor cross-checks lists ⇔ slot flags on
        // every audited event.
        let linked = nodes.set_slot_link(entry.node.index(), entry.slot, old_head);
        debug_assert!(linked, "entry {entry} is not a live slot");
        *self.head_mut(kind, config) = Some(entry);
        self.shadow_mut(kind, config).push(entry);
        steps.tick(StepKind::Housekeeping);
    }

    /// Remove `entry` from the `kind` list of `config`. Visits entries
    /// in head-first list order (via the shadow mirror), charging one
    /// housekeeping step per entry visited — the same charge the
    /// link-walk of the singly-linked design incurs. Returns `false`
    /// if the entry was not on the list.
    pub fn remove(
        &mut self,
        nodes: &mut NodeStore,
        kind: ListKind,
        config: ConfigId,
        entry: EntryRef,
        steps: &mut StepCounter,
    ) -> bool {
        self.ensure_shadows(nodes);
        let shadow = self.shadow_mut(kind, config);
        let len = shadow.len();
        // Back-to-front over the shadow is head-first in list order.
        let mut found = None;
        for i in (0..len).rev() {
            steps.tick(StepKind::Housekeeping);
            if shadow[i] == entry {
                found = Some(i);
                break;
            }
        }
        let Some(i) = found else {
            return false;
        };
        // List position p maps to shadow index len - p: the successor
        // (toward the tail) sits at i - 1, the predecessor at i + 1.
        let next = if i > 0 { Some(shadow[i - 1]) } else { None };
        let prev = shadow.get(i + 1).copied();
        shadow.remove(i);
        match prev {
            None => *self.head_mut(kind, config) = next,
            Some(p) => {
                // INVARIANT: the shadow mirrors the live list, so the
                // predecessor is a live slot of the same config.
                let relinked = nodes.set_slot_link(p.node.index(), p.slot, next);
                debug_assert!(relinked, "live predecessor");
            }
        }
        nodes.set_slot_link(entry.node.index(), entry.slot, None);
        true
    }

    /// Iterate the entries of the `kind` list of `config`, head first.
    /// Does **not** charge steps itself — callers charge per visited
    /// entry with the step kind appropriate to their activity
    /// (scheduling search vs housekeeping).
    pub fn iter<'a>(
        &'a self,
        nodes: &'a NodeStore,
        kind: ListKind,
        config: ConfigId,
    ) -> ListIter<'a> {
        ListIter {
            nodes,
            cur: self.head(kind, config),
        }
    }

    /// Length of the `kind` list of `config` (test/diagnostic helper;
    /// charges no steps).
    #[must_use]
    pub fn len(&self, nodes: &NodeStore, kind: ListKind, config: ConfigId) -> usize {
        self.iter(nodes, kind, config).count()
    }

    /// Whether the `kind` list of `config` is empty.
    #[must_use]
    pub fn is_empty(&self, kind: ListKind, config: ConfigId) -> bool {
        self.head(kind, config).is_none()
    }
}

/// Iterator over a configuration's idle or busy list.
pub struct ListIter<'a> {
    nodes: &'a NodeStore,
    cur: Option<EntryRef>,
}

impl Iterator for ListIter<'_> {
    type Item = EntryRef;

    fn next(&mut self) -> Option<EntryRef> {
        let c = self.cur?;
        self.cur = self.nodes.slot_link(c.node.index(), c.slot);
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::ids::NodeId;
    use crate::node::Node;

    fn setup(n_nodes: usize) -> (NodeStore, ConfigLists, Config) {
        let nodes = NodeStore::from_nodes(
            (0..n_nodes)
                .map(|i| Node::new(NodeId::from_index(i), 4000, 1))
                .collect(),
        );
        let lists = ConfigLists::new(4);
        let cfg = Config::new(ConfigId(2), 500, 10);
        (nodes, lists, cfg)
    }

    fn instantiate(nodes: &mut NodeStore, cfg: &Config, node: usize) -> EntryRef {
        let slot = nodes.send_bitstream(node, cfg).unwrap();
        EntryRef::new(NodeId::from_index(node), slot)
    }

    #[test]
    fn push_builds_lifo_order() {
        let (mut nodes, mut lists, cfg) = setup(3);
        let mut steps = StepCounter::new();
        let entries: Vec<EntryRef> = (0..3).map(|i| instantiate(&mut nodes, &cfg, i)).collect();
        for &e in &entries {
            lists.push(&mut nodes, ListKind::Idle, cfg.id, e, &mut steps);
        }
        let order: Vec<EntryRef> = lists.iter(&nodes, ListKind::Idle, cfg.id).collect();
        assert_eq!(order, vec![entries[2], entries[1], entries[0]]);
        assert_eq!(steps.housekeeping, 3);
        assert_eq!(lists.len(&nodes, ListKind::Idle, cfg.id), 3);
        assert!(lists.is_empty(ListKind::Busy, cfg.id));
    }

    #[test]
    fn remove_head_is_one_step() {
        let (mut nodes, mut lists, cfg) = setup(2);
        let mut steps = StepCounter::new();
        let a = instantiate(&mut nodes, &cfg, 0);
        let b = instantiate(&mut nodes, &cfg, 1);
        lists.push(&mut nodes, ListKind::Idle, cfg.id, a, &mut steps);
        lists.push(&mut nodes, ListKind::Idle, cfg.id, b, &mut steps);
        let before = steps.housekeeping;
        assert!(lists.remove(&mut nodes, ListKind::Idle, cfg.id, b, &mut steps));
        assert_eq!(steps.housekeeping - before, 1, "head removal is one step");
        let order: Vec<EntryRef> = lists.iter(&nodes, ListKind::Idle, cfg.id).collect();
        assert_eq!(order, vec![a]);
    }

    #[test]
    fn remove_tail_traverses_whole_list() {
        let (mut nodes, mut lists, cfg) = setup(5);
        let mut steps = StepCounter::new();
        let entries: Vec<EntryRef> = (0..5).map(|i| instantiate(&mut nodes, &cfg, i)).collect();
        for &e in &entries {
            lists.push(&mut nodes, ListKind::Idle, cfg.id, e, &mut steps);
        }
        let before = steps.housekeeping;
        // entries[0] is at the tail after LIFO pushes.
        assert!(lists.remove(&mut nodes, ListKind::Idle, cfg.id, entries[0], &mut steps));
        assert_eq!(
            steps.housekeeping - before,
            5,
            "tail removal walks all links"
        );
        assert_eq!(lists.len(&nodes, ListKind::Idle, cfg.id), 4);
    }

    #[test]
    fn remove_middle_relinks_correctly() {
        let (mut nodes, mut lists, cfg) = setup(3);
        let mut steps = StepCounter::new();
        let e: Vec<EntryRef> = (0..3).map(|i| instantiate(&mut nodes, &cfg, i)).collect();
        for &x in &e {
            lists.push(&mut nodes, ListKind::Idle, cfg.id, x, &mut steps);
        }
        assert!(lists.remove(&mut nodes, ListKind::Idle, cfg.id, e[1], &mut steps));
        let order: Vec<EntryRef> = lists.iter(&nodes, ListKind::Idle, cfg.id).collect();
        assert_eq!(order, vec![e[2], e[0]]);
        // Removed entry's link is cleared so it can join another list.
        assert_eq!(nodes.slot(1, e[1].slot).unwrap().link, None);
    }

    #[test]
    fn remove_missing_entry_returns_false_after_full_scan() {
        let (mut nodes, mut lists, cfg) = setup(3);
        let mut steps = StepCounter::new();
        let a = instantiate(&mut nodes, &cfg, 0);
        let b = instantiate(&mut nodes, &cfg, 1);
        let ghost = instantiate(&mut nodes, &cfg, 2);
        lists.push(&mut nodes, ListKind::Idle, cfg.id, a, &mut steps);
        lists.push(&mut nodes, ListKind::Idle, cfg.id, b, &mut steps);
        let before = steps.housekeeping;
        assert!(!lists.remove(&mut nodes, ListKind::Idle, cfg.id, ghost, &mut steps));
        assert_eq!(steps.housekeeping - before, 2);
        assert_eq!(lists.len(&nodes, ListKind::Idle, cfg.id), 2);
    }

    #[test]
    fn entry_moves_between_idle_and_busy_lists() {
        let (mut nodes, mut lists, cfg) = setup(1);
        let mut steps = StepCounter::new();
        let e = instantiate(&mut nodes, &cfg, 0);
        lists.push(&mut nodes, ListKind::Idle, cfg.id, e, &mut steps);
        assert!(lists.remove(&mut nodes, ListKind::Idle, cfg.id, e, &mut steps));
        lists.push(&mut nodes, ListKind::Busy, cfg.id, e, &mut steps);
        assert!(lists.is_empty(ListKind::Idle, cfg.id));
        assert_eq!(
            lists
                .iter(&nodes, ListKind::Busy, cfg.id)
                .collect::<Vec<_>>(),
            vec![e]
        );
    }

    #[test]
    fn independent_lists_per_config() {
        let (mut nodes, mut lists, _) = setup(2);
        let mut steps = StepCounter::new();
        let c0 = Config::new(ConfigId(0), 300, 10);
        let c1 = Config::new(ConfigId(1), 300, 10);
        let e0 = instantiate(&mut nodes, &c0, 0);
        let e1 = instantiate(&mut nodes, &c1, 1);
        lists.push(&mut nodes, ListKind::Idle, c0.id, e0, &mut steps);
        lists.push(&mut nodes, ListKind::Idle, c1.id, e1, &mut steps);
        assert_eq!(lists.len(&nodes, ListKind::Idle, c0.id), 1);
        assert_eq!(lists.len(&nodes, ListKind::Idle, c1.id), 1);
        assert!(lists.remove(&mut nodes, ListKind::Idle, c0.id, e0, &mut steps));
        assert_eq!(lists.len(&nodes, ListKind::Idle, c1.id), 1);
    }

    #[test]
    fn same_node_two_slots_both_listed() {
        // Partial reconfiguration: one node appears twice in the same
        // config's list through different slots — the generalization the
        // per-slot links exist for.
        let (mut nodes, mut lists, cfg) = setup(1);
        let mut steps = StepCounter::new();
        let s0 = nodes.send_bitstream(0, &cfg).unwrap();
        let s1 = nodes.send_bitstream(0, &cfg).unwrap();
        let e0 = EntryRef::new(NodeId(0), s0);
        let e1 = EntryRef::new(NodeId(0), s1);
        lists.push(&mut nodes, ListKind::Idle, cfg.id, e0, &mut steps);
        lists.push(&mut nodes, ListKind::Idle, cfg.id, e1, &mut steps);
        assert_eq!(lists.len(&nodes, ListKind::Idle, cfg.id), 2);
        assert!(lists.remove(&mut nodes, ListKind::Idle, cfg.id, e0, &mut steps));
        assert_eq!(
            lists
                .iter(&nodes, ListKind::Idle, cfg.id)
                .collect::<Vec<_>>(),
            vec![e1]
        );
    }
}
