//! Node capabilities and device families.
//!
//! The paper's node tuple carries `family` ("the group of compatible
//! nodes which share similar types of resources and performance") and
//! `caps` ("a list of different capabilities available on a node. For
//! example ... embedded memory, DSP slices, configuration bandwidth").
//! The case-study evaluation does not constrain placement by family or
//! capability, but the model carries them so richer policies can (and the
//! scheduler trait exposes them).

use serde::{Deserialize, Serialize};

/// A single hardware capability a reconfigurable node may offer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Capability {
    /// On-chip block RAM / embedded memory.
    EmbeddedMemory,
    /// Hard DSP slices.
    DspSlices,
    /// High-bandwidth configuration port (fast partial bitstream loads).
    ConfigBandwidth,
    /// Hard multiplier blocks.
    HardMultipliers,
    /// High-speed serial transceivers.
    Transceivers,
    /// External DDR memory interface.
    ExternalMemory,
    /// Partial-reconfiguration capable fabric region layout.
    PartialReconfig,
}

impl Capability {
    /// All capabilities, in declaration order (used when generating
    /// random capability sets).
    pub const ALL: [Capability; 7] = [
        Capability::EmbeddedMemory,
        Capability::DspSlices,
        Capability::ConfigBandwidth,
        Capability::HardMultipliers,
        Capability::Transceivers,
        Capability::ExternalMemory,
        Capability::PartialReconfig,
    ];

    fn bit(self) -> u8 {
        match self {
            Capability::EmbeddedMemory => 0,
            Capability::DspSlices => 1,
            Capability::ConfigBandwidth => 2,
            Capability::HardMultipliers => 3,
            Capability::Transceivers => 4,
            Capability::ExternalMemory => 5,
            Capability::PartialReconfig => 6,
        }
    }
}

/// A compact set of [`Capability`] flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Capabilities(u8);

impl Capabilities {
    /// The empty capability set.
    #[must_use]
    pub fn none() -> Self {
        Self(0)
    }

    /// A set containing every capability.
    #[must_use]
    pub fn all() -> Self {
        let mut s = Self(0);
        for c in Capability::ALL {
            s.insert(c);
        }
        s
    }

    /// Insert a capability.
    pub fn insert(&mut self, cap: Capability) {
        self.0 |= 1 << cap.bit();
    }

    /// Remove a capability.
    pub fn remove(&mut self, cap: Capability) {
        self.0 &= !(1 << cap.bit());
    }

    /// Whether the set contains `cap`.
    #[must_use]
    pub fn contains(self, cap: Capability) -> bool {
        self.0 & (1 << cap.bit()) != 0
    }

    /// Whether every capability in `other` is present in `self`.
    #[must_use]
    pub fn is_superset_of(self, other: Capabilities) -> bool {
        self.0 & other.0 == other.0
    }

    /// Number of capabilities present.
    #[must_use]
    pub fn len(self) -> usize {
        // BOUND: count_ones() of a word is at most 128.
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over present capabilities in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Capability> {
        Capability::ALL
            .into_iter()
            .filter(move |&c| self.contains(c))
    }
}

impl FromIterator<Capability> for Capabilities {
    fn from_iter<I: IntoIterator<Item = Capability>>(iter: I) -> Self {
        let mut s = Self::none();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Device family: nodes in the same family accept the same bitstreams and
/// deliver comparable performance (the paper's `family` field).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceFamily {
    /// Generic mid-range fabric (the default used by the evaluation,
    /// which does not differentiate families).
    #[default]
    Generic,
    /// Low-cost, small-area fabric.
    LowCost,
    /// High-density compute fabric.
    HighDensity,
    /// Fabric with hardened CPU cores alongside the programmable logic.
    HybridSoC,
}

impl DeviceFamily {
    /// All families, for random generation.
    pub const ALL: [DeviceFamily; 4] = [
        DeviceFamily::Generic,
        DeviceFamily::LowCost,
        DeviceFamily::HighDensity,
        DeviceFamily::HybridSoC,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full_sets() {
        let none = Capabilities::none();
        assert!(none.is_empty());
        assert_eq!(none.len(), 0);
        let all = Capabilities::all();
        assert_eq!(all.len(), Capability::ALL.len());
        for c in Capability::ALL {
            assert!(!none.contains(c));
            assert!(all.contains(c));
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = Capabilities::none();
        s.insert(Capability::DspSlices);
        s.insert(Capability::EmbeddedMemory);
        assert!(s.contains(Capability::DspSlices));
        assert_eq!(s.len(), 2);
        s.remove(Capability::DspSlices);
        assert!(!s.contains(Capability::DspSlices));
        assert!(s.contains(Capability::EmbeddedMemory));
        // Removing an absent capability is a no-op.
        s.remove(Capability::Transceivers);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn superset_semantics() {
        let need: Capabilities = [Capability::DspSlices, Capability::EmbeddedMemory]
            .into_iter()
            .collect();
        let mut have = need;
        have.insert(Capability::ConfigBandwidth);
        assert!(have.is_superset_of(need));
        assert!(!need.is_superset_of(have));
        assert!(need.is_superset_of(Capabilities::none()));
    }

    #[test]
    fn iter_yields_inserted_caps() {
        let s: Capabilities = [Capability::Transceivers, Capability::PartialReconfig]
            .into_iter()
            .collect();
        let v: Vec<Capability> = s.iter().collect();
        assert_eq!(
            v,
            vec![Capability::Transceivers, Capability::PartialReconfig]
        );
    }

    #[test]
    fn idempotent_insert() {
        let mut s = Capabilities::none();
        s.insert(Capability::DspSlices);
        s.insert(Capability::DspSlices);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn family_default_is_generic() {
        assert_eq!(DeviceFamily::default(), DeviceFamily::Generic);
        assert_eq!(DeviceFamily::ALL.len(), 4);
    }
}
