//! Struct-of-arrays node/slot storage (DESIGN.md §18).
//!
//! [`NodeStore`] holds the same state as a `Vec<Node>` — the paper's
//! node table — but split into parallel columns: one dense `Vec` per
//! node scalar (`available_area`, `down`, `caps`, …) plus one flat,
//! globally shared arena per slot field (`config`, `area`, `task`,
//! `link`). The hot paths this layout exists for:
//!
//! * **placement searches** (`FindBestNode` over blank/partially-blank
//!   nodes, `busy_candidate_exists`) stride over 1–3 dense columns
//!   instead of ~130-byte `Node` structs, so a 100k-node scan touches
//!   an order of magnitude fewer cache lines;
//! * **store mutations** (place/evict/complete) and the intrusive
//!   idle/busy list splices touch single cells of the slot columns;
//! * the incremental `SearchIndex` sync reads only the columns it keys.
//!
//! ## Slot arena
//!
//! Each node owns a contiguous *slab* `[base, base + cap)` of the slot
//! columns; slot index `s` of node `n` (the `EntryRef.slot` the
//! intrusive lists link) lives at flat index `base[n] + s`, so
//! `EntryRef`s stay stable across slab growth. A slab that outgrows its
//! capacity is bump-relocated to the end of the arena with doubled
//! capacity (the old region is abandoned — bounded by the doubling to
//! under half the arena, and typical slot counts are 1–4). Free slot
//! indices are kept on an intrusive per-node LIFO stack threaded
//! through [`NodeStore::free_next`], reproducing the AoS store's
//! `free.last()` reuse order **exactly** — slot-index reuse is
//! observable in reports and checkpoints.
//!
//! ## Serialization
//!
//! Checkpoint bytes must not depend on the memory layout, so
//! `NodeStore` serializes by materializing the legacy `Vec<Node>` form
//! ([`NodeStore::to_nodes`]) and reusing `Node`'s derived serde —
//! byte-identical to the seed store by construction, pinned by the
//! round-trip tests below and the differential battery.

use crate::caps::{Capabilities, DeviceFamily};
use crate::config::Config;
use crate::contiguous::{GapFit, Strip};
use crate::ids::{Area, ConfigId, EntryRef, NodeId, TaskId, Ticks};
use crate::node::{Node, NodeError, NodeState, Slot};

/// Sentinel terminating a per-node free-slot stack.
const NIL: u32 = u32::MAX;

/// Struct-of-arrays storage for the node table and its slot slabs.
///
/// All per-node vectors have one entry per node (indexed by
/// `NodeId::index()`); all `slot_*` vectors share the flat slot arena.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStore {
    // ---- per-node columns ----
    total_area: Vec<Area>,
    available_area: Vec<Area>,
    family: Vec<DeviceFamily>,
    caps: Vec<Capabilities>,
    network_delay: Vec<Ticks>,
    reconfig_count: Vec<u64>,
    down: Vec<bool>,
    strip: Vec<Option<Strip>>,
    gap_fit: Vec<GapFit>,
    live: Vec<u32>,
    running: Vec<u32>,
    // ---- per-node slab bookkeeping ----
    /// First flat arena index of the node's slab.
    base: Vec<usize>,
    /// Slab capacity in slots (cells reserved in the arena).
    cap: Vec<u32>,
    /// Logical slab length: mirrors the AoS `slots.len()`, counting
    /// live slots *and* free holes, so slot-index assignment (and
    /// therefore every downstream tie-break) matches the AoS store.
    slab_len: Vec<u32>,
    /// Top of the node's intrusive free-slot stack (`NIL` = empty).
    free_head: Vec<u32>,
    // ---- flat slot arena columns ----
    slot_config: Vec<ConfigId>,
    slot_area: Vec<Area>,
    slot_task: Vec<Option<TaskId>>,
    slot_link: Vec<Option<EntryRef>>,
    slot_live: Vec<bool>,
    /// Next node-relative slot index on the free stack (valid only
    /// while the cell is dead).
    free_next: Vec<u32>,
}

/// Copy of one live slot's fields (the SoA replacement for `&Slot`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotView {
    /// The instantiated configuration.
    pub config: ConfigId,
    /// Area the configuration occupies.
    pub area: Area,
    /// The running task, or `None` when the slot is idle.
    pub task: Option<TaskId>,
    /// Intrusive idle/busy list link.
    pub link: Option<EntryRef>,
}

impl NodeStore {
    /// Build the columnar store from the AoS node table. Node ids must
    /// be the dense sequence `0..len` in order.
    ///
    /// # Panics
    /// Panics if node ids are not dense and ordered.
    #[must_use]
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        let mut st = Self::default();
        let count = nodes.len();
        st.total_area.reserve(count);
        st.available_area.reserve(count);
        st.family.reserve(count);
        st.caps.reserve(count);
        st.network_delay.reserve(count);
        st.reconfig_count.reserve(count);
        st.down.reserve(count);
        st.strip.reserve(count);
        st.gap_fit.reserve(count);
        st.live.reserve(count);
        st.running.reserve(count);
        st.base.reserve(count);
        st.cap.reserve(count);
        st.slab_len.reserve(count);
        st.free_head.reserve(count);
        let slot_total: usize = nodes.iter().map(|n| n.slots.len()).sum();
        st.slot_config.reserve(slot_total);
        st.slot_area.reserve(slot_total);
        st.slot_task.reserve(slot_total);
        st.slot_link.reserve(slot_total);
        st.slot_live.reserve(slot_total);
        st.free_next.reserve(slot_total);
        for (i, n) in nodes.into_iter().enumerate() {
            assert_eq!(n.id.index(), i, "node ids must be dense and ordered");
            st.total_area.push(n.total_area);
            st.available_area.push(n.available_area);
            st.family.push(n.family);
            st.caps.push(n.caps);
            st.network_delay.push(n.network_delay);
            st.reconfig_count.push(n.reconfig_count);
            st.down.push(n.down);
            st.strip.push(n.strip);
            st.gap_fit.push(n.gap_fit);
            st.live.push(n.live);
            st.running.push(n.running);
            let base = st.slot_config.len();
            // BOUND: slab length is the AoS slots.len(), bounded by u32 slot ids.
            let slab_len = n.slots.len() as u32;
            st.base.push(base);
            st.cap.push(slab_len);
            st.slab_len.push(slab_len);
            for cell in n.slots {
                match cell {
                    Some(s) => {
                        st.slot_config.push(s.config);
                        st.slot_area.push(s.area);
                        st.slot_task.push(s.task);
                        st.slot_link.push(s.link);
                        st.slot_live.push(true);
                        st.free_next.push(NIL);
                    }
                    None => {
                        st.slot_config.push(ConfigId(0));
                        st.slot_area.push(0);
                        st.slot_task.push(None);
                        st.slot_link.push(None);
                        st.slot_live.push(false);
                        st.free_next.push(NIL);
                    }
                }
            }
            // Rebuild the free stack so its pop order matches the AoS
            // `free.last()` order: pushing in Vec order leaves the
            // Vec's last element on top.
            let mut head = NIL;
            for idx in n.free {
                // BOUND: idx < slab_len (a hole of this node's slab), so
                // base + idx stays inside the slab.
                st.free_next[base + idx as usize] = head;
                head = idx;
            }
            st.free_head.push(head);
        }
        st
    }

    /// Materialize the legacy AoS node table (the serialization form).
    #[must_use]
    pub fn to_nodes(&self) -> Vec<Node> {
        (0..self.len())
            .map(|i| {
                let base = self.base[i];
                // BOUND: slab_len is a u32 slot count; usize is at least as wide.
                let slab = self.slab_len[i] as usize;
                let slots: Vec<Option<Slot>> = (0..slab)
                    .map(|s| {
                        let f = base + s;
                        self.slot_live[f].then(|| Slot {
                            config: self.slot_config[f],
                            area: self.slot_area[f],
                            task: self.slot_task[f],
                            link: self.slot_link[f],
                        })
                    })
                    .collect();
                // The intrusive stack walks top→bottom; the AoS `free`
                // Vec stores bottom→top (push order), so reverse.
                let mut free = Vec::new();
                let mut cur = self.free_head[i];
                while cur != NIL {
                    free.push(cur);
                    // BOUND: cur < slab_len (free-stack entries are holes
                    // of this slab), so base + cur stays inside the slab.
                    cur = self.free_next[base + cur as usize];
                }
                free.reverse();
                Node {
                    id: NodeId::from_index(i),
                    total_area: self.total_area[i],
                    available_area: self.available_area[i],
                    family: self.family[i],
                    caps: self.caps[i],
                    network_delay: self.network_delay[i],
                    reconfig_count: self.reconfig_count[i],
                    down: self.down[i],
                    strip: self.strip[i].clone(),
                    gap_fit: self.gap_fit[i],
                    slots,
                    free,
                    live: self.live[i],
                    running: self.running[i],
                }
            })
            .collect()
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.total_area.len()
    }

    /// Whether the store holds no nodes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_area.is_empty()
    }

    /// Read proxy for node `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    #[must_use]
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        let i = id.index();
        NodeRef {
            store: self,
            idx: i,
            id,
            total_area: self.total_area[i],
            family: self.family[i],
            caps: self.caps[i],
            network_delay: self.network_delay[i],
            reconfig_count: self.reconfig_count[i],
            down: self.down[i],
        }
    }

    /// Iterate all nodes in id order as [`NodeRef`]s.
    #[must_use]
    pub fn iter(&self) -> Nodes<'_> {
        Nodes {
            store: self,
            range: 0..self.len(),
        }
    }

    // ---- column accessors used by the hot search/list paths ----

    /// `AvailableArea` of node `i` (Eq. 4).
    #[inline]
    #[must_use]
    pub fn available_area(&self, i: usize) -> Area {
        self.available_area[i]
    }

    /// `TotalArea` of node `i`.
    #[inline]
    #[must_use]
    pub fn total_area(&self, i: usize) -> Area {
        self.total_area[i]
    }

    /// Whether node `i` is failed/offline.
    #[inline]
    #[must_use]
    pub fn is_down(&self, i: usize) -> bool {
        self.down[i]
    }

    /// Capabilities of node `i`.
    #[inline]
    #[must_use]
    pub fn caps(&self, i: usize) -> Capabilities {
        self.caps[i]
    }

    /// Whether node `i` holds no configurations.
    #[inline]
    #[must_use]
    pub fn is_blank(&self, i: usize) -> bool {
        self.live[i] == 0
    }

    /// Number of live slots on node `i`.
    #[inline]
    #[must_use]
    pub fn live_count(&self, i: usize) -> u32 {
        self.live[i]
    }

    /// Number of running tasks on node `i`.
    #[inline]
    #[must_use]
    pub fn running_count(&self, i: usize) -> u32 {
        self.running[i]
    }

    /// Reconfigurations performed on node `i`.
    #[inline]
    #[must_use]
    pub fn reconfig_count(&self, i: usize) -> u64 {
        self.reconfig_count[i]
    }

    /// Coarse state of node `i` (the paper's `state` field).
    #[must_use]
    pub fn state(&self, i: usize) -> NodeState {
        if self.running[i] > 0 {
            NodeState::Busy
        } else if self.live[i] > 0 {
            NodeState::Idle
        } else {
            NodeState::Blank
        }
    }

    /// Can a configuration of `area` be instantiated on node `i` right
    /// now? (Scalar check; gap check under contiguous placement.)
    #[must_use]
    pub fn can_host(&self, i: usize, area: Area) -> bool {
        if area > self.available_area[i] {
            return false;
        }
        match &self.strip[i] {
            Some(s) => s.can_fit(area),
            None => true,
        }
    }

    /// Feasibility of hosting `area` on node `i` after evicting the
    /// given idle slots (Algorithm 1 under contiguity).
    #[must_use]
    pub fn can_host_after_evicting(&self, i: usize, area: Area, evict: &[u32]) -> bool {
        match &self.strip[i] {
            Some(s) => s.can_fit_after_removing(area, evict),
            None => true,
        }
    }

    /// Flat arena index of slot `slot` of node `i`, if live.
    #[inline]
    fn flat(&self, i: usize, slot: u32) -> Option<usize> {
        if slot < self.slab_len[i] {
            // BOUND: slot < slab_len, so base + slot stays inside the node's slab.
            let f = self.base[i] + slot as usize;
            self.slot_live[f].then_some(f)
        } else {
            None
        }
    }

    /// Copy of a live slot's fields.
    #[inline]
    #[must_use]
    pub fn slot(&self, i: usize, slot: u32) -> Option<SlotView> {
        self.flat(i, slot).map(|f| SlotView {
            config: self.slot_config[f],
            area: self.slot_area[f],
            task: self.slot_task[f],
            link: self.slot_link[f],
        })
    }

    /// Intrusive list link of a live slot (`None` also for dead slots).
    #[inline]
    #[must_use]
    pub fn slot_link(&self, i: usize, slot: u32) -> Option<EntryRef> {
        self.flat(i, slot).and_then(|f| self.slot_link[f])
    }

    /// Set the intrusive list link of a live slot. Returns `false`
    /// (changing nothing) if the slot is not live.
    pub fn set_slot_link(&mut self, i: usize, slot: u32, link: Option<EntryRef>) -> bool {
        match self.flat(i, slot) {
            Some(f) => {
                self.slot_link[f] = link;
                true
            }
            None => false,
        }
    }

    /// Iterate the live slots of node `i` as `(slot_index, view)` in
    /// slab order (the traversal order of Fig. 3's config-task-pair
    /// list).
    pub fn slots(&self, i: usize) -> impl Iterator<Item = (u32, SlotView)> + '_ {
        let base = self.base[i];
        (0..self.slab_len[i]).filter_map(move |s| {
            // BOUND: s < slab_len, so base + s stays inside the node's slab.
            let f = base + s as usize;
            self.slot_live[f].then(|| {
                (
                    s,
                    SlotView {
                        config: self.slot_config[f],
                        area: self.slot_area[f],
                        task: self.slot_task[f],
                        link: self.slot_link[f],
                    },
                )
            })
        })
    }

    // ---- mutations (node-local; list maintenance is the caller's) ----

    /// Reserve arena room for one more slot on node `i`, bump-relocating
    /// the slab with doubled capacity when full. Relocation preserves
    /// node-relative slot indices (and therefore every `EntryRef`).
    fn ensure_slot_room(&mut self, i: usize) {
        if self.slab_len[i] < self.cap[i] {
            return;
        }
        let old_base = self.base[i];
        // BOUND: slab_len is a u32 slot count; usize is at least as wide.
        let old_len = self.slab_len[i] as usize;
        let new_cap = (self.cap[i].max(1) * 2).max(2);
        let new_base = self.slot_config.len();
        // BOUND: new_cap is a doubled u32 slot count; usize is at least as wide.
        for s in 0..new_cap as usize {
            if s < old_len {
                let f = old_base + s;
                self.slot_config.push(self.slot_config[f]);
                self.slot_area.push(self.slot_area[f]);
                self.slot_task.push(self.slot_task[f]);
                self.slot_link.push(self.slot_link[f]);
                self.slot_live.push(self.slot_live[f]);
                self.free_next.push(self.free_next[f]);
                // Neutralize the abandoned cell so stale state can
                // never read as live.
                self.slot_live[f] = false;
            } else {
                self.slot_config.push(ConfigId(0));
                self.slot_area.push(0);
                self.slot_task.push(None);
                self.slot_link.push(None);
                self.slot_live.push(false);
                self.free_next.push(NIL);
            }
        }
        self.base[i] = new_base;
        self.cap[i] = new_cap;
    }

    /// `SendBitstream()`: instantiate `config` in free area of node `i`.
    /// Identical semantics (including slot-index reuse order) to
    /// [`Node::send_bitstream`].
    pub fn send_bitstream(&mut self, i: usize, config: &Config) -> Result<u32, NodeError> {
        if config.req_area > self.available_area[i] {
            return Err(NodeError::InsufficientArea {
                needed: config.req_area,
                available: self.available_area[i],
            });
        }
        // Reserve the slot index first so the strip region can be keyed
        // by it; nothing is committed until every check passes.
        let reuse = self.free_head[i];
        let idx = if reuse != NIL { reuse } else { self.slab_len[i] };
        if let Some(strip) = &mut self.strip[i] {
            if strip.place(config.req_area, idx, self.gap_fit[i]).is_none() {
                return Err(NodeError::Fragmented {
                    needed: config.req_area,
                    largest_gap: strip.largest_gap(),
                });
            }
        }
        self.available_area[i] -= config.req_area;
        self.reconfig_count[i] += 1;
        self.live[i] += 1;
        if reuse != NIL {
            // BOUND: reuse < slab_len, so base + reuse stays inside the slab.
            let f = self.base[i] + reuse as usize;
            self.free_head[i] = self.free_next[f];
            self.free_next[f] = NIL;
            self.slot_live[f] = true;
        } else {
            self.ensure_slot_room(i);
            // BOUND: idx == slab_len < cap after ensure_slot_room.
            let f = self.base[i] + idx as usize;
            self.slab_len[i] += 1;
            self.slot_live[f] = true;
        }
        // BOUND: idx is a valid slot of node i by the two branches above.
        let f = self.base[i] + idx as usize;
        self.slot_config[f] = config.id;
        self.slot_area[f] = config.req_area;
        self.slot_task[f] = None;
        self.slot_link[f] = None;
        Ok(idx)
    }

    /// Evict one idle configuration of node `i`, reclaiming its area
    /// (one step of `MakeNodePartiallyBlank()`).
    pub fn evict_slot(&mut self, i: usize, idx: u32) -> Result<ConfigId, NodeError> {
        let Some(f) = self.flat(i, idx) else {
            return Err(NodeError::NoSuchSlot(idx));
        };
        if self.slot_task[f].is_some() {
            return Err(NodeError::SlotBusyOrVacant(idx));
        }
        let config = self.slot_config[f];
        // BOUND: slot areas sum to at most total_area by the Eq. 4 invariant.
        self.available_area[i] += self.slot_area[f];
        self.slot_live[f] = false;
        self.slot_link[f] = None;
        self.free_next[f] = self.free_head[i];
        self.free_head[i] = idx;
        self.live[i] -= 1;
        if let Some(strip) = &mut self.strip[i] {
            let freed = strip.free_slot(idx);
            debug_assert!(freed, "strip region missing for slot {idx}");
        }
        debug_assert!(self.available_area[i] <= self.total_area[i]);
        Ok(config)
    }

    /// `AddTaskToNode()`: start `task` on slot `idx` of node `i`.
    pub fn add_task(&mut self, i: usize, idx: u32, task: TaskId) -> Result<(), NodeError> {
        let Some(f) = self.flat(i, idx) else {
            return Err(NodeError::NoSuchSlot(idx));
        };
        if self.slot_task[f].is_some() {
            return Err(NodeError::SlotOccupied(idx));
        }
        self.slot_task[f] = Some(task);
        self.running[i] += 1;
        Ok(())
    }

    /// `RemoveTaskFromNode()`: finish the task on slot `idx` of node
    /// `i`, leaving the configuration instantiated and idle.
    pub fn remove_task(&mut self, i: usize, idx: u32) -> Result<TaskId, NodeError> {
        let Some(f) = self.flat(i, idx) else {
            return Err(NodeError::NoSuchSlot(idx));
        };
        let task = self.slot_task[f]
            .take()
            .ok_or(NodeError::SlotBusyOrVacant(idx))?;
        self.running[i] -= 1;
        Ok(task)
    }

    /// Mark node `i` failed/offline (or back up).
    pub fn set_down(&mut self, i: usize, down: bool) {
        self.down[i] = down;
    }

    /// Recompute the Eq. 4 invariant of node `i` from scratch; used by
    /// `ResourceManager::check_invariants` and property tests.
    #[must_use]
    pub fn area_invariant_holds(&self, i: usize) -> bool {
        let used: Area = self.slots(i).map(|(_, s)| s.area).sum();
        let strip_ok = match &self.strip[i] {
            Some(s) => {
                s.is_consistent()
                    && s.total_free() == self.available_area[i]
                    // BOUND: live is a small per-node slot count.
                    && s.placed_count() == self.live[i] as usize
            }
            None => true,
        };
        // BOUND: used + available re-checks Eq. 4; both are at most total_area.
        used + self.available_area[i] == self.total_area[i]
            // BOUND: live is a small per-node slot count.
            && self.slots(i).count() == self.live[i] as usize
            // BOUND: running is a small per-node slot count.
            && self.slots(i).filter(|(_, s)| s.task.is_some()).count() == self.running[i] as usize
            && strip_ok
    }

    // ---- debug corruption hooks (tests only; bypass all invariants) ----

    /// Overwrite a live slot's denormalized area **without** touching
    /// area accounting. Test-only corruption hook.
    #[doc(hidden)]
    pub fn debug_set_slot_area(&mut self, i: usize, idx: u32, area: Area) {
        // INVARIANT: test-only hook; callers pass a slot they just
        // observed live, and a panic in a test is the desired failure.
        let f = self.flat(i, idx).expect("live slot");
        self.slot_area[f] = area;
    }

    /// Overwrite a node's `TotalArea` without rebalancing. Test-only.
    #[doc(hidden)]
    pub fn debug_set_total_area(&mut self, i: usize, area: Area) {
        self.total_area[i] = area;
    }

    /// Overwrite a live slot's task **without** list maintenance or
    /// running-count updates. Test-only corruption hook.
    #[doc(hidden)]
    pub fn debug_set_slot_task(&mut self, i: usize, idx: u32, task: Option<TaskId>) {
        // INVARIANT: test-only hook; callers pass a slot they just
        // observed live, and a panic in a test is the desired failure.
        let f = self.flat(i, idx).expect("live slot");
        self.slot_task[f] = task;
    }
}

impl serde::Serialize for NodeStore {
    fn to_value(&self) -> serde::Value {
        // Serialize through the legacy AoS form so checkpoint bytes are
        // identical to the seed layout (pinned by round-trip tests and
        // the differential battery).
        serde::Serialize::to_value(&self.to_nodes())
    }
}

impl serde::Deserialize for NodeStore {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let nodes: Vec<Node> = serde::Deserialize::from_value(value)?;
        for (i, n) in nodes.iter().enumerate() {
            if n.id.index() != i {
                return Err(serde::Error::custom(format!(
                    "NodeStore: node ids must be dense and ordered (found {} at {i})",
                    n.id
                )));
            }
        }
        Ok(Self::from_nodes(nodes))
    }
}

/// Read-only proxy for one node of a [`NodeStore`].
///
/// Scalar fields the AoS `Node` exposed publicly are copied into the
/// proxy at construction so existing call sites (`n.down`,
/// `n.total_area`, `n.network_delay`, …) read them as fields; slot and
/// strip state is answered through the store reference.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    store: &'a NodeStore,
    idx: usize,
    /// Node identifier (`NodeNo`).
    pub id: NodeId,
    /// Total reconfigurable area (`TotalArea`).
    pub total_area: Area,
    /// Device family (`family`).
    pub family: DeviceFamily,
    /// Hardware capabilities (`caps`).
    pub caps: Capabilities,
    /// One-way RMS↔node delay in timeticks (`NetworkDelay`).
    pub network_delay: Ticks,
    /// Number of (re)configurations performed on this node.
    pub reconfig_count: u64,
    /// Whether the node is failed/offline.
    pub down: bool,
}

impl std::fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRef")
            .field("id", &self.id)
            .field("total_area", &self.total_area)
            .field("available_area", &self.available_area())
            .field("down", &self.down)
            .field("live", &self.store.live_count(self.idx))
            .field("running", &self.store.running_count(self.idx))
            .finish_non_exhaustive()
    }
}

impl<'a> NodeRef<'a> {
    /// Remaining free reconfigurable area (Eq. 4).
    #[inline]
    #[must_use]
    pub fn available_area(self) -> Area {
        self.store.available_area(self.idx)
    }

    /// Number of instantiated configurations.
    #[inline]
    #[must_use]
    pub fn configured_count(self) -> usize {
        // BOUND: live is a small per-node slot count.
        self.store.live_count(self.idx) as usize
    }

    /// Number of running tasks.
    #[inline]
    #[must_use]
    pub fn running_count(self) -> usize {
        // BOUND: running is a small per-node slot count.
        self.store.running_count(self.idx) as usize
    }

    /// Whether the node has no configurations at all.
    #[inline]
    #[must_use]
    pub fn is_blank(self) -> bool {
        self.store.is_blank(self.idx)
    }

    /// Coarse state per the paper's `state` field.
    #[must_use]
    pub fn state(self) -> NodeState {
        self.store.state(self.idx)
    }

    /// Whether contiguous placement is active.
    #[must_use]
    pub fn is_contiguous(self) -> bool {
        self.store.strip[self.idx].is_some()
    }

    /// Can a configuration of `area` be instantiated right now?
    #[must_use]
    pub fn can_host(self, area: Area) -> bool {
        self.store.can_host(self.idx, area)
    }

    /// Could a configuration of `area` fit after evicting the given
    /// idle slots?
    #[must_use]
    pub fn can_host_after_evicting(self, area: Area, evict: &[u32]) -> bool {
        self.store.can_host_after_evicting(self.idx, area, evict)
    }

    /// External fragmentation in `[0, 1]` (0 under the scalar model).
    #[must_use]
    pub fn fragmentation(self) -> f64 {
        self.store.strip[self.idx]
            .as_ref()
            .map_or(0.0, Strip::fragmentation)
    }

    /// Copy of a live slot's fields.
    #[inline]
    #[must_use]
    pub fn slot(self, idx: u32) -> Option<SlotView> {
        self.store.slot(self.idx, idx)
    }

    /// Iterate live slots as `(slot_index, view)` in slab order.
    pub fn slots(self) -> impl Iterator<Item = (u32, SlotView)> + 'a {
        self.store.slots(self.idx)
    }

    /// Recompute the Eq. 4 invariant from scratch.
    #[must_use]
    pub fn area_invariant_holds(self) -> bool {
        self.store.area_invariant_holds(self.idx)
    }
}

/// Iterator over all nodes of a [`NodeStore`] as [`NodeRef`]s.
///
/// Also usable as a collection proxy: call sites that held the old
/// `&[Node]` slice keep working through [`Nodes::iter`] and
/// [`Nodes::len`].
#[derive(Clone)]
pub struct Nodes<'a> {
    store: &'a NodeStore,
    range: std::ops::Range<usize>,
}

impl<'a> Nodes<'a> {
    /// A fresh iterator over the same nodes (slice-compat shim).
    #[must_use]
    pub fn iter(&self) -> Nodes<'a> {
        self.clone()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether there are no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

impl<'a> Iterator for Nodes<'a> {
    type Item = NodeRef<'a>;

    fn next(&mut self) -> Option<NodeRef<'a>> {
        let i = self.range.next()?;
        Some(self.store.node(NodeId::from_index(i)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for Nodes<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(id: u32, area: Area) -> Config {
        Config::new(ConfigId(id), area, 10)
    }

    fn aos(total: Area) -> Node {
        Node::new(NodeId(0), total, 5)
    }

    fn soa(total: Area) -> NodeStore {
        NodeStore::from_nodes(vec![aos(total)])
    }

    /// Drive an AoS node and a SoA store through the same mutation
    /// script, comparing results and the serialized mirror at every
    /// step — the SoA layout must be observationally identical.
    #[test]
    fn mirror_script_matches_aos_node_exactly() {
        let mut n = aos(2000);
        let mut st = soa(2000);
        let script: Vec<(u32, Area)> = vec![(1, 600), (2, 300), (3, 500), (4, 100)];
        let mut slots = Vec::new();
        for &(id, area) in &script {
            let a = n.send_bitstream(&cfg(id, area));
            let b = st.send_bitstream(0, &cfg(id, area));
            assert_eq!(a, b, "send_bitstream({id})");
            if let Ok(s) = a {
                slots.push(s);
            }
            assert_eq!(st.to_nodes(), vec![n.clone()]);
        }
        // Evict the middle two, then reconfigure: index reuse must
        // follow the same LIFO order.
        for &s in &[slots[1], slots[2]] {
            assert_eq!(n.evict_slot(s).map(|c| c.0), st.evict_slot(0, s).map(|c| c.0));
            assert_eq!(st.to_nodes(), vec![n.clone()]);
        }
        let ra = n.send_bitstream(&cfg(9, 50)).unwrap();
        let rb = st.send_bitstream(0, &cfg(9, 50)).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(ra, slots[2], "LIFO reuse takes the most recent hole");
        // Task lifecycle.
        assert_eq!(
            n.add_task(slots[0], TaskId(7)),
            st.add_task(0, slots[0], TaskId(7))
        );
        assert_eq!(st.to_nodes(), vec![n.clone()]);
        assert_eq!(n.remove_task(slots[0]), st.remove_task(0, slots[0]));
        assert_eq!(st.to_nodes(), vec![n.clone()]);
        // Error paths agree too.
        assert_eq!(n.evict_slot(99), st.evict_slot(0, 99));
        assert_eq!(n.remove_task(slots[0]), st.remove_task(0, slots[0]));
        assert!(st.area_invariant_holds(0));
    }

    #[test]
    fn slab_growth_preserves_entry_refs_and_free_order() {
        let mut st = soa(10_000);
        let mut slots = Vec::new();
        for i in 0..9 {
            slots.push(st.send_bitstream(0, &cfg(i, 1000)).unwrap());
        }
        // Dense assignment 0..9 across several relocations.
        assert_eq!(slots, (0..9).collect::<Vec<u32>>());
        for (i, &s) in slots.iter().enumerate() {
            assert_eq!(
                st.slot(0, s).map(|v| v.config),
                Some(ConfigId(i as u32)),
                "slot {s} survived relocation"
            );
        }
        st.evict_slot(0, 3).unwrap();
        st.evict_slot(0, 7).unwrap();
        assert_eq!(st.send_bitstream(0, &cfg(20, 10)).unwrap(), 7);
        assert_eq!(st.send_bitstream(0, &cfg(21, 10)).unwrap(), 3);
        assert!(st.area_invariant_holds(0));
    }

    #[test]
    fn serde_round_trip_is_aos_byte_identical() {
        let mut nodes: Vec<Node> = (0..4)
            .map(|i| Node::new(NodeId::from_index(i), 3000, 2))
            .collect();
        let s0 = nodes[0].send_bitstream(&cfg(0, 500)).unwrap();
        nodes[0].send_bitstream(&cfg(1, 700)).unwrap();
        nodes[0].evict_slot(s0).unwrap();
        nodes[2].send_bitstream(&cfg(2, 900)).unwrap();
        nodes[2].add_task(0, TaskId(3)).unwrap();
        let legacy_json = serde_json::to_string(&nodes).unwrap();
        let st = NodeStore::from_nodes(nodes.clone());
        let soa_json = serde_json::to_string(&st).unwrap();
        assert_eq!(legacy_json, soa_json, "SoA serde must mirror Vec<Node>");
        let back: NodeStore = serde_json::from_str(&soa_json).unwrap();
        assert_eq!(back, st);
        assert_eq!(back.to_nodes(), nodes);
    }

    #[test]
    fn contiguous_strip_behaviour_matches_aos() {
        let mut n = Node::new(NodeId(0), 1000, 1).with_contiguous(GapFit::FirstFit);
        let mut st = NodeStore::from_nodes(vec![n.clone()]);
        for (id, area) in [(0u32, 400u64), (1, 300), (2, 300)] {
            assert_eq!(
                n.send_bitstream(&cfg(id, area)).is_ok(),
                st.send_bitstream(0, &cfg(id, area)).is_ok()
            );
        }
        // Evict the middle region; a too-wide module must fail on both
        // with the same Fragmented error.
        assert_eq!(n.evict_slot(1).is_ok(), st.evict_slot(0, 1).is_ok());
        assert_eq!(n.send_bitstream(&cfg(5, 350)), st.send_bitstream(0, &cfg(5, 350)));
        assert_eq!(st.to_nodes(), vec![n.clone()]);
        assert!(st.node(NodeId(0)).is_contiguous());
        assert_eq!(st.node(NodeId(0)).fragmentation(), n.fragmentation());
    }

    #[test]
    fn node_ref_exposes_aos_surface() {
        let mut st = soa(2000);
        st.send_bitstream(0, &cfg(1, 600)).unwrap();
        let n = st.node(NodeId(0));
        assert_eq!(n.id, NodeId(0));
        assert_eq!(n.total_area, 2000);
        assert_eq!(n.available_area(), 1400);
        assert_eq!(n.network_delay, 5);
        assert!(!n.down);
        assert_eq!(n.reconfig_count, 1);
        assert_eq!(n.configured_count(), 1);
        assert_eq!(n.state(), NodeState::Idle);
        assert!(!n.is_blank());
        let views: Vec<(u32, SlotView)> = n.slots().collect();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].1.config, ConfigId(1));
        assert_eq!(st.iter().len(), 1);
        assert_eq!(st.iter().iter().count(), 1);
    }
}
