//! Reconfigurable nodes (Eq. 1):
//! `Nodeᵢ(TotalArea, AvailableArea, C, family, caps, state)`.
//!
//! A node owns a slab of *config-task-pair* slots (Fig. 3's
//! `Config-Task-Pair List`). Each live slot holds one instantiated
//! configuration and at most one running task. `AvailableArea` always
//! satisfies Eq. 4:
//!
//! ```text
//! AvailableArea = TotalArea − Σ ReqArea(Cᵢ)   over live slots
//! ```
//!
//! The node enforces that invariant locally; list membership is managed
//! by [`crate::store::ResourceManager`], which stores the intrusive link
//! of each slot in [`Slot::link`].

use crate::caps::{Capabilities, DeviceFamily};
use crate::config::Config;
use crate::contiguous::{GapFit, Strip};
use crate::ids::{Area, ConfigId, EntryRef, NodeId, TaskId, Ticks};
use serde::{Deserialize, Serialize};

/// Errors from node-local mutations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeError {
    /// The configuration does not fit in the node's available area.
    InsufficientArea {
        /// Area the configuration needs.
        needed: Area,
        /// Area the node has free.
        available: Area,
    },
    /// Enough scalar area is free, but no contiguous gap fits the
    /// configuration (contiguous placement mode only).
    Fragmented {
        /// Area the configuration needs.
        needed: Area,
        /// Largest contiguous gap available.
        largest_gap: Area,
    },
    /// The slot index does not name a live slot.
    NoSuchSlot(u32),
    /// Tried to add a task to a slot that is already running one.
    SlotOccupied(u32),
    /// Tried to remove a task from a slot that has none, or to evict a
    /// slot whose task is still running.
    SlotBusyOrVacant(u32),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::InsufficientArea { needed, available } => {
                write!(
                    f,
                    "configuration needs {needed} area units, only {available} free"
                )
            }
            NodeError::Fragmented {
                needed,
                largest_gap,
            } => {
                write!(
                    f,
                    "configuration needs {needed} contiguous columns, largest gap is {largest_gap}"
                )
            }
            NodeError::NoSuchSlot(s) => write!(f, "slot {s} is not live"),
            NodeError::SlotOccupied(s) => write!(f, "slot {s} already runs a task"),
            NodeError::SlotBusyOrVacant(s) => {
                write!(f, "slot {s} is busy (evict) or vacant (remove task)")
            }
        }
    }
}

impl std::error::Error for NodeError {}

/// Coarse node state (the paper's `state` field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeState {
    /// No configuration instantiated.
    Blank,
    /// At least one configuration, no running task.
    Idle,
    /// At least one running task.
    Busy,
}

/// One config-task pair (Fig. 3): an instantiated configuration plus the
/// task currently using it, if any.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// The instantiated configuration.
    pub config: ConfigId,
    /// Area the configuration occupies (denormalized from the config
    /// table so area accounting never needs a table lookup).
    pub area: Area,
    /// The running task, or `None` when the slot is idle.
    pub task: Option<TaskId>,
    /// Intrusive single link for the idle or busy list of `config`
    /// (the paper's `Inext`/`Bnext`); a slot is in exactly one of the two
    /// lists at any time, so one field serves both.
    pub link: Option<EntryRef>,
}

/// A reconfigurable processing node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node identifier (`NodeNo`).
    pub id: NodeId,
    /// Total reconfigurable area (`TotalArea`).
    pub total_area: Area,
    /// Remaining free area (`AvailableArea`, Eq. 4). Crate-visible so
    /// [`crate::soa::NodeStore`] can convert to and from this AoS form
    /// (the serialization mirror) without going through mutations.
    pub(crate) available_area: Area,
    /// Device family (`family`).
    pub family: DeviceFamily,
    /// Hardware capabilities (`caps`).
    pub caps: Capabilities,
    /// One-way communication delay from the RMS to this node, in
    /// timeticks (`NetworkDelay`; the `tcomm` component of Eq. 8).
    pub network_delay: Ticks,
    /// Number of (re)configurations performed on this node
    /// (`ReconfigCount`; drives Table I's *average reconfiguration count
    /// per node*).
    pub reconfig_count: u64,
    /// Whether the node is failed/offline (failure-injection extension;
    /// always `false` in paper-faithful runs). Down nodes are skipped by
    /// every placement search.
    pub down: bool,
    /// Contiguous 1-D placement state (`None` = the paper's scalar area
    /// model). When present, configurations must fit into a contiguous
    /// gap of fabric columns (DESIGN.md experiment A5).
    pub(crate) strip: Option<Strip>,
    /// Gap-selection policy for contiguous placement.
    pub(crate) gap_fit: GapFit,
    /// Slot slab: `None` entries are free slots awaiting reuse, keeping
    /// `EntryRef`s stable across evictions.
    pub(crate) slots: Vec<Option<Slot>>,
    /// Free-slot indices for O(1) reuse.
    pub(crate) free: Vec<u32>,
    /// Number of live slots.
    pub(crate) live: u32,
    /// Number of slots with a running task.
    pub(crate) running: u32,
}

impl Node {
    /// Create a blank node.
    #[must_use]
    pub fn new(id: NodeId, total_area: Area, network_delay: Ticks) -> Self {
        Self {
            id,
            total_area,
            available_area: total_area,
            family: DeviceFamily::default(),
            caps: Capabilities::none(),
            network_delay,
            reconfig_count: 0,
            down: false,
            strip: None,
            gap_fit: GapFit::FirstFit,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            running: 0,
        }
    }

    /// Builder-style family override.
    #[must_use]
    pub fn with_family(mut self, family: DeviceFamily) -> Self {
        self.family = family;
        self
    }

    /// Builder-style capabilities override.
    #[must_use]
    pub fn with_caps(mut self, caps: Capabilities) -> Self {
        self.caps = caps;
        self
    }

    /// Enable contiguous 1-D placement: configurations must fit into a
    /// contiguous gap of the node's fabric columns (experiment A5).
    /// Only valid on a blank node.
    #[must_use]
    pub fn with_contiguous(mut self, fit: GapFit) -> Self {
        assert!(self.is_blank(), "contiguity must be set before configuring");
        self.strip = Some(Strip::new(self.total_area));
        self.gap_fit = fit;
        self
    }

    /// Whether contiguous placement is active.
    #[must_use]
    pub fn is_contiguous(&self) -> bool {
        self.strip.is_some()
    }

    /// Can a configuration of `area` be instantiated right now?
    /// (Scalar check under the paper's model; gap check under
    /// contiguous placement.)
    #[must_use]
    pub fn can_host(&self, area: Area) -> bool {
        if area > self.available_area {
            return false;
        }
        match &self.strip {
            Some(s) => s.can_fit(area),
            None => true,
        }
    }

    /// Could a configuration of `area` be instantiated after evicting
    /// the given idle slots? (Algorithm 1 feasibility; scalar
    /// accumulation is the caller's job — this adds the contiguity
    /// condition.)
    #[must_use]
    pub fn can_host_after_evicting(&self, area: Area, evict: &[u32]) -> bool {
        match &self.strip {
            Some(s) => s.can_fit_after_removing(area, evict),
            None => true,
        }
    }

    /// External fragmentation in `[0, 1]` (always 0 under the scalar
    /// model).
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        self.strip.as_ref().map_or(0.0, Strip::fragmentation)
    }

    /// Remaining free reconfigurable area (Eq. 4).
    #[inline]
    #[must_use]
    pub fn available_area(&self) -> Area {
        self.available_area
    }

    /// Number of instantiated configurations (`m`, the cardinality of the
    /// configuration set in Eq. 1).
    #[inline]
    #[must_use]
    pub fn configured_count(&self) -> usize {
        // BOUND: live is a small per-node slot count.
        self.live as usize
    }

    /// Number of running tasks.
    #[inline]
    #[must_use]
    pub fn running_count(&self) -> usize {
        // BOUND: running is a small per-node slot count.
        self.running as usize
    }

    /// Whether the node has no configurations at all.
    #[inline]
    #[must_use]
    pub fn is_blank(&self) -> bool {
        self.live == 0
    }

    /// Coarse state per the paper's `state` field.
    #[must_use]
    pub fn state(&self) -> NodeState {
        if self.running > 0 {
            NodeState::Busy
        } else if self.live > 0 {
            NodeState::Idle
        } else {
            NodeState::Blank
        }
    }

    /// Borrow a live slot.
    #[must_use]
    pub fn slot(&self, idx: u32) -> Option<&Slot> {
        // BOUND: u32 index; usize is at least 32 bits on every supported target.
        self.slots.get(idx as usize).and_then(|s| s.as_ref())
    }

    /// Mutably borrow a live slot.
    pub fn slot_mut(&mut self, idx: u32) -> Option<&mut Slot> {
        // BOUND: u32 index; usize is at least 32 bits on every supported target.
        self.slots.get_mut(idx as usize).and_then(|s| s.as_mut())
    }

    /// Iterate over live slots as `(slot_index, &Slot)`, in slab order
    /// (the traversal order of Fig. 3's config-task-pair list).
    pub fn slots(&self) -> impl Iterator<Item = (u32, &Slot)> {
        self.slots
            .iter()
            .enumerate()
            // BOUND: slot positions are < slots.len(), itself bounded by u32 slot ids.
            .filter_map(|(i, s)| s.as_ref().map(|s| (i as u32, s)))
    }

    /// `SendBitstream()`: instantiate `config` in free area. Adjusts
    /// `AvailableArea`, bumps the reconfiguration count, and returns the
    /// new slot index. List insertion is the caller's job.
    pub fn send_bitstream(&mut self, config: &Config) -> Result<u32, NodeError> {
        if config.req_area > self.available_area {
            return Err(NodeError::InsufficientArea {
                needed: config.req_area,
                available: self.available_area,
            });
        }
        // Reserve the slot index first so the strip region can be keyed
        // by it; nothing is committed until every check passes.
        let idx = match self.free.last() {
            Some(&idx) => idx,
            // BOUND: slot count is bounded by node area / minimum config area, far below 2^32.
            None => self.slots.len() as u32,
        };
        if let Some(strip) = &mut self.strip {
            if strip.place(config.req_area, idx, self.gap_fit).is_none() {
                return Err(NodeError::Fragmented {
                    needed: config.req_area,
                    largest_gap: strip.largest_gap(),
                });
            }
        }
        self.available_area -= config.req_area;
        self.reconfig_count += 1;
        self.live += 1;
        let slot = Slot {
            config: config.id,
            area: config.req_area,
            task: None,
            link: None,
        };
        if self.free.pop().is_some() {
            // BOUND: u32 index; usize is at least 32 bits on every supported target.
            self.slots[idx as usize] = Some(slot);
        } else {
            self.slots.push(Some(slot));
        }
        Ok(idx)
    }

    /// Evict one idle configuration (a single step of
    /// `MakeNodePartiallyBlank()`), reclaiming its area. Fails if the
    /// slot is vacant or its task is still running.
    pub fn evict_slot(&mut self, idx: u32) -> Result<ConfigId, NodeError> {
        let entry = self
            .slots
            // BOUND: u32 index; usize is at least 32 bits on every supported target.
            .get_mut(idx as usize)
            .ok_or(NodeError::NoSuchSlot(idx))?;
        match entry {
            None => Err(NodeError::NoSuchSlot(idx)),
            Some(slot) if slot.task.is_some() => Err(NodeError::SlotBusyOrVacant(idx)),
            Some(slot) => {
                let config = slot.config;
                // BOUND: slot areas sum to at most total_area by the Eq. 4 invariant.
                self.available_area += slot.area;
                *entry = None;
                self.free.push(idx);
                self.live -= 1;
                if let Some(strip) = &mut self.strip {
                    let freed = strip.free_slot(idx);
                    debug_assert!(freed, "strip region missing for slot {idx}");
                }
                debug_assert!(self.available_area <= self.total_area);
                Ok(config)
            }
        }
    }

    /// `MakeNodeBlank()`: evict every configuration and restore
    /// `AvailableArea = TotalArea`. Fails (leaving the node untouched) if
    /// any task is running. Returns the evicted slot indices for the
    /// caller to unlink from the idle lists.
    pub fn make_blank(&mut self) -> Result<Vec<u32>, NodeError> {
        if let Some((busy, _)) = self.slots().find(|(_, s)| s.task.is_some()) {
            return Err(NodeError::SlotBusyOrVacant(busy));
        }
        let live: Vec<u32> = self.slots().map(|(i, _)| i).collect();
        for &i in &live {
            // Every index in `live` names a live, task-free slot (the
            // busy scan above returned early otherwise), so eviction
            // cannot fail; propagate the typed error anyway rather than
            // panicking mid-simulation.
            self.evict_slot(i)?;
        }
        debug_assert_eq!(self.available_area, self.total_area);
        Ok(live)
    }

    /// `AddTaskToNode()`: start `task` on slot `idx` (which must hold an
    /// idle configuration).
    pub fn add_task(&mut self, idx: u32, task: TaskId) -> Result<(), NodeError> {
        let slot = self
            .slots
            // BOUND: u32 index; usize is at least 32 bits on every supported target.
            .get_mut(idx as usize)
            .and_then(|s| s.as_mut())
            .ok_or(NodeError::NoSuchSlot(idx))?;
        if slot.task.is_some() {
            return Err(NodeError::SlotOccupied(idx));
        }
        slot.task = Some(task);
        self.running += 1;
        Ok(())
    }

    /// `RemoveTaskFromNode()`: finish the task on slot `idx`, leaving the
    /// configuration instantiated and idle.
    pub fn remove_task(&mut self, idx: u32) -> Result<TaskId, NodeError> {
        let slot = self
            .slots
            // BOUND: u32 index; usize is at least 32 bits on every supported target.
            .get_mut(idx as usize)
            .and_then(|s| s.as_mut())
            .ok_or(NodeError::NoSuchSlot(idx))?;
        let task = slot.task.take().ok_or(NodeError::SlotBusyOrVacant(idx))?;
        self.running -= 1;
        Ok(task)
    }

    /// Recompute the Eq. 4 invariant from scratch; used by
    /// `ResourceManager::check_invariants` and property tests.
    #[must_use]
    pub fn area_invariant_holds(&self) -> bool {
        let used: Area = self.slots().map(|(_, s)| s.area).sum();
        let strip_ok = match &self.strip {
            Some(s) => {
                s.is_consistent()
                    && s.total_free() == self.available_area
                    // BOUND: live is a small per-node slot count.
                    && s.placed_count() == self.live as usize
            }
            None => true,
        };
        // BOUND: used + available re-checks Eq. 4; both are at most total_area.
        used + self.available_area == self.total_area
            // BOUND: live is a small per-node slot count.
            && self.slots().count() == self.live as usize
            // BOUND: running is a small per-node slot count.
            && self.slots().filter(|(_, s)| s.task.is_some()).count() == self.running as usize
            && strip_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(id: u32, area: Area) -> Config {
        Config::new(ConfigId(id), area, 10)
    }

    fn node(total: Area) -> Node {
        Node::new(NodeId(0), total, 5)
    }

    #[test]
    fn blank_node_state_and_area() {
        let n = node(2000);
        assert!(n.is_blank());
        assert_eq!(n.state(), NodeState::Blank);
        assert_eq!(n.available_area(), 2000);
        assert!(n.area_invariant_holds());
    }

    #[test]
    fn send_bitstream_accounts_area_and_reconfig_count() {
        let mut n = node(2000);
        let s0 = n.send_bitstream(&cfg(1, 600)).unwrap();
        let s1 = n.send_bitstream(&cfg(2, 900)).unwrap();
        assert_ne!(s0, s1);
        assert_eq!(n.available_area(), 500);
        assert_eq!(n.reconfig_count, 2);
        assert_eq!(n.configured_count(), 2);
        assert_eq!(n.state(), NodeState::Idle);
        assert!(n.area_invariant_holds());
    }

    #[test]
    fn send_bitstream_rejects_oversized_config() {
        let mut n = node(1000);
        n.send_bitstream(&cfg(1, 800)).unwrap();
        let err = n.send_bitstream(&cfg(2, 300)).unwrap_err();
        assert_eq!(
            err,
            NodeError::InsufficientArea {
                needed: 300,
                available: 200
            }
        );
        // Failed configuration must not change anything.
        assert_eq!(n.available_area(), 200);
        assert_eq!(n.reconfig_count, 1);
    }

    #[test]
    fn exact_fit_leaves_zero_area() {
        let mut n = node(1000);
        n.send_bitstream(&cfg(1, 1000)).unwrap();
        assert_eq!(n.available_area(), 0);
        assert!(n.area_invariant_holds());
    }

    #[test]
    fn task_lifecycle_updates_state() {
        let mut n = node(3000);
        let s = n.send_bitstream(&cfg(1, 1000)).unwrap();
        n.add_task(s, TaskId(7)).unwrap();
        assert_eq!(n.state(), NodeState::Busy);
        assert_eq!(n.running_count(), 1);
        assert_eq!(n.slot(s).unwrap().task, Some(TaskId(7)));
        let t = n.remove_task(s).unwrap();
        assert_eq!(t, TaskId(7));
        assert_eq!(n.state(), NodeState::Idle);
        assert!(n.area_invariant_holds());
    }

    #[test]
    fn add_task_to_occupied_slot_fails() {
        let mut n = node(3000);
        let s = n.send_bitstream(&cfg(1, 1000)).unwrap();
        n.add_task(s, TaskId(1)).unwrap();
        assert_eq!(
            n.add_task(s, TaskId(2)).unwrap_err(),
            NodeError::SlotOccupied(s)
        );
    }

    #[test]
    fn remove_task_from_idle_slot_fails() {
        let mut n = node(3000);
        let s = n.send_bitstream(&cfg(1, 1000)).unwrap();
        assert_eq!(
            n.remove_task(s).unwrap_err(),
            NodeError::SlotBusyOrVacant(s)
        );
    }

    #[test]
    fn evict_busy_slot_fails() {
        let mut n = node(3000);
        let s = n.send_bitstream(&cfg(1, 1000)).unwrap();
        n.add_task(s, TaskId(1)).unwrap();
        assert_eq!(n.evict_slot(s).unwrap_err(), NodeError::SlotBusyOrVacant(s));
    }

    #[test]
    fn evict_reclaims_area_and_recycles_slot_index() {
        let mut n = node(2000);
        let s0 = n.send_bitstream(&cfg(1, 600)).unwrap();
        let _s1 = n.send_bitstream(&cfg(2, 700)).unwrap();
        assert_eq!(n.evict_slot(s0).unwrap(), ConfigId(1));
        assert_eq!(n.available_area(), 2000 - 700);
        assert_eq!(n.configured_count(), 1);
        // Freed index is reused.
        let s2 = n.send_bitstream(&cfg(3, 100)).unwrap();
        assert_eq!(s2, s0);
        assert!(n.area_invariant_holds());
    }

    #[test]
    fn evict_vacant_slot_fails() {
        let mut n = node(2000);
        let s = n.send_bitstream(&cfg(1, 600)).unwrap();
        n.evict_slot(s).unwrap();
        assert_eq!(n.evict_slot(s).unwrap_err(), NodeError::NoSuchSlot(s));
        assert_eq!(n.evict_slot(99).unwrap_err(), NodeError::NoSuchSlot(99));
    }

    #[test]
    fn make_blank_evicts_all_idle_configs() {
        let mut n = node(4000);
        n.send_bitstream(&cfg(1, 500)).unwrap();
        n.send_bitstream(&cfg(2, 700)).unwrap();
        n.send_bitstream(&cfg(3, 900)).unwrap();
        let evicted = n.make_blank().unwrap();
        assert_eq!(evicted.len(), 3);
        assert!(n.is_blank());
        assert_eq!(n.available_area(), 4000);
        assert!(n.area_invariant_holds());
    }

    #[test]
    fn make_blank_refuses_while_running() {
        let mut n = node(4000);
        let s = n.send_bitstream(&cfg(1, 500)).unwrap();
        n.send_bitstream(&cfg(2, 700)).unwrap();
        n.add_task(s, TaskId(0)).unwrap();
        assert!(n.make_blank().is_err());
        // Nothing was evicted.
        assert_eq!(n.configured_count(), 2);
    }

    #[test]
    fn slots_iterator_skips_freed_entries() {
        let mut n = node(4000);
        let s0 = n.send_bitstream(&cfg(1, 500)).unwrap();
        let s1 = n.send_bitstream(&cfg(2, 700)).unwrap();
        n.evict_slot(s0).unwrap();
        let live: Vec<u32> = n.slots().map(|(i, _)| i).collect();
        assert_eq!(live, vec![s1]);
    }

    #[test]
    fn reconfig_count_monotone_across_evictions() {
        let mut n = node(1000);
        for i in 0..5 {
            let s = n.send_bitstream(&cfg(i, 400)).unwrap();
            n.evict_slot(s).unwrap();
        }
        assert_eq!(n.reconfig_count, 5);
    }
}
