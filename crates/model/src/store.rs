//! The resource information manager: the single owner of nodes,
//! configurations, and the idle/busy lists, exposing exactly the queries
//! and mutations the scheduling algorithm of Section V needs.
//!
//! All searches charge [`StepKind::Scheduling`] steps (they are issued on
//! behalf of the scheduler); all list maintenance inside mutations
//! charges [`StepKind::Housekeeping`] (the resource information module's
//! own work). The sum of the two is the paper's *total scheduler
//! workload*.
//!
//! Searches can be answered by either of two [`SearchBackend`]s: the
//! paper's linear scans (default) or ordered indexes
//! ([`crate::search`]). The backend changes wall-clock cost only — both
//! backends return the same results **and charge the same steps**, so
//! reports and checkpoints are backend-independent (DESIGN.md §11).
//!
//! Node state lives in a struct-of-arrays [`NodeStore`] (DESIGN.md §18):
//! the linear node-table scans below stride over the one or two dense
//! columns they filter on (`down`, `available_area`, `total_area`)
//! instead of ~130-byte `Node` structs. Serialization still goes through
//! the AoS mirror, so checkpoints are byte-identical to the seed layout.

use crate::caps::Capabilities;
use crate::config::Config;
use crate::ids::{Area, ConfigId, EntryRef, NodeId, TaskId};
use crate::lists::{ConfigLists, ListKind};
use crate::node::{Node, NodeError, NodeState};
use crate::search::{IndexSnapshot, SearchBackend, SearchIndex};
use crate::soa::{NodeRef, NodeStore, Nodes};
use crate::steps::{StepCounter, StepKind};
use crate::task::PreferredConfig;
use std::collections::BTreeSet;

/// What a placement search is looking for: reconfigurable area plus any
/// hardware capabilities the configuration requires of its host node
/// (empty in the paper's evaluation; populated by the
/// capability-constraint extension).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Demand {
    /// Area the configuration occupies.
    pub area: Area,
    /// Capabilities the host node must offer.
    pub caps: Capabilities,
}

impl Demand {
    /// Capability-free demand (the paper's case).
    #[must_use]
    pub fn area(area: Area) -> Self {
        Self {
            area,
            caps: Capabilities::none(),
        }
    }

    /// The demand a configuration places on its host.
    #[must_use]
    pub fn of(config: &Config) -> Self {
        Self {
            area: config.req_area,
            caps: config.required_caps,
        }
    }

    /// Whether `node` offers the required capabilities.
    #[must_use]
    pub fn caps_ok(&self, node: NodeRef<'_>) -> bool {
        node.caps.is_superset_of(self.caps)
    }
}

/// Owner of all resource state for one simulation run.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ResourceManager {
    nodes: NodeStore,
    configs: Vec<Config>,
    lists: ConfigLists,
    /// Active search backend. Run-scoped and deliberately **not**
    /// serialized: checkpoints are backend-independent, and a restored
    /// store starts on the default (linear) backend until
    /// [`set_search_backend`](Self::set_search_backend) re-selects one.
    // REBUILD: resume restores the default (linear) backend; the run
    // options re-select via `set_search_backend`, which never touches
    // serialized state — so the skip cannot desynchronize a checkpoint.
    #[serde(skip)]
    backend: SearchBackend,
    /// The ordered indexes backing [`SearchBackend::Indexed`]; empty
    /// (and ignored) under the linear backend. Rebuilt from the node
    /// table and lists whenever the indexed backend is (re-)selected.
    // REBUILD: derived state only — `set_search_backend(Indexed)` calls
    // `SearchIndex::rebuild` from the restored nodes/lists, and the
    // auditor pins live-vs-rebuilt snapshot equality after resume.
    #[serde(skip)]
    index: SearchIndex,
    /// Monotone count of store mutation operations (configure, evict,
    /// assign, release, fail, repair) — the phase profiler's
    /// store-mutate counter. Deterministic: driven entirely by the
    /// simulated schedule, never by wall-clock.
    // REBUILD: diagnostics only — a resumed run restarts the profile
    // window at zero; no simulated state depends on this counter.
    #[serde(skip)]
    mutation_ops: u64,
}

impl ResourceManager {
    /// Build a manager over the given nodes and configuration list.
    ///
    /// # Panics
    /// Panics if node or configuration ids are not the dense sequence
    /// `0..len` in order (both tables are arena-indexed).
    #[must_use]
    pub fn new(nodes: Vec<Node>, configs: Vec<Config>) -> Self {
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(c.id.index(), i, "config ids must be dense and ordered");
        }
        let lists = ConfigLists::new(configs.len());
        Self {
            // `from_nodes` asserts dense, ordered node ids.
            nodes: NodeStore::from_nodes(nodes),
            configs,
            lists,
            backend: SearchBackend::default(),
            index: SearchIndex::default(),
            mutation_ops: 0,
        }
    }

    /// The backend currently answering placement searches.
    #[must_use]
    pub fn search_backend(&self) -> SearchBackend {
        self.backend
    }

    /// Select the search backend. [`SearchBackend::Auto`] is resolved
    /// to a concrete backend from this store's node count
    /// ([`SearchBackend::resolve`]), so the stored backend — and
    /// [`search_backend`](Self::search_backend) — is always `Linear` or
    /// `Indexed`. Selecting the indexed backend (re-)builds the ordered
    /// indexes from the current node table and lists — this is also the
    /// restore path after a checkpoint resume, since the index is never
    /// serialized. Selecting the linear backend drops them. Idempotent
    /// and safe at any point in a run; switching backends never changes
    /// step counters, search results, or serialized state.
    pub fn set_search_backend(&mut self, backend: SearchBackend) {
        let backend = backend.resolve(self.nodes.len());
        self.backend = backend;
        if backend == SearchBackend::Indexed {
            self.index = SearchIndex::rebuild(&self.nodes, &self.configs, &self.lists);
        } else {
            self.index.clear();
        }
    }

    /// Snapshot of the live search index, or `None` under the linear
    /// backend. Property tests compare this against
    /// [`rebuilt_index_snapshot`](Self::rebuilt_index_snapshot).
    #[must_use]
    pub fn search_index_snapshot(&self) -> Option<IndexSnapshot> {
        // `self.backend` is always concrete (`set_search_backend`
        // resolves `Auto` before storing), so this is a two-way branch.
        if self.backend == SearchBackend::Indexed {
            Some(self.index.snapshot())
        } else {
            None
        }
    }

    /// Snapshot of a from-scratch index rebuild off the current store
    /// state — the ground truth the live index must match.
    #[must_use]
    pub fn rebuilt_index_snapshot(&self) -> IndexSnapshot {
        SearchIndex::rebuild(&self.nodes, &self.configs, &self.lists).snapshot()
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of configurations in the configuration list.
    #[must_use]
    pub fn num_configs(&self) -> usize {
        self.configs.len()
    }

    /// Store mutation operations performed so far (phase profiler's
    /// store-mutate counter; deterministic).
    #[must_use]
    pub fn mutation_ops(&self) -> u64 {
        self.mutation_ops
    }

    /// Read proxy for a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range. Node ids are dense (checked at
    /// construction), so any id produced by this store is valid.
    #[must_use]
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        self.nodes.node(id)
    }

    /// All nodes, in id order.
    #[must_use]
    pub fn nodes(&self) -> Nodes<'_> {
        self.nodes.iter()
    }

    /// The underlying columnar store (read-only; benches and audits).
    #[must_use]
    pub fn node_store(&self) -> &NodeStore {
        &self.nodes
    }

    /// Corrupt a live slot's denormalized `area` **bypassing area
    /// accounting**. Exists solely so tests (e.g. the invariant
    /// auditor's) can damage store state on purpose; production code
    /// must go through the mutation API, which keeps the intrusive
    /// lists and area sums consistent.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    #[doc(hidden)]
    pub fn debug_set_slot_area(&mut self, node: NodeId, slot: u32, area: Area) {
        self.nodes.debug_set_slot_area(node.index(), slot, area);
    }

    /// Corrupt a node's `TotalArea` without rebalancing (tests only).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[doc(hidden)]
    pub fn debug_set_total_area(&mut self, node: NodeId, area: Area) {
        self.nodes.debug_set_total_area(node.index(), area);
    }

    /// Corrupt a live slot's task field **bypassing list maintenance**
    /// (tests only).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    #[doc(hidden)]
    pub fn debug_set_slot_task(&mut self, node: NodeId, slot: u32, task: Option<TaskId>) {
        self.nodes.debug_set_slot_task(node.index(), slot, task);
    }

    /// Borrow a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range. Config ids are dense (checked at
    /// construction), so any id produced by this store is valid.
    #[must_use]
    pub fn config(&self, id: ConfigId) -> &Config {
        &self.configs[id.index()]
    }

    /// All configurations, in id order.
    #[must_use]
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// Borrow the idle/busy lists (read-only; for diagnostics/tests).
    #[must_use]
    pub fn lists(&self) -> &ConfigLists {
        &self.lists
    }

    // ------------------------------------------------------------------
    // Searches (Section V / Algorithm 1), charging scheduling steps.
    // ------------------------------------------------------------------

    /// `FindPreferredConfig()`: linear search of the configuration list
    /// for the task's `Cpref`. A [`PreferredConfig::Phantom`] is by
    /// definition absent but still costs the full scan (the paper notes
    /// "currently, a simple linear search is employed").
    pub fn find_preferred_config(
        &self,
        pref: PreferredConfig,
        steps: &mut StepCounter,
    ) -> Option<ConfigId> {
        match pref {
            PreferredConfig::Known(id) => {
                if self.backend == SearchBackend::Indexed {
                    // Config ids are dense and ordered (checked at
                    // construction), so the linear scan reaches `id`
                    // after exactly `index + 1` probes, or exhausts the
                    // list if the id is out of range.
                    if id.index() < self.configs.len() {
                        steps.charge(StepKind::Scheduling, id.index() as u64 + 1);
                        return Some(id);
                    }
                    steps.charge(StepKind::Scheduling, self.configs.len() as u64);
                    return None;
                }
                for c in &self.configs {
                    steps.tick(StepKind::Scheduling);
                    if c.id == id {
                        return Some(id);
                    }
                }
                None
            }
            PreferredConfig::Phantom { .. } => {
                steps.charge(StepKind::Scheduling, self.configs.len() as u64);
                None
            }
        }
    }

    /// `FindClosestConfig()`: the configuration whose `ReqArea` is
    /// minimal among those with `ReqArea` **greater than** the preferred
    /// configuration's area (the paper's criterion, Section IV.C).
    pub fn find_closest_config(
        &self,
        needed_area: Area,
        steps: &mut StepCounter,
    ) -> Option<ConfigId> {
        if self.backend == SearchBackend::Indexed {
            steps.charge(StepKind::Scheduling, self.configs.len() as u64);
            return self.index.closest_config(needed_area);
        }
        let mut best: Option<(Area, ConfigId)> = None;
        for c in &self.configs {
            steps.tick(StepKind::Scheduling);
            if c.req_area > needed_area {
                let cand = (c.req_area, c.id);
                best = Some(match best {
                    None => cand,
                    Some(b) if cand < b => cand,
                    Some(b) => b,
                });
            }
        }
        best.map(|(_, id)| id)
    }

    /// `FindBestNode()`: among idle instances of `config`, the node with
    /// minimum `AvailableArea` (best fit — "so that the nodes with larger
    /// AvailableArea are utilized for later re-configurations").
    pub fn find_best_idle(&self, config: ConfigId, steps: &mut StepCounter) -> Option<EntryRef> {
        if self.backend == SearchBackend::Indexed {
            // The linear walk visits every list entry; charge the same.
            steps.charge(StepKind::Scheduling, self.index.idle_len(config) as u64);
            return self.index.best_idle(config);
        }
        let mut best: Option<(Area, EntryRef)> = None;
        for e in self.lists.iter(&self.nodes, ListKind::Idle, config) {
            steps.tick(StepKind::Scheduling);
            let avail = self.nodes.available_area(e.node.index());
            if best.is_none_or(|(a, _)| avail < a) {
                best = Some((avail, e));
            }
        }
        best.map(|(_, e)| e)
    }

    /// First idle instance of `config` in list order (first fit), for the
    /// policy-ablation schedulers.
    ///
    /// Identical under both backends: the intrusive list head is already
    /// O(1), so the indexed backend has nothing to accelerate. A probe
    /// of an **empty** list charges zero scheduling steps (there is no
    /// entry to examine) — pinned by a unit test so the backends cannot
    /// drift apart on step accounting.
    pub fn find_first_idle(&self, config: ConfigId, steps: &mut StepCounter) -> Option<EntryRef> {
        let e = self.lists.iter(&self.nodes, ListKind::Idle, config).next();
        if e.is_some() {
            steps.tick(StepKind::Scheduling);
        }
        e
    }

    /// Among idle instances of `config`, the node with **maximum**
    /// available area (worst fit), for the policy ablation.
    pub fn find_worst_idle(&self, config: ConfigId, steps: &mut StepCounter) -> Option<EntryRef> {
        if self.backend == SearchBackend::Indexed {
            steps.charge(StepKind::Scheduling, self.index.idle_len(config) as u64);
            return self.index.worst_idle(config);
        }
        let mut best: Option<(Area, EntryRef)> = None;
        for e in self.lists.iter(&self.nodes, ListKind::Idle, config) {
            steps.tick(StepKind::Scheduling);
            let avail = self.nodes.available_area(e.node.index());
            if best.is_none_or(|(a, _)| avail > a) {
                best = Some((avail, e));
            }
        }
        best.map(|(_, e)| e)
    }

    /// All idle instances of `config`, charging one scheduling step per
    /// visited entry (random-choice policy support).
    ///
    /// Identical under both backends: the caller (the random policy)
    /// indexes into the returned vector with an RNG draw, so the
    /// **list order** of the result is semantically significant and must
    /// not depend on the backend. An empty list charges zero steps.
    pub fn collect_idle(&self, config: ConfigId, steps: &mut StepCounter) -> Vec<EntryRef> {
        let v: Vec<EntryRef> = self
            .lists
            .iter(&self.nodes, ListKind::Idle, config)
            .collect();
        steps.charge(StepKind::Scheduling, v.len() as u64);
        v
    }

    /// Whether node `i` satisfies `demand`'s capability requirement.
    #[inline]
    fn caps_ok_at(&self, i: usize, demand: Demand) -> bool {
        self.nodes.caps(i).is_superset_of(demand.caps)
    }

    /// Best **blank** node for the demanded area/capabilities: minimal
    /// `TotalArea` among eligible blank nodes (scans the node table; the
    /// paper keeps no blank list).
    pub fn find_best_blank(&self, demand: Demand, steps: &mut StepCounter) -> Option<NodeId> {
        if self.backend == SearchBackend::Indexed {
            // Charge the full table scan the linear backend performs,
            // then answer from the blank index: candidates arrive in
            // ascending (TotalArea, NodeId) order — exactly the linear
            // scan's preference — so the first one passing the
            // capability and placement filters is the linear pick.
            steps.charge(StepKind::Scheduling, self.nodes.len() as u64);
            return self.index.blank_candidates(demand.area).find(|&id| {
                let i = id.index();
                self.caps_ok_at(i, demand) && self.nodes.can_host(i, demand.area)
            });
        }
        let mut best: Option<(Area, NodeId)> = None;
        for i in 0..self.nodes.len() {
            steps.tick(StepKind::Scheduling);
            if !self.nodes.is_down(i)
                && self.nodes.is_blank(i)
                && self.caps_ok_at(i, demand)
                && self.nodes.can_host(i, demand.area)
            {
                let cand = (self.nodes.total_area(i), NodeId::from_index(i));
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Best **partially blank** node: already holds ≥ 1 configuration and
    /// has `AvailableArea ≥ req_area`; minimal sufficient available area
    /// ("the scheduler chooses a node with minimum sufficient region").
    /// Only meaningful under partial reconfiguration.
    pub fn find_best_partially_blank(
        &self,
        demand: Demand,
        steps: &mut StepCounter,
    ) -> Option<NodeId> {
        if self.backend == SearchBackend::Indexed {
            steps.charge(StepKind::Scheduling, self.nodes.len() as u64);
            return self.index.partial_candidates(demand.area).find(|&id| {
                let i = id.index();
                self.caps_ok_at(i, demand) && self.nodes.can_host(i, demand.area)
            });
        }
        let mut best: Option<(Area, NodeId)> = None;
        for i in 0..self.nodes.len() {
            steps.tick(StepKind::Scheduling);
            if !self.nodes.is_down(i)
                && !self.nodes.is_blank(i)
                && self.caps_ok_at(i, demand)
                && self.nodes.can_host(i, demand.area)
            {
                let cand = (self.nodes.available_area(i), NodeId::from_index(i));
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Algorithm 1, `FindAnyIdleNode`: scan nodes accumulating
    /// `AvailableArea` plus the areas of **idle** config-task entries;
    /// the first node whose reclaimable area reaches `req_area` is
    /// returned together with the idle slots to evict. Each examined
    /// entry charges one scheduling step (the paper increments both
    /// `SearchLength` and `TotalSimWorkLoad`; scheduling steps fold into
    /// the workload total by definition here).
    ///
    /// Identical under both backends: the step charge equals the number
    /// of slots examined before the accumulation threshold is reached,
    /// which no index can reproduce without performing the walk
    /// (DESIGN.md §11).
    pub fn find_any_idle_node(
        &self,
        demand: Demand,
        steps: &mut StepCounter,
    ) -> Option<(NodeId, Vec<u32>)> {
        for i in 0..self.nodes.len() {
            if self.nodes.is_down(i) || !self.caps_ok_at(i, demand) {
                continue;
            }
            let mut accum = self.nodes.available_area(i);
            let mut entries: Vec<u32> = Vec::new();
            for (idx, slot) in self.nodes.slots(i) {
                steps.tick(StepKind::Scheduling);
                if slot.task.is_none() {
                    // BOUND: accumulates slot areas of one node, at most its total_area.
                    accum += slot.area;
                    entries.push(idx);
                    if accum >= demand.area
                        && self.nodes.can_host_after_evicting(i, demand.area, &entries)
                    {
                        return Some((NodeId::from_index(i), entries));
                    }
                }
            }
        }
        None
    }

    /// "Query busy list for potential candidate": does any currently busy
    /// node have `TotalArea ≥ req_area`, so that suspending the task and
    /// waiting for that node is worthwhile?
    ///
    /// Identical under both backends: the early-exit scan charges
    /// exactly the position of the first match, a quantity only the scan
    /// itself can produce (DESIGN.md §11).
    pub fn busy_candidate_exists(&self, demand: Demand, steps: &mut StepCounter) -> bool {
        for i in 0..self.nodes.len() {
            steps.tick(StepKind::Scheduling);
            if !self.nodes.is_down(i)
                && self.nodes.state(i) == NodeState::Busy
                && self.caps_ok_at(i, demand)
                && self.nodes.total_area(i) >= demand.area
            {
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Mutations, maintaining list membership (housekeeping steps).
    // ------------------------------------------------------------------

    /// Instantiate `config` on `node` (`SendBitstream` + idle-list
    /// insertion). Returns the new entry.
    pub fn configure_slot(
        &mut self,
        node: NodeId,
        config: ConfigId,
        steps: &mut StepCounter,
    ) -> Result<EntryRef, NodeError> {
        let cfg = self.configs[config.index()].clone();
        let slot = self.nodes.send_bitstream(node.index(), &cfg)?;
        // BOUND: one tick per successful mutation; u64 cannot wrap.
        self.mutation_ops += 1;
        let entry = EntryRef::new(node, slot);
        self.lists
            .push(&mut self.nodes, ListKind::Idle, config, entry, steps);
        if self.backend == SearchBackend::Indexed {
            self.index.refresh_node(&self.nodes, node);
            self.index.add_entry(&self.nodes, entry, config);
        }
        Ok(entry)
    }

    /// Evict the given **idle** slots of `node` (one or more steps of
    /// `MakeNodePartiallyBlank` / all of `MakeNodeBlank`), unlinking each
    /// from its configuration's idle list.
    ///
    /// # Panics
    ///
    /// Panics if a named slot is live but missing from its idle list —
    /// that would mean the intrusive lists and the slot slab disagree,
    /// i.e. the store was corrupted earlier, and failing fast beats
    /// scheduling on inconsistent state.
    pub fn evict_idle_slots(
        &mut self,
        node: NodeId,
        slots: &[u32],
        steps: &mut StepCounter,
    ) -> Result<(), NodeError> {
        for &idx in slots {
            let config = self
                .nodes
                .slot(node.index(), idx)
                .ok_or(NodeError::NoSuchSlot(idx))?
                .config;
            let entry = EntryRef::new(node, idx);
            let removed = self
                .lists
                .remove(&mut self.nodes, ListKind::Idle, config, entry, steps);
            assert!(
                removed,
                "idle slot {entry} missing from idle list of {config}"
            );
            if self.backend == SearchBackend::Indexed {
                self.index.remove_entry(node, idx);
            }
            self.nodes.evict_slot(node.index(), idx)?;
            // BOUND: one tick per successful mutation; u64 cannot wrap.
            self.mutation_ops += 1;
            if self.backend == SearchBackend::Indexed {
                self.index.refresh_node(&self.nodes, node);
            }
        }
        Ok(())
    }

    /// Start `task` on `entry` (`AddTaskToNode` + idle→busy list move).
    ///
    /// # Panics
    ///
    /// Panics if the slot is live yet absent from its configuration's
    /// idle list (store corruption; see
    /// [`evict_idle_slots`](Self::evict_idle_slots)).
    pub fn assign_task(
        &mut self,
        entry: EntryRef,
        task: TaskId,
        steps: &mut StepCounter,
    ) -> Result<(), NodeError> {
        let config = self
            .nodes
            .slot(entry.node.index(), entry.slot)
            .ok_or(NodeError::NoSuchSlot(entry.slot))?
            .config;
        let removed = self
            .lists
            .remove(&mut self.nodes, ListKind::Idle, config, entry, steps);
        assert!(removed, "assigning {entry}: not on idle list of {config}");
        if self.backend == SearchBackend::Indexed {
            // Assignment changes no areas, only list membership.
            self.index.remove_entry(entry.node, entry.slot);
        }
        self.nodes.add_task(entry.node.index(), entry.slot, task)?;
        // BOUND: one tick per successful mutation; u64 cannot wrap.
        self.mutation_ops += 1;
        self.lists
            .push(&mut self.nodes, ListKind::Busy, config, entry, steps);
        Ok(())
    }

    /// Finish the task on `entry` (`RemoveTaskFromNode` + busy→idle list
    /// move). Returns the finished task.
    ///
    /// # Panics
    ///
    /// Panics if the slot is live yet absent from its configuration's
    /// busy list (store corruption; see
    /// [`evict_idle_slots`](Self::evict_idle_slots)).
    pub fn release_task(
        &mut self,
        entry: EntryRef,
        steps: &mut StepCounter,
    ) -> Result<TaskId, NodeError> {
        let config = self
            .nodes
            .slot(entry.node.index(), entry.slot)
            .ok_or(NodeError::NoSuchSlot(entry.slot))?
            .config;
        let removed = self
            .lists
            .remove(&mut self.nodes, ListKind::Busy, config, entry, steps);
        assert!(removed, "releasing {entry}: not on busy list of {config}");
        let task = self.nodes.remove_task(entry.node.index(), entry.slot)?;
        // BOUND: one tick per successful mutation; u64 cannot wrap.
        self.mutation_ops += 1;
        self.lists
            .push(&mut self.nodes, ListKind::Idle, config, entry, steps);
        if self.backend == SearchBackend::Indexed {
            self.index.refresh_node(&self.nodes, entry.node);
            self.index.add_entry(&self.nodes, entry, config);
        }
        Ok(task)
    }

    // ------------------------------------------------------------------
    // Failure injection (extension; see DESIGN.md §7).
    // ------------------------------------------------------------------

    /// Fail `node`: every running task is killed (returned for the driver
    /// to mark discarded), every slot is evicted, and the node is marked
    /// down so searches skip it until [`repair_node`](Self::repair_node).
    /// Idempotent on an already-down node.
    ///
    /// # Panics
    ///
    /// Panics only when the store's cross-structure invariants are
    /// already broken — a slot missing from the list its occupancy says
    /// it is on, a busy slot without a task, or a freshly vacated slot
    /// that cannot be evicted. All of these mean earlier corruption, so
    /// the failure path refuses to paper over them.
    pub fn fail_node(&mut self, node: NodeId, steps: &mut StepCounter) -> Vec<TaskId> {
        let i = node.index();
        let entries: Vec<(u32, ConfigId, bool)> = self
            .nodes
            .slots(i)
            .map(|(idx, s)| (idx, s.config, s.task.is_some()))
            .collect();
        let mut killed = Vec::new();
        for &(idx, config, busy) in &entries {
            let entry = EntryRef::new(node, idx);
            let kind = if busy { ListKind::Busy } else { ListKind::Idle };
            let removed = self
                .lists
                .remove(&mut self.nodes, kind, config, entry, steps);
            assert!(removed, "failing {entry}: missing from {kind:?} list");
            if busy {
                // `busy` was read from this very slot moments ago, so a
                // vanished task means the slab changed under us.
                match self.nodes.remove_task(i, idx) {
                    Ok(task) => killed.push(task),
                    Err(e) => unreachable!("failing {entry}: busy slot lost its task: {e}"),
                }
            }
            // Any task was removed just above, so the slot must be idle
            // and evictable.
            if let Err(e) = self.nodes.evict_slot(i, idx) {
                unreachable!("failing {entry}: cannot evict vacated slot: {e}");
            }
            // BOUND: one tick per evicted slot; u64 cannot wrap.
            self.mutation_ops += 1;
        }
        self.nodes.set_down(i, true);
        // BOUND: one tick per successful mutation; u64 cannot wrap.
        self.mutation_ops += 1;
        if self.backend == SearchBackend::Indexed {
            // The loop above did not re-key per slot; purge uses the
            // recorded keys and drops the node's set registration.
            self.index.purge_node(&self.nodes, node);
        }
        killed
    }

    /// Bring a failed node back online, blank.
    pub fn repair_node(&mut self, node: NodeId) {
        self.nodes.set_down(node.index(), false);
        // BOUND: one tick per successful mutation; u64 cannot wrap.
        self.mutation_ops += 1;
        if self.backend == SearchBackend::Indexed {
            self.index.refresh_node(&self.nodes, node);
        }
    }

    // ------------------------------------------------------------------
    // Metrics and validation.
    // ------------------------------------------------------------------

    /// Eq. 6: the instantaneous total wasted area — the sum of
    /// `AvailableArea` over all nodes holding at least one configuration.
    #[must_use]
    pub fn wasted_area_snapshot(&self) -> Area {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes.is_blank(i))
            .map(|i| self.nodes.available_area(i))
            .sum()
    }

    /// Total reconfigurations performed across all nodes.
    #[must_use]
    pub fn total_reconfigurations(&self) -> u64 {
        (0..self.nodes.len())
            .map(|i| self.nodes.reconfig_count(i))
            .sum()
    }

    /// Number of nodes that were configured at least once
    /// (Table I's *total used nodes*).
    #[must_use]
    pub fn used_nodes(&self) -> usize {
        (0..self.nodes.len())
            .filter(|&i| self.nodes.reconfig_count(i) > 0)
            .count()
    }

    /// Exhaustively validate the cross-structure invariants. Intended
    /// for tests and debug builds; O(nodes × slots).
    ///
    /// Checks:
    /// 1. every node satisfies Eq. 4 (area accounting);
    /// 2. every live slot appears on exactly one list — the idle list of
    ///    its config when vacant, the busy list when running a task;
    /// 3. the lists contain no duplicates, no dangling entries, and no
    ///    entries of the wrong configuration;
    /// 4. under [`SearchBackend::Indexed`], the incrementally maintained
    ///    index matches a from-scratch rebuild — membership, keys, and
    ///    tie-break order ([`IndexSnapshot`] equality).
    pub fn check_invariants(&self) -> Result<(), String> {
        for i in 0..self.nodes.len() {
            if !self.nodes.area_invariant_holds(i) {
                return Err(format!(
                    "{}: Eq. 4 area invariant violated",
                    NodeId::from_index(i)
                ));
            }
        }
        let mut listed: BTreeSet<EntryRef> = BTreeSet::new();
        for c in &self.configs {
            for (kind, want_busy) in [(ListKind::Idle, false), (ListKind::Busy, true)] {
                let mut visited = 0usize;
                for e in self.lists.iter(&self.nodes, kind, c.id) {
                    visited += 1;
                    if visited > self.nodes.len() * 64 {
                        return Err(format!("{}: {kind:?} list appears cyclic", c.id));
                    }
                    let slot = self
                        .nodes
                        .slot(e.node.index(), e.slot)
                        .ok_or_else(|| format!("{}: dangling entry {e}", c.id))?;
                    if slot.config != c.id {
                        return Err(format!("{e} on list of {} but holds {}", c.id, slot.config));
                    }
                    if slot.task.is_some() != want_busy {
                        return Err(format!("{e} on {kind:?} list with task={:?}", slot.task));
                    }
                    if !listed.insert(e) {
                        return Err(format!("{e} appears on more than one list"));
                    }
                }
            }
        }
        let live: usize = (0..self.nodes.len())
            // BOUND: live is a small per-node slot count.
            .map(|i| self.nodes.live_count(i) as usize)
            .sum();
        if live != listed.len() {
            return Err(format!(
                "{live} live slots but {} listed entries",
                listed.len()
            ));
        }
        if self.backend == SearchBackend::Indexed {
            if let Some(divergence) = self
                .index
                .snapshot()
                .first_divergence(&self.rebuilt_index_snapshot())
            {
                return Err(format!("search index out of sync: {divergence}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(configs: &[(u32, Area)], nodes: &[Area]) -> ResourceManager {
        let configs: Vec<Config> = configs
            .iter()
            .map(|&(id, a)| Config::new(ConfigId(id), a, 10))
            .collect();
        let nodes: Vec<Node> = nodes
            .iter()
            .enumerate()
            .map(|(i, &a)| Node::new(NodeId::from_index(i), a, 2))
            .collect();
        ResourceManager::new(nodes, configs)
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn non_dense_node_ids_rejected() {
        let nodes = vec![Node::new(NodeId(1), 100, 0)];
        let _ = ResourceManager::new(nodes, vec![]);
    }

    #[test]
    fn find_preferred_config_counts_steps() {
        let rm = make(&[(0, 300), (1, 500), (2, 700)], &[1000]);
        let mut s = StepCounter::new();
        assert_eq!(
            rm.find_preferred_config(PreferredConfig::Known(ConfigId(2)), &mut s),
            Some(ConfigId(2))
        );
        assert_eq!(
            s.scheduling, 3,
            "linear scan visits 3 entries to reach id 2"
        );
        let mut s2 = StepCounter::new();
        assert_eq!(
            rm.find_preferred_config(PreferredConfig::Phantom { area: 400 }, &mut s2),
            None
        );
        assert_eq!(s2.scheduling, 3, "phantom costs the full scan");
    }

    #[test]
    fn closest_config_is_min_area_strictly_above() {
        let rm = make(&[(0, 300), (1, 500), (2, 700)], &[1000]);
        let mut s = StepCounter::new();
        assert_eq!(rm.find_closest_config(400, &mut s), Some(ConfigId(1)));
        assert_eq!(
            rm.find_closest_config(500, &mut s),
            Some(ConfigId(2)),
            "strictly greater"
        );
        assert_eq!(rm.find_closest_config(700, &mut s), None);
        assert_eq!(rm.find_closest_config(100, &mut s), Some(ConfigId(0)));
    }

    #[test]
    fn configure_and_best_idle_selects_min_available_area() {
        let mut rm = make(&[(0, 400)], &[4000, 2000, 3000]);
        let mut s = StepCounter::new();
        for i in 0..3 {
            rm.configure_slot(NodeId(i), ConfigId(0), &mut s).unwrap();
        }
        // Available areas: 3600, 1600, 2600 → best is node 1.
        let best = rm.find_best_idle(ConfigId(0), &mut s).unwrap();
        assert_eq!(best.node, NodeId(1));
        rm.check_invariants().unwrap();
    }

    #[test]
    fn assign_and_release_move_between_lists() {
        let mut rm = make(&[(0, 400)], &[1000]);
        let mut s = StepCounter::new();
        let e = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.assign_task(e, TaskId(5), &mut s).unwrap();
        rm.check_invariants().unwrap();
        assert!(rm.find_best_idle(ConfigId(0), &mut s).is_none());
        assert_eq!(rm.node(NodeId(0)).state(), NodeState::Busy);
        let t = rm.release_task(e, &mut s).unwrap();
        assert_eq!(t, TaskId(5));
        rm.check_invariants().unwrap();
        assert_eq!(rm.find_best_idle(ConfigId(0), &mut s), Some(e));
    }

    #[test]
    fn best_blank_prefers_tightest_fit() {
        let rm = make(&[(0, 900)], &[4000, 1000, 2000, 800]);
        let mut s = StepCounter::new();
        // Blank nodes that fit 900: areas 4000, 1000, 2000 → pick 1000.
        assert_eq!(
            rm.find_best_blank(Demand::area(900), &mut s),
            Some(NodeId(1))
        );
        assert_eq!(s.scheduling, 4, "scans the whole node table");
        // Nothing fits 5000.
        assert_eq!(rm.find_best_blank(Demand::area(5000), &mut s), None);
    }

    #[test]
    fn partially_blank_requires_existing_config() {
        let mut rm = make(&[(0, 400)], &[4000, 3000]);
        let mut s = StepCounter::new();
        assert_eq!(
            rm.find_best_partially_blank(Demand::area(100), &mut s),
            None,
            "all blank"
        );
        rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        // Node 0 now has 3600 available and one config.
        assert_eq!(
            rm.find_best_partially_blank(Demand::area(3600), &mut s),
            Some(NodeId(0))
        );
        assert_eq!(
            rm.find_best_partially_blank(Demand::area(3601), &mut s),
            None
        );
    }

    #[test]
    fn algorithm_one_accumulates_idle_entries() {
        let mut rm = make(&[(0, 400), (1, 600)], &[1200]);
        let mut s = StepCounter::new();
        let e0 = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        let _e1 = rm.configure_slot(NodeId(0), ConfigId(1), &mut s).unwrap();
        // Node: total 1200, available 200, idle slots areas 400 + 600.
        // Need 700: available(200) + slot0(400) = 600 < 700, + slot1(600)
        // = 1200 ≥ 700 → both slots returned.
        let (node, evict) = rm.find_any_idle_node(Demand::area(700), &mut s).unwrap();
        assert_eq!(node, NodeId(0));
        assert_eq!(evict.len(), 2);
        // Need 500: available + slot0 = 600 ≥ 500 → only first slot.
        let (_, evict) = rm.find_any_idle_node(Demand::area(500), &mut s).unwrap();
        assert_eq!(evict.len(), 1);
        // Busy slots do not contribute.
        rm.assign_task(e0, TaskId(0), &mut s).unwrap();
        assert!(rm.find_any_idle_node(Demand::area(900), &mut s).is_none());
        let (_, evict) = rm.find_any_idle_node(Demand::area(800), &mut s).unwrap();
        assert_eq!(evict.len(), 1, "only the idle 600-slot is reclaimable");
    }

    #[test]
    fn evict_idle_slots_reclaims_area_and_lists() {
        let mut rm = make(&[(0, 400), (1, 600)], &[1200]);
        let mut s = StepCounter::new();
        rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.configure_slot(NodeId(0), ConfigId(1), &mut s).unwrap();
        let (node, evict) = rm.find_any_idle_node(Demand::area(1100), &mut s).unwrap();
        rm.evict_idle_slots(node, &evict, &mut s).unwrap();
        assert_eq!(rm.node(node).available_area(), 1200);
        assert!(rm.node(node).is_blank());
        rm.check_invariants().unwrap();
    }

    #[test]
    fn busy_candidate_scan() {
        let mut rm = make(&[(0, 400)], &[1000, 3000]);
        let mut s = StepCounter::new();
        assert!(
            !rm.busy_candidate_exists(Demand::area(500), &mut s),
            "nothing busy yet"
        );
        let e = rm.configure_slot(NodeId(1), ConfigId(0), &mut s).unwrap();
        rm.assign_task(e, TaskId(0), &mut s).unwrap();
        assert!(rm.busy_candidate_exists(Demand::area(2500), &mut s));
        assert!(
            !rm.busy_candidate_exists(Demand::area(3500), &mut s),
            "too big for any busy node"
        );
    }

    #[test]
    fn wasted_area_snapshot_counts_only_configured_nodes() {
        let mut rm = make(&[(0, 400)], &[1000, 2000]);
        let mut s = StepCounter::new();
        assert_eq!(rm.wasted_area_snapshot(), 0);
        rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        assert_eq!(rm.wasted_area_snapshot(), 600);
        rm.configure_slot(NodeId(1), ConfigId(0), &mut s).unwrap();
        assert_eq!(rm.wasted_area_snapshot(), 600 + 1600);
    }

    #[test]
    fn used_nodes_and_total_reconfigs() {
        let mut rm = make(&[(0, 400)], &[1000, 2000, 3000]);
        let mut s = StepCounter::new();
        let e = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.evict_idle_slots(NodeId(0), &[e.slot], &mut s).unwrap();
        rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.configure_slot(NodeId(2), ConfigId(0), &mut s).unwrap();
        assert_eq!(rm.total_reconfigurations(), 3);
        assert_eq!(rm.used_nodes(), 2);
    }

    #[test]
    fn first_and_worst_fit_variants() {
        let mut rm = make(&[(0, 400)], &[4000, 2000, 3000]);
        let mut s = StepCounter::new();
        let mut entries = Vec::new();
        for i in 0..3 {
            entries.push(rm.configure_slot(NodeId(i), ConfigId(0), &mut s).unwrap());
        }
        // LIFO list order: node2, node1, node0.
        assert_eq!(
            rm.find_first_idle(ConfigId(0), &mut s).unwrap().node,
            NodeId(2)
        );
        // Worst fit: max available area = node 0 (3600).
        assert_eq!(
            rm.find_worst_idle(ConfigId(0), &mut s).unwrap().node,
            NodeId(0)
        );
        let all = rm.collect_idle(ConfigId(0), &mut s);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn fail_node_kills_tasks_and_hides_node_from_searches() {
        let mut rm = make(&[(0, 400)], &[1000, 1000]);
        let mut s = StepCounter::new();
        let e = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap(); // second idle slot
        rm.assign_task(e, TaskId(3), &mut s).unwrap();
        let killed = rm.fail_node(NodeId(0), &mut s);
        assert_eq!(killed, vec![TaskId(3)]);
        assert!(rm.node(NodeId(0)).is_blank());
        assert!(rm.node(NodeId(0)).down);
        rm.check_invariants().unwrap();
        // Down node invisible to searches even though blank.
        assert_eq!(
            rm.find_best_blank(Demand::area(100), &mut s),
            Some(NodeId(1))
        );
        assert!(!rm.busy_candidate_exists(Demand::area(100), &mut s));
        assert!(
            rm.find_any_idle_node(Demand::area(100), &mut s)
                .map(|(n, _)| n)
                == Some(NodeId(1))
                || rm.find_any_idle_node(Demand::area(100), &mut s).is_none()
        );
        // Repair restores eligibility.
        rm.repair_node(NodeId(0));
        assert_eq!(
            rm.find_best_blank(Demand::area(100), &mut s),
            Some(NodeId(0))
        );
        // Idempotent failure on an empty down node.
        let killed = rm.fail_node(NodeId(1), &mut s);
        assert!(killed.is_empty());
    }

    #[test]
    fn empty_probe_charges_zero_steps_under_both_backends() {
        // Satellite: `find_first_idle` and `collect_idle` on an empty
        // idle list examine no entries, so they must charge exactly
        // zero scheduling steps — under both backends. Pinned so a
        // future backend cannot silently diverge on the empty case.
        for backend in [SearchBackend::Linear, SearchBackend::Indexed] {
            let mut rm = make(&[(0, 400)], &[1000]);
            rm.set_search_backend(backend);
            let mut s = StepCounter::new();
            assert_eq!(rm.find_first_idle(ConfigId(0), &mut s), None);
            assert!(rm.collect_idle(ConfigId(0), &mut s).is_empty());
            assert_eq!(rm.find_best_idle(ConfigId(0), &mut s), None);
            assert_eq!(rm.find_worst_idle(ConfigId(0), &mut s), None);
            assert_eq!(s.scheduling, 0, "{backend}: empty probes must be free");
            assert_eq!(s.housekeeping, 0);
        }
    }

    #[test]
    fn indexed_backend_matches_linear_results_and_steps() {
        let configs = &[(0, 300), (1, 500), (2, 700)];
        let areas = &[4000, 2000, 3000, 800, 2000];
        let mut lin = make(configs, areas);
        let mut idx = make(configs, areas);
        idx.set_search_backend(SearchBackend::Indexed);
        let mut sl = StepCounter::new();
        let mut si = StepCounter::new();
        // Drive both stores through the same mutation sequence,
        // comparing every search and both counters at each step.
        let check = |lin: &ResourceManager,
                     idx: &ResourceManager,
                     sl: &mut StepCounter,
                     si: &mut StepCounter| {
            for pref in [
                PreferredConfig::Known(ConfigId(1)),
                PreferredConfig::Known(ConfigId(2)),
                PreferredConfig::Phantom { area: 400 },
            ] {
                assert_eq!(
                    lin.find_preferred_config(pref, sl),
                    idx.find_preferred_config(pref, si)
                );
            }
            for a in [0, 299, 300, 500, 699, 700] {
                assert_eq!(
                    lin.find_closest_config(a, sl),
                    idx.find_closest_config(a, si)
                );
                assert_eq!(
                    lin.find_best_blank(Demand::area(a), sl),
                    idx.find_best_blank(Demand::area(a), si)
                );
                assert_eq!(
                    lin.find_best_partially_blank(Demand::area(a), sl),
                    idx.find_best_partially_blank(Demand::area(a), si)
                );
            }
            for c in 0..3 {
                assert_eq!(
                    lin.find_best_idle(ConfigId(c), sl),
                    idx.find_best_idle(ConfigId(c), si)
                );
                assert_eq!(
                    lin.find_worst_idle(ConfigId(c), sl),
                    idx.find_worst_idle(ConfigId(c), si)
                );
                assert_eq!(
                    lin.find_first_idle(ConfigId(c), sl),
                    idx.find_first_idle(ConfigId(c), si)
                );
                assert_eq!(
                    lin.collect_idle(ConfigId(c), sl),
                    idx.collect_idle(ConfigId(c), si)
                );
            }
            assert_eq!(sl.scheduling, si.scheduling, "scheduling steps diverged");
            assert_eq!(
                sl.housekeeping, si.housekeeping,
                "housekeeping steps diverged"
            );
            lin.check_invariants().unwrap();
            idx.check_invariants().unwrap();
            if idx.search_backend() == SearchBackend::Indexed {
                assert_eq!(
                    idx.search_index_snapshot(),
                    Some(idx.rebuilt_index_snapshot())
                );
            }
        };
        check(&lin, &idx, &mut sl, &mut si);
        let mut entries = Vec::new();
        for (n, c) in [(0, 0), (1, 0), (2, 0), (0, 1), (4, 2), (2, 1)] {
            let el = lin.configure_slot(NodeId(n), ConfigId(c), &mut sl).unwrap();
            let ei = idx.configure_slot(NodeId(n), ConfigId(c), &mut si).unwrap();
            assert_eq!(el, ei);
            entries.push(el);
            check(&lin, &idx, &mut sl, &mut si);
        }
        // Assign, release, evict, fail, repair — same on both.
        lin.assign_task(entries[1], TaskId(0), &mut sl).unwrap();
        idx.assign_task(entries[1], TaskId(0), &mut si).unwrap();
        check(&lin, &idx, &mut sl, &mut si);
        assert_eq!(
            lin.release_task(entries[1], &mut sl).unwrap(),
            idx.release_task(entries[1], &mut si).unwrap()
        );
        check(&lin, &idx, &mut sl, &mut si);
        lin.evict_idle_slots(NodeId(0), &[entries[3].slot], &mut sl)
            .unwrap();
        idx.evict_idle_slots(NodeId(0), &[entries[3].slot], &mut si)
            .unwrap();
        check(&lin, &idx, &mut sl, &mut si);
        assert_eq!(
            lin.fail_node(NodeId(2), &mut sl),
            idx.fail_node(NodeId(2), &mut si)
        );
        check(&lin, &idx, &mut sl, &mut si);
        lin.repair_node(NodeId(2));
        idx.repair_node(NodeId(2));
        check(&lin, &idx, &mut sl, &mut si);
        // Switching the indexed store back to linear is lossless.
        idx.set_search_backend(SearchBackend::Linear);
        assert_eq!(idx.search_index_snapshot(), None);
        check(&lin, &idx, &mut sl, &mut si);
    }

    #[test]
    fn indexed_worst_fit_breaks_ties_like_the_list_walk() {
        // Three idle instances on equal-area nodes: the linear walk
        // keeps the *first* entry it sees, i.e. the most recently
        // pushed one (LIFO head). The index must pick the same entry.
        let configs = &[(0, 400)];
        let areas = &[1000, 1000, 1000];
        let mut lin = make(configs, areas);
        let mut idx = make(configs, areas);
        idx.set_search_backend(SearchBackend::Indexed);
        let mut s = StepCounter::new();
        for n in 0..3 {
            lin.configure_slot(NodeId(n), ConfigId(0), &mut s).unwrap();
            idx.configure_slot(NodeId(n), ConfigId(0), &mut s).unwrap();
        }
        let wl = lin.find_worst_idle(ConfigId(0), &mut s).unwrap();
        let wi = idx.find_worst_idle(ConfigId(0), &mut s).unwrap();
        assert_eq!(wl, wi);
        assert_eq!(wl.node, NodeId(2), "head of the LIFO list wins ties");
        let bl = lin.find_best_idle(ConfigId(0), &mut s).unwrap();
        let bi = idx.find_best_idle(ConfigId(0), &mut s).unwrap();
        assert_eq!(bl, bi);
        assert_eq!(bl.node, NodeId(2));
    }

    #[test]
    fn rebuild_on_reselect_restores_a_consistent_index() {
        // Simulates the checkpoint-resume path: mutate under Linear
        // (as a deserialized store would be), then select Indexed and
        // verify the rebuilt index is immediately consistent.
        let mut rm = make(&[(0, 400), (1, 600)], &[2000, 1500]);
        let mut s = StepCounter::new();
        let e = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.configure_slot(NodeId(1), ConfigId(1), &mut s).unwrap();
        rm.assign_task(e, TaskId(1), &mut s).unwrap();
        assert_eq!(rm.search_index_snapshot(), None);
        rm.set_search_backend(SearchBackend::Indexed);
        assert_eq!(rm.search_backend(), SearchBackend::Indexed);
        rm.check_invariants().unwrap();
        assert_eq!(
            rm.search_index_snapshot(),
            Some(rm.rebuilt_index_snapshot())
        );
    }

    #[test]
    fn auto_backend_is_resolved_before_it_is_stored() {
        // Below the threshold auto selects linear (no index to keep in
        // sync); the stored backend is always concrete, never `Auto`.
        let mut rm = make(&[(0, 400), (1, 600)], &[2000, 1500]);
        rm.set_search_backend(SearchBackend::Auto);
        assert_eq!(rm.search_backend(), SearchBackend::Linear);
        assert_eq!(rm.search_index_snapshot(), None);
        // A store at/above AUTO_INDEXED_MIN_NODES resolves to indexed
        // and builds a consistent index on selection.
        let areas: Vec<u64> = (0..crate::AUTO_INDEXED_MIN_NODES as u64)
            .map(|i| 1000 + i)
            .collect();
        let mut big = make(&[(0, 400)], &areas);
        big.set_search_backend(SearchBackend::Auto);
        assert_eq!(big.search_backend(), SearchBackend::Indexed);
        big.check_invariants().unwrap();
        assert_eq!(
            big.search_index_snapshot(),
            Some(big.rebuilt_index_snapshot())
        );
    }

    #[test]
    fn invariant_checker_catches_corruption() {
        let mut rm = make(&[(0, 400)], &[1000]);
        let mut s = StepCounter::new();
        let e = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.check_invariants().unwrap();
        // Corrupt: mark the slot busy without moving lists.
        rm.nodes.add_task(0, e.slot, TaskId(9)).unwrap();
        assert!(rm.check_invariants().is_err());
    }

    #[test]
    fn mutation_ops_counter_is_deterministic() {
        let mut rm = make(&[(0, 400)], &[1000]);
        let mut s = StepCounter::new();
        assert_eq!(rm.mutation_ops(), 0);
        let e = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.assign_task(e, TaskId(1), &mut s).unwrap();
        rm.release_task(e, &mut s).unwrap();
        rm.evict_idle_slots(NodeId(0), &[e.slot], &mut s).unwrap();
        assert_eq!(rm.mutation_ops(), 4);
        // The counter never serializes: a clone round-tripped through
        // JSON restarts at zero (REBUILD note on the field).
        let json = serde_json::to_string(&rm).unwrap();
        let back: ResourceManager = serde_json::from_str(&json).unwrap();
        assert_eq!(back.mutation_ops(), 0);
    }
}
