//! Property tests for the resource-management substrate: arbitrary
//! operation sequences must never violate the structural invariants
//! (Eq. 4 area accounting, idle/busy list partition, no leaks).

use dreamsim_model::{
    Config, ConfigId, Demand, EntryRef, Node, NodeId, ResourceManager, SearchBackend, StepCounter,
    TaskId,
};
use proptest::prelude::*;

/// An abstract operation to apply to the store.
#[derive(Clone, Debug)]
enum Op {
    /// Configure config `c % configs` on node `n % nodes` (may fail for
    /// lack of area; failure must be a clean no-op).
    Configure { n: usize, c: usize },
    /// Assign a fresh task to the `k`-th currently idle entry, if any.
    Assign { k: usize },
    /// Release the `k`-th currently busy entry, if any.
    Release { k: usize },
    /// Evict the `k`-th currently idle entry, if any.
    Evict { k: usize },
    /// Fail node `n % nodes`.
    Fail { n: usize },
    /// Repair node `n % nodes`.
    Repair { n: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..64, 0usize..64).prop_map(|(n, c)| Op::Configure { n, c }),
        3 => (0usize..64).prop_map(|k| Op::Assign { k }),
        3 => (0usize..64).prop_map(|k| Op::Release { k }),
        2 => (0usize..64).prop_map(|k| Op::Evict { k }),
        1 => (0usize..64).prop_map(|n| Op::Fail { n }),
        1 => (0usize..64).prop_map(|n| Op::Repair { n }),
    ]
}

fn build(nodes: usize, configs: usize) -> ResourceManager {
    let configs: Vec<Config> = (0..configs)
        .map(|i| Config::new(ConfigId::from_index(i), 100 + (i as u64 * 211) % 900, 10))
        .collect();
    let nodes: Vec<Node> = (0..nodes)
        .map(|i| Node::new(NodeId::from_index(i), 500 + (i as u64 * 307) % 2500, 1))
        .collect();
    ResourceManager::new(nodes, configs)
}

fn idle_entries(rm: &ResourceManager) -> Vec<EntryRef> {
    rm.nodes()
        .iter()
        .flat_map(|n| {
            n.slots()
                .filter(|(_, s)| s.task.is_none())
                .map(move |(i, _)| EntryRef::new(n.id, i))
        })
        .collect()
}

fn busy_entries(rm: &ResourceManager) -> Vec<EntryRef> {
    rm.nodes()
        .iter()
        .flat_map(|n| {
            n.slots()
                .filter(|(_, s)| s.task.is_some())
                .map(move |(i, _)| EntryRef::new(n.id, i))
        })
        .collect()
}

/// Apply one abstract op to a store. Both stores in the differential
/// test receive the identical sequence, so index-based entry picks
/// resolve to the same slots on each side.
fn apply(
    rm: &mut ResourceManager,
    op: &Op,
    steps: &mut StepCounter,
    next_task: &mut u32,
    nodes: usize,
    configs: usize,
) {
    match *op {
        Op::Configure { n, c } => {
            let node = NodeId::from_index(n % nodes);
            let config = ConfigId::from_index(c % configs);
            if !rm.node(node).down {
                let _ = rm.configure_slot(node, config, steps);
            }
        }
        Op::Assign { k } => {
            let idle = idle_entries(rm);
            if !idle.is_empty() {
                rm.assign_task(idle[k % idle.len()], TaskId(*next_task), steps)
                    .unwrap();
                *next_task += 1;
            }
        }
        Op::Release { k } => {
            let busy = busy_entries(rm);
            if !busy.is_empty() {
                rm.release_task(busy[k % busy.len()], steps).unwrap();
            }
        }
        Op::Evict { k } => {
            let idle = idle_entries(rm);
            if !idle.is_empty() {
                let e = idle[k % idle.len()];
                rm.evict_idle_slots(e.node, &[e.slot], steps).unwrap();
            }
        }
        Op::Fail { n } => {
            let _ = rm.fail_node(NodeId::from_index(n % nodes), steps);
        }
        Op::Repair { n } => {
            rm.repair_node(NodeId::from_index(n % nodes));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariants_survive_arbitrary_op_sequences(
        nodes in 1usize..12,
        configs in 1usize..8,
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        let mut rm = build(nodes, configs);
        let mut steps = StepCounter::new();
        let mut next_task = 0u32;
        for op in ops {
            match op {
                Op::Configure { n, c } => {
                    let node = NodeId::from_index(n % nodes);
                    let config = ConfigId::from_index(c % configs);
                    if !rm.node(node).down {
                        let _ = rm.configure_slot(node, config, &mut steps);
                    }
                }
                Op::Assign { k } => {
                    let idle = idle_entries(&rm);
                    if !idle.is_empty() {
                        let e = idle[k % idle.len()];
                        rm.assign_task(e, TaskId(next_task), &mut steps).unwrap();
                        next_task += 1;
                    }
                }
                Op::Release { k } => {
                    let busy = busy_entries(&rm);
                    if !busy.is_empty() {
                        let e = busy[k % busy.len()];
                        rm.release_task(e, &mut steps).unwrap();
                    }
                }
                Op::Evict { k } => {
                    let idle = idle_entries(&rm);
                    if !idle.is_empty() {
                        let e = idle[k % idle.len()];
                        rm.evict_idle_slots(e.node, &[e.slot], &mut steps).unwrap();
                    }
                }
                Op::Fail { n } => {
                    let node = NodeId::from_index(n % nodes);
                    let _ = rm.fail_node(node, &mut steps);
                }
                Op::Repair { n } => {
                    rm.repair_node(NodeId::from_index(n % nodes));
                }
            }
            if let Err(e) = rm.check_invariants() {
                prop_assert!(false, "invariant violated after {op:?}: {e}");
            }
        }
    }

    /// Failed configure (insufficient area) must leave everything
    /// untouched, including the reconfiguration counter.
    #[test]
    fn failed_configure_is_a_clean_noop(extra in 1u64..10_000) {
        let configs = vec![Config::new(ConfigId(0), 1_000 + extra, 10)];
        let nodes = vec![Node::new(NodeId(0), 1_000, 1)];
        let mut rm = ResourceManager::new(nodes, configs);
        let mut steps = StepCounter::new();
        let before_steps = steps;
        let r = rm.configure_slot(NodeId(0), ConfigId(0), &mut steps);
        prop_assert!(r.is_err());
        prop_assert_eq!(rm.node(NodeId(0)).reconfig_count, 0);
        prop_assert_eq!(rm.node(NodeId(0)).available_area(), 1_000);
        prop_assert_eq!(steps.housekeeping, before_steps.housekeeping);
        rm.check_invariants().unwrap();
    }

    /// Search results agree between the list-based and naive paths on
    /// arbitrary store states (same node; ties may differ in slot).
    #[test]
    fn naive_and_list_search_agree(
        nodes in 1usize..10,
        configs in 1usize..6,
        ops in prop::collection::vec(arb_op(), 0..60),
        probe in 0usize..6,
    ) {
        let mut rm = build(nodes, configs);
        let mut steps = StepCounter::new();
        let mut next_task = 0u32;
        for op in ops {
            match op {
                Op::Configure { n, c } => {
                    let node = NodeId::from_index(n % nodes);
                    if !rm.node(node).down {
                        let _ = rm.configure_slot(node, ConfigId::from_index(c % configs), &mut steps);
                    }
                }
                Op::Assign { k } => {
                    let idle = idle_entries(&rm);
                    if !idle.is_empty() {
                        rm.assign_task(idle[k % idle.len()], TaskId(next_task), &mut steps).unwrap();
                        next_task += 1;
                    }
                }
                _ => {}
            }
        }
        let config = ConfigId::from_index(probe % configs);
        let via_list = rm.find_best_idle(config, &mut steps);
        let via_scan = dreamsim_model::naive::find_best_idle_naive(&rm, config, &mut steps);
        match (via_list, via_scan) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(
                    rm.node(a.node).available_area(),
                    rm.node(b.node).available_area(),
                    "best-fit quality must agree"
                );
            }
            other => prop_assert!(false, "presence disagrees: {other:?}"),
        }
    }

    /// The incremental index equals a from-scratch rebuild after every
    /// single mutation, every query answers exactly like the linear
    /// walk, and both backends charge identical model step counts.
    #[test]
    fn indexed_backend_tracks_linear_through_arbitrary_ops(
        nodes in 1usize..12,
        configs in 1usize..8,
        ops in prop::collection::vec(arb_op(), 1..120),
        probe_cfg in 0usize..8,
        probe_area in 1u64..4_000,
    ) {
        let mut lin = build(nodes, configs);
        let mut idx = build(nodes, configs);
        idx.set_search_backend(SearchBackend::Indexed);
        let mut lin_steps = StepCounter::new();
        let mut idx_steps = StepCounter::new();
        let mut lin_task = 0u32;
        let mut idx_task = 0u32;
        let probe = ConfigId::from_index(probe_cfg % configs);
        let demand = Demand::area(probe_area);
        for op in &ops {
            apply(&mut lin, op, &mut lin_steps, &mut lin_task, nodes, configs);
            apply(&mut idx, op, &mut idx_steps, &mut idx_task, nodes, configs);
            // Structural health first: list/area invariants on both
            // sides, and the live index vs a from-scratch rebuild
            // (membership *and* tie-break order, via IndexSnapshot).
            if let Err(e) = lin.check_invariants() {
                prop_assert!(false, "linear invariant after {op:?}: {e}");
            }
            if let Err(e) = idx.check_invariants() {
                prop_assert!(false, "indexed invariant after {op:?}: {e}");
            }
            let live = idx.search_index_snapshot();
            let rebuilt = idx.rebuilt_index_snapshot();
            prop_assert_eq!(live, Some(rebuilt), "index != rebuild after {:?}", op);
            // Every search path answers identically and charges the
            // same model steps.
            prop_assert_eq!(
                lin.find_closest_config(probe_area, &mut lin_steps),
                idx.find_closest_config(probe_area, &mut idx_steps)
            );
            prop_assert_eq!(
                lin.find_best_idle(probe, &mut lin_steps),
                idx.find_best_idle(probe, &mut idx_steps)
            );
            prop_assert_eq!(
                lin.find_worst_idle(probe, &mut lin_steps),
                idx.find_worst_idle(probe, &mut idx_steps)
            );
            prop_assert_eq!(
                lin.find_first_idle(probe, &mut lin_steps),
                idx.find_first_idle(probe, &mut idx_steps)
            );
            prop_assert_eq!(
                lin.find_best_blank(demand, &mut lin_steps),
                idx.find_best_blank(demand, &mut idx_steps)
            );
            prop_assert_eq!(
                lin.find_best_partially_blank(demand, &mut lin_steps),
                idx.find_best_partially_blank(demand, &mut idx_steps)
            );
            prop_assert_eq!(
                lin.busy_candidate_exists(demand, &mut lin_steps),
                idx.busy_candidate_exists(demand, &mut idx_steps)
            );
            prop_assert_eq!(lin_steps.scheduling, idx_steps.scheduling,
                "scheduling steps diverged after {:?}", op);
            prop_assert_eq!(lin_steps.housekeeping, idx_steps.housekeeping,
                "housekeeping steps diverged after {:?}", op);
        }
    }

    /// Eq. 6 snapshot equals the hand-computed sum on arbitrary states.
    #[test]
    fn wasted_area_snapshot_matches_definition(
        nodes in 1usize..10,
        configs in 1usize..6,
        ops in prop::collection::vec(arb_op(), 0..80),
    ) {
        let mut rm = build(nodes, configs);
        let mut steps = StepCounter::new();
        let mut next_task = 0u32;
        for op in ops {
            match op {
                Op::Configure { n, c } => {
                    let node = NodeId::from_index(n % nodes);
                    if !rm.node(node).down {
                        let _ = rm.configure_slot(node, ConfigId::from_index(c % configs), &mut steps);
                    }
                }
                Op::Assign { k } => {
                    let idle = idle_entries(&rm);
                    if !idle.is_empty() {
                        rm.assign_task(idle[k % idle.len()], TaskId(next_task), &mut steps).unwrap();
                        next_task += 1;
                    }
                }
                Op::Evict { k } => {
                    let idle = idle_entries(&rm);
                    if !idle.is_empty() {
                        let e = idle[k % idle.len()];
                        rm.evict_idle_slots(e.node, &[e.slot], &mut steps).unwrap();
                    }
                }
                _ => {}
            }
        }
        let expected: u64 = rm
            .nodes()
            .iter()
            .filter(|n| !n.is_blank())
            .map(|n| n.available_area())
            .sum();
        prop_assert_eq!(rm.wasted_area_snapshot(), expected);
    }
}
