//! Engine-level integration tests with scripted sources and policies:
//! exact timing semantics (Eq. 8), failure-injection bookkeeping, and
//! observer event ordering.

use dreamsim_engine::sim::{
    Decision, DiscardReason, Placement, Resume, SchedCtx, SchedulePolicy, SourceYield, TaskSource,
    TaskSpec,
};
use dreamsim_engine::{Observer, PhaseKind, ReconfigMode, SimParams, Simulation};
use dreamsim_model::{ConfigId, EntryRef, PreferredConfig, Task, TaskId, TaskState, Ticks};
use dreamsim_rng::Rng;

/// Scripted source yielding a fixed list of specs.
struct Script(Vec<TaskSpec>, usize);

impl Script {
    fn new(specs: Vec<TaskSpec>) -> Self {
        Self(specs, 0)
    }
}

impl TaskSource for Script {
    fn next_task(&mut self, _now: Ticks, _rng: &mut Rng) -> SourceYield {
        match self.0.get(self.1) {
            Some(&s) => {
                self.1 += 1;
                SourceYield::Task(s)
            }
            None => SourceYield::Exhausted,
        }
    }
}

fn spec(interarrival: Ticks, required_time: Ticks) -> TaskSpec {
    TaskSpec {
        interarrival,
        required_time,
        preferred: PreferredConfig::Known(ConfigId(0)),
        needed_area: 0,
        data_bytes: 0,
    }
}

/// Policy that always configures node 0 and reports a fixed config time.
struct PinToNodeZero;

impl SchedulePolicy for PinToNodeZero {
    fn name(&self) -> &'static str {
        "pin-to-zero"
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Decision {
        let config = ConfigId(0);
        let ct = ctx.resources.config(config).config_time;
        match ctx
            .resources
            .configure_slot(dreamsim_model::NodeId(0), config, ctx.steps)
        {
            Ok(entry) => {
                ctx.resources.assign_task(entry, task, ctx.steps).unwrap();
                Decision::Placed(Placement {
                    task,
                    entry,
                    config,
                    config_time: ct,
                    phase: PhaseKind::Configuration,
                })
            }
            Err(_) => Decision::Discarded(DiscardReason::NoFeasibleNode),
        }
    }

    fn on_slot_freed(&mut self, _ctx: &mut SchedCtx<'_>, _freed: EntryRef) -> Vec<Resume> {
        Vec::new()
    }
}

fn one_node_params() -> SimParams {
    let mut p = SimParams::paper(1, 1, ReconfigMode::Partial);
    p.seed = 1;
    // Pin the random ranges so timing is fully predictable.
    p.node_area = dreamsim_engine::params::Range::new(10_000, 10_000);
    p.config_area = dreamsim_engine::params::Range::new(100, 100);
    p.config_time = dreamsim_engine::params::Range::new(10, 10);
    p.network_delay = dreamsim_engine::params::Range::new(3, 3);
    p
}

#[test]
fn eq8_waiting_time_is_exactly_comm_plus_config_for_immediate_placement() {
    let p = one_node_params();
    let result = Simulation::new(p, Script::new(vec![spec(5, 1_000)]), PinToNodeZero)
        .unwrap()
        .run();
    let t = &result.tasks[0];
    assert_eq!(t.create_time, 5);
    assert_eq!(t.start_time, Some(5), "placed at arrival");
    // completion = start + config(10) + comm(3) + required(1000).
    assert_eq!(t.completion_time, Some(5 + 10 + 3 + 1_000));
    // Eq. 8: twait = (start − create) + comm + config = 0 + 3 + 10.
    assert!((result.metrics.avg_waiting_time_per_task - 13.0).abs() < 1e-12);
    // Eq. 5: total simulation time = last event time.
    assert_eq!(result.metrics.total_simulation_time, 1_018);
    // Residence = wait + required.
    assert!((result.metrics.avg_running_time_per_task - 1_013.0).abs() < 1e-12);
}

#[test]
fn multiple_tasks_pack_onto_partial_node_in_parallel() {
    let mut p = one_node_params();
    p.total_tasks = 3;
    let result = Simulation::new(
        p,
        Script::new(vec![spec(1, 100), spec(1, 100), spec(1, 100)]),
        PinToNodeZero,
    )
    .unwrap()
    .run();
    assert_eq!(result.metrics.total_tasks_completed, 3);
    // All three overlap: makespan well under 3 × (100 + overheads).
    let last = result
        .tasks
        .iter()
        .filter_map(|t| t.completion_time)
        .max()
        .unwrap();
    assert!(last < 200, "tasks must run concurrently, makespan {last}");
}

/// Observer that records the event sequence.
#[derive(Default)]
struct EventLog(std::rc::Rc<std::cell::RefCell<Vec<String>>>);

impl Observer for EventLog {
    fn on_arrival(&mut self, now: Ticks, task: &Task) {
        self.0
            .borrow_mut()
            .push(format!("arrive {} @{now}", task.id.0));
    }
    fn on_placement(&mut self, now: Ticks, task: &Task, _p: &Placement) {
        self.0
            .borrow_mut()
            .push(format!("place {} @{now}", task.id.0));
    }
    fn on_completion(&mut self, now: Ticks, task: &Task) {
        self.0
            .borrow_mut()
            .push(format!("done {} @{now}", task.id.0));
    }
}

#[test]
fn observer_sees_arrive_place_done_in_causal_order() {
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let p = one_node_params();
    let _ = Simulation::new(p, Script::new(vec![spec(2, 50)]), PinToNodeZero)
        .unwrap()
        .with_observer(Box::new(EventLog(log.clone())))
        .run();
    let events = log.borrow();
    assert_eq!(
        *events,
        vec![
            "arrive 0 @2".to_string(),
            "place 0 @2".to_string(),
            "done 0 @65".to_string(), // 2 + 10 + 3 + 50
        ]
    );
}

#[test]
fn failure_metrics_accounted() {
    let mut p = SimParams::paper(4, 40, ReconfigMode::Partial);
    p.seed = 12;
    p.node_mtbf = Some(200);
    p.node_mttr = 100;
    p.task_time = dreamsim_engine::params::Range::new(100, 2_000);
    let source = {
        let specs = (0..40).map(|_| spec(5, 500)).collect();
        Script::new(specs)
    };
    use dreamsim_sched::CaseStudyScheduler;
    let result = Simulation::new(p, source, CaseStudyScheduler::new())
        .unwrap()
        .run();
    let m = &result.metrics;
    assert!(m.node_failures > 0);
    assert_eq!(m.total_tasks_completed + m.total_discarded_tasks, 40);
    assert!(m.failure_killed <= m.total_discarded_tasks);
    // Killed tasks are terminal-discarded with no completion time.
    let killed_or_drained = result
        .tasks
        .iter()
        .filter(|t| t.state == TaskState::Discarded)
        .count() as u64;
    assert_eq!(killed_or_drained, m.total_discarded_tasks);
}
