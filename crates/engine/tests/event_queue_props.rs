//! Property tests for the event-queue backends: arbitrary event
//! batches — heavy on timestamp ties and interleaved pops — must pop in
//! identical `(time, seq)` order from the `Heap` and `Calendar`
//! backends, and mid-stream checkpoints taken from either backend must
//! serialize to identical bytes.

use dreamsim_engine::{Event, EventQueue, EventQueueBackend};
use dreamsim_model::{TaskId, Ticks};
use proptest::prelude::*;

/// One abstract queue operation. Pushes dominate so queues grow deep
/// enough to exercise calendar resizes; explicit `tie` pushes reuse the
/// previous timestamp so `(time, seq)` tiebreaking is always under test.
#[derive(Clone, Debug)]
enum Op {
    /// Push at `base + offset` (clustered around the running clock).
    Push { offset: u64 },
    /// Push at exactly the previous push's timestamp (a guaranteed tie).
    PushTie,
    /// Push far in the future (sparse-span outlier; stresses bucket
    /// wraparound and the calendar's sparse fallback scan).
    PushFar { offset: u64 },
    /// Pop the earliest event from both queues and compare.
    Pop,
    /// Pop only events due at the current clock (the tick-driver probe).
    PopDue { advance: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..200).prop_map(|offset| Op::Push { offset }),
        2 => Just(Op::PushTie),
        1 => (0u64..1_000_000).prop_map(|offset| Op::PushFar { offset }),
        3 => Just(Op::Pop),
        2 => (0u64..50).prop_map(|advance| Op::PopDue { advance }),
    ]
}

/// Distinct payloads per push so a mis-ordered pop cannot hide behind
/// identical events.
fn payload(i: u32) -> Event {
    Event::TaskArrival { task: TaskId(i) }
}

fn snapshot(q: &EventQueue) -> String {
    serde_json::to_string(q).expect("event queue serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_and_calendar_pop_identically_with_mid_stream_checkpoints(
        ops in prop::collection::vec(arb_op(), 1..300),
    ) {
        let mut heap = EventQueue::new();
        let mut cal = EventQueue::new();
        cal.set_backend(EventQueueBackend::Calendar);
        let mut clock: Ticks = 0;
        let mut last_time: Ticks = 0;
        let mut next_id = 0u32;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Push { offset } => {
                    last_time = clock + offset;
                    heap.push(last_time, payload(next_id));
                    cal.push(last_time, payload(next_id));
                    next_id += 1;
                }
                Op::PushTie => {
                    heap.push(last_time, payload(next_id));
                    cal.push(last_time, payload(next_id));
                    next_id += 1;
                }
                Op::PushFar { offset } => {
                    last_time = clock + 1_000_000 + offset;
                    heap.push(last_time, payload(next_id));
                    cal.push(last_time, payload(next_id));
                    next_id += 1;
                }
                Op::Pop => {
                    let h = heap.pop();
                    prop_assert_eq!(h, cal.pop());
                    if let Some((t, _)) = h {
                        clock = clock.max(t);
                    }
                }
                Op::PopDue { advance } => {
                    clock += advance;
                    prop_assert_eq!(heap.pop_due(clock), cal.pop_due(clock));
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
            prop_assert_eq!(heap.peek_time(), cal.peek_time());
            // Mid-stream checkpoint: both backends must serialize to the
            // same bytes at every intermediate state, not just at the end.
            if i % 17 == 0 {
                prop_assert_eq!(snapshot(&heap), snapshot(&cal));
            }
        }
        // Drain completely: the full residual pop sequences must match.
        prop_assert_eq!(snapshot(&heap), snapshot(&cal));
        while let Some(h) = heap.pop() {
            prop_assert_eq!(Some(h), cal.pop());
        }
        prop_assert!(cal.is_empty());
    }

    #[test]
    fn checkpoint_round_trip_preserves_pop_order_for_both_backends(
        times in prop::collection::vec(0u64..100_000, 1..200),
        backend_calendar in prop::bool::ANY,
    ) {
        let backend = if backend_calendar {
            EventQueueBackend::Calendar
        } else {
            EventQueueBackend::Heap
        };
        let mut q = EventQueue::new();
        q.set_backend(backend);
        for (i, &t) in times.iter().enumerate() {
            q.push(t, payload(i as u32));
        }
        let bytes = snapshot(&q);
        // Deserialization restores the heap representation; the restored
        // queue must pop the identical sequence regardless of the
        // backend that produced the snapshot.
        let mut restored: EventQueue = serde_json::from_str(&bytes).expect("round-trip");
        prop_assert_eq!(restored.backend(), EventQueueBackend::Heap);
        prop_assert_eq!(restored.len(), q.len());
        while let Some(orig) = q.pop() {
            prop_assert_eq!(Some(orig), restored.pop());
        }
        prop_assert!(restored.is_empty());
    }
}
