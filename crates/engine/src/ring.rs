//! Rolling checkpoint ring for the open-system service driver.
//!
//! A ring is a directory of periodic checkpoints named
//! `checkpoint-<clock:012>.dsc` with **bounded retention**: after every
//! successful write the oldest entries beyond the retention budget are
//! pruned. Writes go through [`crate::checkpoint::write_checkpoint`]'s
//! atomic tmp-then-rename path, so a crash mid-write never leaves a
//! half-written `.dsc` file — at worst an orphaned `.tmp`, which scans
//! ignore.
//!
//! ## Determinism
//!
//! Directory iteration order is filesystem-specific, so every scan
//! sorts entries by path before acting on them (the determinism-lint r2
//! spirit applied to the filesystem): recovery picks the same snapshot
//! and pruning deletes the same files on any filesystem. Entry names
//! zero-pad the clock to 12 digits, making the path order the clock
//! order.
//!
//! ## Safety invariant
//!
//! Pruning runs only immediately after a successful write and removes
//! only the *oldest* entries beyond retention (retention is at least
//! one), so the newest — just written and fsynced — snapshot is never
//! deleted. Combined with atomic writes, a valid snapshot always
//! survives a crash at any instant.

use crate::checkpoint::{self, Checkpoint, CheckpointError};
use std::path::{Path, PathBuf};

/// A checkpoint directory with bounded retention.
#[derive(Clone, Debug)]
pub struct CheckpointRing {
    dir: PathBuf,
    retain: usize,
}

/// One scanned ring entry: a well-formed `checkpoint-<clock>.dsc` file.
/// Scanning validates only the *name*; the payload is CRC-validated by
/// [`crate::checkpoint::read_checkpoint`] when the entry is loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingEntry {
    /// Full path of the entry.
    pub path: PathBuf,
    /// Simulation clock encoded in the file name.
    pub clock: u64,
}

/// Canonical ring file name for a snapshot taken at `clock`
/// (zero-padded so lexicographic path order equals clock order).
#[must_use]
pub fn entry_name(clock: u64) -> String {
    format!("checkpoint-{clock:012}.dsc")
}

/// Parse a ring file name back to its clock; `None` for foreign files,
/// orphaned `.tmp` files, and anything not exactly 12 digits wide.
fn entry_clock(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("checkpoint-")?.strip_suffix(".dsc")?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Scan a ring directory: collect every well-formed entry, **sorted by
/// path** so the result is identical regardless of the filesystem's
/// directory iteration order. A nonexistent directory scans as empty
/// (a service starting fresh); any other I/O failure is an error.
pub fn scan_ring(dir: &Path) -> Result<Vec<RingEntry>, CheckpointError> {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CheckpointError::Io(e)),
    };
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(CheckpointError::Io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(clock) = entry_clock(name) {
            out.push(RingEntry {
                path: entry.path(),
                clock,
            });
        }
    }
    // Path-sorted walk: read_dir order is filesystem-specific, and both
    // recovery and pruning must pick the same entries everywhere.
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

impl CheckpointRing {
    /// A ring rooted at `dir` retaining at least the newest `retain`
    /// snapshots (values below 1 are clamped to 1: the ring never
    /// deletes its only valid snapshot).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, retain: u64) -> Self {
        Self {
            dir: dir.into(),
            // BOUND: retain is a small CLI-supplied count; usize on all
            // supported targets holds any practical value.
            retain: retain.max(1) as usize,
        }
    }

    /// The ring's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot `cp` into the ring (atomic tmp-then-rename, fsynced),
    /// then prune entries beyond retention. Returns the entry path.
    pub fn write(&self, cp: &Checkpoint) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(&self.dir).map_err(CheckpointError::Io)?;
        let path = self.dir.join(entry_name(cp.clock()));
        checkpoint::write_checkpoint(&path, cp)?;
        self.prune()?;
        Ok(path)
    }

    /// Delete the oldest entries beyond retention (path-sorted, so the
    /// same files are removed on any filesystem). Runs after every
    /// successful [`write`](Self::write); because retention is at least
    /// one and only the oldest entries go, the newest snapshot — the
    /// one just written — is never deleted.
    pub fn prune(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        let entries = scan_ring(&self.dir)?;
        let mut removed = Vec::new();
        if entries.len() > self.retain {
            for e in &entries[..entries.len() - self.retain] {
                std::fs::remove_file(&e.path).map_err(CheckpointError::Io)?;
                removed.push(e.path.clone());
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dreamsim-ring-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn touch(dir: &Path, name: &str) {
        std::fs::write(dir.join(name), b"x").unwrap();
    }

    #[test]
    fn entry_names_parse_back_and_reject_foreign_files() {
        assert_eq!(entry_clock(&entry_name(0)), Some(0));
        assert_eq!(entry_clock(&entry_name(123_456)), Some(123_456));
        assert_eq!(entry_clock("checkpoint-000000000123.dsc"), Some(123));
        assert_eq!(entry_clock("checkpoint-123.dsc"), None);
        assert_eq!(entry_clock("checkpoint-000000000123.dsc.tmp"), None);
        assert_eq!(entry_clock("checkpoint-00000000012x.dsc"), None);
        assert_eq!(entry_clock("notes.txt"), None);
    }

    #[test]
    fn scan_is_path_sorted_over_shuffled_directory_entries() {
        let dir = temp_dir("shuffled");
        // Create entries in a deliberately scrambled order; the scan
        // must come back clock-ordered regardless of creation (and
        // therefore likely readdir) order.
        for clock in [7_000u64, 500, 99_000, 1_000, 42_000] {
            touch(&dir, &entry_name(clock));
        }
        touch(&dir, "checkpoint-000000000001.dsc.tmp");
        touch(&dir, "unrelated.log");
        let entries = scan_ring(&dir).unwrap();
        let clocks: Vec<u64> = entries.iter().map(|e| e.clock).collect();
        assert_eq!(clocks, vec![500, 1_000, 7_000, 42_000, 99_000]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_of_missing_directory_is_empty() {
        let dir = std::env::temp_dir().join(format!("dreamsim-ring-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(scan_ring(&dir).unwrap().is_empty());
    }

    #[test]
    fn prune_removes_only_the_oldest_beyond_retention() {
        let dir = temp_dir("prune");
        for clock in [100u64, 200, 300, 400, 500] {
            touch(&dir, &entry_name(clock));
        }
        touch(&dir, "unrelated.log");
        let ring = CheckpointRing::new(&dir, 2);
        let removed = ring.prune().unwrap();
        assert_eq!(removed.len(), 3);
        let left = scan_ring(&dir).unwrap();
        let clocks: Vec<u64> = left.iter().map(|e| e.clock).collect();
        assert_eq!(clocks, vec![400, 500], "newest entries survive");
        assert!(
            dir.join("unrelated.log").exists(),
            "foreign files untouched"
        );
        // Pruning again is a no-op.
        assert!(ring.prune().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_never_drops_below_one() {
        let dir = temp_dir("retain1");
        touch(&dir, &entry_name(900));
        let ring = CheckpointRing::new(&dir, 0);
        assert!(ring.prune().unwrap().is_empty());
        assert_eq!(scan_ring(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
