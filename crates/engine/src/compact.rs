//! Compact columnar encoding for the checkpoint task table.
//!
//! A checkpoint's dominant payload at scale is the task table: a million
//! tasks serialized as a JSON array of objects costs ~300 bytes each,
//! almost all of it repeated field names and base-10 digits. This module
//! re-encodes the table column-by-column into a byte stream — LEB128
//! varints, delta-coded timestamps, a palette for the preferred-config
//! column, and run-length-encoded states — then wraps it in base64 so it
//! still travels inside the JSON checkpoint payload. Typical cost drops
//! to a few bytes per task.
//!
//! The encoding is self-contained and versioned by the checkpoint header
//! (`FORMAT_VERSION` 2 writes this form; version-1 files carry the legacy
//! array and are still read). Decoding is defensive: every read is
//! bounds- and range-checked and returns an error instead of panicking,
//! because checkpoint bytes come from disk.
//!
//! Column order (after a leading task count):
//!
//! | # | column            | encoding                                        |
//! |---|-------------------|-------------------------------------------------|
//! | 1 | `required_time`   | varint per task                                 |
//! | 2 | `preferred`       | palette (tag+value pairs), then varint indices  |
//! | 3 | `needed_area`     | varint per task                                 |
//! | 4 | `data_bytes`      | varint per task                                 |
//! | 5 | `create_time`     | zigzag delta vs previous task                   |
//! | 6 | `start_time`      | 0 = `None`, else 1 + zigzag(start − create)     |
//! | 7 | `completion_time` | 0 = `None`, else 1 + zigzag(completion − start) |
//! | 8 | `assigned_config` | 0 = `None`, else id + 1                         |
//! | 9 | `resolved_config` | 0 = `None`, else id + 1                         |
//! |10 | `sus_retry`       | varint per task                                 |
//! |11 | `fault_retries`   | varint per task                                 |
//! |12 | `suspended_at`    | 0 = `None`, else 1 + zigzag(value − create)     |
//! |13 | `state`           | RLE pairs (state code, run length)              |
//!
//! Task ids are elided entirely: the table is dense, so `id == index`.

use dreamsim_model::{ConfigId, PreferredConfig, Task, TaskId, TaskState};

// ---------------------------------------------------------------------------
// varints
// ---------------------------------------------------------------------------

/// Append `v` as an LEB128 varint (7 payload bits per byte, little-endian).
fn put_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        // BOUND: masked to the low 7 bits before the cast.
        let mut byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if v == 0 {
            return;
        }
    }
}

/// Read one LEB128 varint from `buf` starting at `*pos`.
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u128, String> {
    let mut v: u128 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| format!("varint truncated at byte {}", *pos))?;
        *pos += 1;
        if shift >= 128 || (shift == 126 && (byte & 0x7f) > 0x03) {
            return Err(format!("varint overflow at byte {}", *pos - 1));
        }
        v |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Map a signed delta onto the unsigned varint domain (zigzag).
fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

/// Narrow a decoded varint to `u64`, with a column name for the error.
fn to_u64(v: u128, what: &str) -> Result<u64, String> {
    u64::try_from(v).map_err(|_| format!("{what}: value {v} exceeds u64"))
}

/// Narrow a decoded varint to `u32`, with a column name for the error.
fn to_u32(v: u128, what: &str) -> Result<u32, String> {
    u32::try_from(v).map_err(|_| format!("{what}: value {v} exceeds u32"))
}

/// Apply a zigzag delta to a base value, rejecting out-of-range results.
fn apply_delta(base: u64, delta: u128, what: &str) -> Result<u64, String> {
    let v = i128::from(base) + unzigzag(delta);
    u64::try_from(v).map_err(|_| format!("{what}: delta lands outside u64 ({v})"))
}

// ---------------------------------------------------------------------------
// column encoders
// ---------------------------------------------------------------------------

/// Encode an optional timestamp as `0 = None`, else `1 + zigzag(v − base)`.
fn put_opt_time(out: &mut Vec<u8>, value: Option<u64>, base: u64) {
    match value {
        None => put_varint(out, 0),
        Some(v) => put_varint(out, 1 + zigzag(i128::from(v) - i128::from(base))),
    }
}

/// Decode the counterpart of [`put_opt_time`].
fn get_opt_time(
    buf: &[u8],
    pos: &mut usize,
    base: u64,
    what: &str,
) -> Result<Option<u64>, String> {
    let raw = get_varint(buf, pos)?;
    if raw == 0 {
        return Ok(None);
    }
    apply_delta(base, raw - 1, what).map(Some)
}

/// State codes for the RLE column.
fn state_code(state: TaskState) -> u128 {
    match state {
        TaskState::Created => 0,
        TaskState::Suspended => 1,
        TaskState::Running => 2,
        TaskState::Completed => 3,
        TaskState::Discarded => 4,
    }
}

/// Inverse of [`state_code`].
fn state_from_code(code: u128) -> Result<TaskState, String> {
    Ok(match code {
        0 => TaskState::Created,
        1 => TaskState::Suspended,
        2 => TaskState::Running,
        3 => TaskState::Completed,
        4 => TaskState::Discarded,
        other => return Err(format!("state column: unknown code {other}")),
    })
}

/// Palette key for a `preferred` entry: a (tag, value) pair.
fn preferred_key(p: PreferredConfig) -> (u128, u128) {
    match p {
        PreferredConfig::Known(id) => (0, u128::from(id.0)),
        PreferredConfig::Phantom { area } => (1, u128::from(area)),
    }
}

/// Rebuild a `preferred` entry from its palette key.
fn preferred_from_key(tag: u128, value: u128) -> Result<PreferredConfig, String> {
    match tag {
        0 => Ok(PreferredConfig::Known(ConfigId(to_u32(
            value,
            "preferred palette id",
        )?))),
        1 => Ok(PreferredConfig::Phantom {
            area: to_u64(value, "preferred palette area")?,
        }),
        other => Err(format!("preferred palette: unknown tag {other}")),
    }
}

// ---------------------------------------------------------------------------
// encode / decode
// ---------------------------------------------------------------------------

/// Encode a dense task table into the columnar byte stream.
///
/// The caller guarantees ids are dense (`task.id.index() == index`); the
/// table enforces that on `push`, so this only debug-asserts it.
#[must_use]
pub fn encode_tasks(tasks: &[Task]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tasks.len() * 8 + 16);
    put_varint(&mut out, tasks.len() as u128);

    for t in tasks {
        put_varint(&mut out, u128::from(t.required_time));
    }

    // Preferred-config palette: the distinct values (first-seen order),
    // then one palette index per task. Real workloads draw from a small
    // configuration list, so indices are almost always one byte.
    let mut palette: Vec<(u128, u128)> = Vec::new();
    let mut indices: Vec<usize> = Vec::with_capacity(tasks.len());
    for t in tasks {
        let key = preferred_key(t.preferred);
        let idx = palette.iter().position(|&k| k == key).unwrap_or_else(|| {
            palette.push(key);
            palette.len() - 1
        });
        indices.push(idx);
    }
    put_varint(&mut out, palette.len() as u128);
    for (tag, value) in &palette {
        put_varint(&mut out, *tag);
        put_varint(&mut out, *value);
    }
    for idx in indices {
        put_varint(&mut out, idx as u128);
    }

    for t in tasks {
        put_varint(&mut out, u128::from(t.needed_area));
    }
    for t in tasks {
        put_varint(&mut out, u128::from(t.data_bytes));
    }

    // Arrival order makes create_time (near-)nondecreasing, so zigzag
    // deltas against the previous task are tiny.
    let mut prev_create = 0u64;
    for t in tasks {
        put_varint(
            &mut out,
            zigzag(i128::from(t.create_time) - i128::from(prev_create)),
        );
        prev_create = t.create_time;
    }

    for t in tasks {
        put_opt_time(&mut out, t.start_time, t.create_time);
    }
    for t in tasks {
        // Completion deltas against start (fall back to create) stay small
        // because completion = start + required_time for finished tasks.
        put_opt_time(
            &mut out,
            t.completion_time,
            t.start_time.unwrap_or(t.create_time),
        );
    }

    for t in tasks {
        match t.assigned_config {
            None => put_varint(&mut out, 0),
            Some(id) => put_varint(&mut out, 1 + u128::from(id.0)),
        }
    }
    for t in tasks {
        match t.resolved_config {
            None => put_varint(&mut out, 0),
            Some(id) => put_varint(&mut out, 1 + u128::from(id.0)),
        }
    }

    for t in tasks {
        put_varint(&mut out, u128::from(t.sus_retry));
    }
    for t in tasks {
        put_varint(&mut out, u128::from(t.fault_retries));
    }
    for t in tasks {
        put_opt_time(&mut out, t.suspended_at, t.create_time);
    }

    // State column as RLE (code, run-length) pairs. In a finished or
    // late-stage run almost every task is Completed, so the entire column
    // collapses to a couple of bytes — the "zero-run elision" that makes
    // million-task checkpoints cheap.
    let mut i = 0;
    while i < tasks.len() {
        let code = state_code(tasks[i].state);
        let mut run = 1usize;
        while i + run < tasks.len() && state_code(tasks[i + run].state) == code {
            run += 1;
        }
        put_varint(&mut out, code);
        put_varint(&mut out, run as u128);
        i += run;
    }

    out
}

/// Decode the byte stream produced by [`encode_tasks`].
///
/// Every read is checked; malformed input yields a descriptive error, not
/// a panic, because checkpoint payloads come from disk.
pub fn decode_tasks(buf: &[u8]) -> Result<Vec<Task>, String> {
    let mut pos = 0usize;
    let count = get_varint(buf, &mut pos)?;
    let count = usize::try_from(count).map_err(|_| format!("task count {count} too large"))?;
    // Cap pre-allocation by what the buffer could plausibly hold (each
    // task costs at least one byte per column) so a corrupt count cannot
    // balloon memory before the first truncation error fires.
    let mut tasks: Vec<Task> = Vec::with_capacity(count.min(buf.len()));

    let mut required = Vec::with_capacity(count.min(buf.len()));
    for _ in 0..count {
        required.push(to_u64(get_varint(buf, &mut pos)?, "required_time")?);
    }

    let palette_len = get_varint(buf, &mut pos)?;
    let palette_len =
        usize::try_from(palette_len).map_err(|_| format!("palette length {palette_len}"))?;
    let mut palette = Vec::with_capacity(palette_len.min(buf.len()));
    for _ in 0..palette_len {
        let tag = get_varint(buf, &mut pos)?;
        let value = get_varint(buf, &mut pos)?;
        palette.push(preferred_from_key(tag, value)?);
    }
    let mut preferred = Vec::with_capacity(count.min(buf.len()));
    for _ in 0..count {
        let idx = get_varint(buf, &mut pos)?;
        let idx = usize::try_from(idx).map_err(|_| format!("palette index {idx}"))?;
        preferred.push(
            *palette
                .get(idx)
                .ok_or_else(|| format!("palette index {idx} out of range {palette_len}"))?,
        );
    }

    let mut needed_area = Vec::with_capacity(count.min(buf.len()));
    for _ in 0..count {
        needed_area.push(to_u64(get_varint(buf, &mut pos)?, "needed_area")?);
    }
    let mut data_bytes = Vec::with_capacity(count.min(buf.len()));
    for _ in 0..count {
        data_bytes.push(to_u64(get_varint(buf, &mut pos)?, "data_bytes")?);
    }

    let mut create = Vec::with_capacity(count.min(buf.len()));
    let mut prev_create = 0u64;
    for _ in 0..count {
        let delta = get_varint(buf, &mut pos)?;
        prev_create = apply_delta(prev_create, delta, "create_time")?;
        create.push(prev_create);
    }

    let mut start = Vec::with_capacity(count.min(buf.len()));
    for &c in create.iter().take(count) {
        start.push(get_opt_time(buf, &mut pos, c, "start_time")?);
    }
    let mut completion = Vec::with_capacity(count.min(buf.len()));
    for i in 0..count {
        let base = start[i].unwrap_or(create[i]);
        completion.push(get_opt_time(buf, &mut pos, base, "completion_time")?);
    }

    let mut assigned = Vec::with_capacity(count.min(buf.len()));
    for _ in 0..count {
        let raw = get_varint(buf, &mut pos)?;
        assigned.push(if raw == 0 {
            None
        } else {
            Some(ConfigId(to_u32(raw - 1, "assigned_config")?))
        });
    }
    let mut resolved = Vec::with_capacity(count.min(buf.len()));
    for _ in 0..count {
        let raw = get_varint(buf, &mut pos)?;
        resolved.push(if raw == 0 {
            None
        } else {
            Some(ConfigId(to_u32(raw - 1, "resolved_config")?))
        });
    }

    let mut sus_retry = Vec::with_capacity(count.min(buf.len()));
    for _ in 0..count {
        sus_retry.push(to_u64(get_varint(buf, &mut pos)?, "sus_retry")?);
    }
    let mut fault_retries = Vec::with_capacity(count.min(buf.len()));
    for _ in 0..count {
        fault_retries.push(to_u32(get_varint(buf, &mut pos)?, "fault_retries")?);
    }
    let mut suspended_at = Vec::with_capacity(count.min(buf.len()));
    for &c in create.iter().take(count) {
        suspended_at.push(get_opt_time(buf, &mut pos, c, "suspended_at")?);
    }

    let mut states = Vec::with_capacity(count.min(buf.len()));
    while states.len() < count {
        let code = get_varint(buf, &mut pos)?;
        let state = state_from_code(code)?;
        let run = get_varint(buf, &mut pos)?;
        let run = usize::try_from(run).map_err(|_| format!("state run length {run}"))?;
        if run == 0 || states.len() + run > count {
            return Err(format!(
                "state column: run of {run} at {} overflows count {count}",
                states.len()
            ));
        }
        states.extend(std::iter::repeat_n(state, run));
    }

    if pos != buf.len() {
        return Err(format!(
            "trailing garbage: {} bytes after the state column",
            buf.len() - pos
        ));
    }

    for i in 0..count {
        tasks.push(Task {
            id: TaskId::from_index(i),
            required_time: required[i],
            preferred: preferred[i],
            needed_area: needed_area[i],
            data_bytes: data_bytes[i],
            create_time: create[i],
            start_time: start[i],
            completion_time: completion[i],
            assigned_config: assigned[i],
            resolved_config: resolved[i],
            sus_retry: sus_retry[i],
            fault_retries: fault_retries[i],
            suspended_at: suspended_at[i],
            state: states[i],
        });
    }
    Ok(tasks)
}

// ---------------------------------------------------------------------------
// base64
// ---------------------------------------------------------------------------

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with `=` padding (RFC 4648), hand-rolled because the
/// build is offline and the payload must live inside a JSON string.
#[must_use]
pub fn to_base64(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = u32::from(chunk[0]);
        let b1 = chunk.get(1).copied().map_or(0, u32::from);
        let b2 = chunk.get(2).copied().map_or(0, u32::from);
        let triple = (b0 << 16) | (b1 << 8) | b2;
        // BOUND: each index is a 6-bit slice of the triple.
        out.push(B64_ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        // BOUND: masked to 6 bits.
        out.push(B64_ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            // BOUND: masked to 6 bits.
            out.push(B64_ALPHABET[(triple >> 6) as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            // BOUND: masked to 6 bits.
            out.push(B64_ALPHABET[triple as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
    }
    out
}

/// Decode the output of [`to_base64`]; rejects anything malformed.
pub fn from_base64(s: &str) -> Result<Vec<u8>, String> {
    fn value_of(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            other => Err(format!("base64: invalid byte 0x{other:02x}")),
        }
    }

    let raw = s.as_bytes();
    if raw.len() % 4 != 0 {
        return Err(format!("base64: length {} not a multiple of 4", raw.len()));
    }
    let mut out = Vec::with_capacity(raw.len() / 4 * 3);
    for (i, chunk) in raw.chunks(4).enumerate() {
        let last = i == raw.len() / 4 - 1;
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 0 && (!last || pad > 2 || chunk[..4 - pad].contains(&b'=')) {
            return Err("base64: misplaced padding".to_string());
        }
        let mut triple = 0u32;
        for &c in &chunk[..4 - pad] {
            triple = (triple << 6) | value_of(c)?;
        }
        // BOUND: pad <= 2, far below u32.
        triple <<= 6 * pad as u32;
        // BOUND: each push takes one byte slice of the 24-bit triple.
        out.push((triple >> 16) as u8);
        if pad < 2 {
            // BOUND: one byte slice of the 24-bit triple.
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            // BOUND: one byte slice of the 24-bit triple.
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_task(i: usize) -> Task {
        let completed = i % 3 == 0;
        Task {
            id: TaskId::from_index(i),
            required_time: 40 + (i as u64 % 17),
            preferred: if i % 5 == 0 {
                PreferredConfig::Phantom {
                    area: 30 + (i as u64 % 7),
                }
            } else {
                // BOUND: test ids stay below u32::MAX.
                PreferredConfig::Known(ConfigId((i % 4) as u32))
            },
            needed_area: 25 + (i as u64 % 9),
            data_bytes: 1024 * (i as u64 % 31),
            create_time: 10 * i as u64,
            start_time: completed.then(|| 10 * i as u64 + 3),
            completion_time: completed.then(|| 10 * i as u64 + 50),
            assigned_config: completed.then(|| ConfigId((i % 4) as u32)),
            resolved_config: (i % 2 == 0).then(|| ConfigId((i % 4) as u32)),
            sus_retry: (i % 6) as u64,
            fault_retries: (i % 3) as u32,
            suspended_at: (i % 7 == 1).then(|| 10 * i as u64 + 1),
            state: if completed {
                TaskState::Completed
            } else if i % 7 == 1 {
                TaskState::Suspended
            } else {
                TaskState::Created
            },
        }
    }

    #[test]
    fn round_trips_mixed_states() {
        let tasks: Vec<Task> = (0..257).map(sample_task).collect();
        let bytes = encode_tasks(&tasks);
        let back = decode_tasks(&bytes).expect("decode"); // INVARIANT: test asserts on decode success.
        assert_eq!(tasks, back);
    }

    #[test]
    fn round_trips_empty_table() {
        let bytes = encode_tasks(&[]);
        assert_eq!(decode_tasks(&bytes).unwrap(), Vec::<Task>::new()); // INVARIANT: test asserts on decode success.
    }

    #[test]
    fn completed_runs_collapse() {
        // An all-Completed table must spend O(1) bytes on the state column.
        let mut tasks: Vec<Task> = (0..10_000).map(sample_task).collect();
        for t in &mut tasks {
            t.state = TaskState::Completed;
        }
        let baseline = encode_tasks(&tasks[..1]).len();
        let full = encode_tasks(&tasks).len();
        // ~16 bytes per task would already be generous; the state column
        // itself contributes 3 bytes total regardless of count.
        assert!(full < baseline + tasks.len() * 16, "full={full}");
    }

    #[test]
    fn base64_round_trips_all_remainders() {
        for len in 0..=9usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 5) as u8).collect(); // BOUND: small test bytes.
            let enc = to_base64(&bytes);
            assert_eq!(from_base64(&enc).unwrap(), bytes, "len={len}"); // INVARIANT: test asserts on decode success.
        }
    }

    #[test]
    fn base64_rejects_malformed_input() {
        assert!(from_base64("abc").is_err(), "bad length");
        assert!(from_base64("ab=c").is_err(), "interior padding");
        assert!(from_base64("a!cd").is_err(), "bad alphabet");
        assert!(from_base64("ab==cd==").is_err(), "padding mid-stream");
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let tasks: Vec<Task> = (0..40).map(sample_task).collect();
        let bytes = encode_tasks(&tasks);
        for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_tasks(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_tasks(&extended).is_err(), "trailing byte");
    }
}
