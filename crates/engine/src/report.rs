//! Report generation (the output subsystem).
//!
//! The paper's output subsystem "contains an XML simulation report
//! generator which accumulates the statistics associated with various
//! performance metrics". [`Report`] serializes a run's parameters and
//! finalized [`Metrics`] to XML (hand-rolled writer — no external XML
//! dependency), JSON (via serde), and a flat CSV row for sweep
//! aggregation.

use crate::params::SimParams;
use crate::stats::Metrics;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A complete simulation report: the input parameters and the resulting
/// metric set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Parameters the run used.
    pub params: SimParams,
    /// Finalized metrics.
    pub metrics: Metrics,
}

/// Escape the five XML special characters.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn elem(out: &mut String, indent: usize, tag: &str, value: impl std::fmt::Display) {
    let _ = writeln!(
        out,
        "{:indent$}<{tag}>{}</{tag}>",
        "",
        xml_escape(&value.to_string()),
        indent = indent
    );
}

impl Report {
    /// Assemble a report.
    #[must_use]
    pub fn new(params: SimParams, metrics: Metrics) -> Self {
        Self { params, metrics }
    }

    /// Pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        // INVARIANT: Report is a closed tree of numbers and strings;
        // the serializer has no failure mode for those shapes.
        serde_json::to_string_pretty(self).expect("Report serialization cannot fail")
    }

    /// The XML report with an extra `<profile>` block of deterministic
    /// per-phase operation counters appended before the closing tag.
    ///
    /// Explicitly opt-in (`bench-profile` and `--profile` callers only):
    /// the plain [`to_xml`](Self::to_xml) output and the JSON report are
    /// byte-identical to builds that predate the profiler, which is what
    /// keeps the golden-report corpus and the differential battery valid.
    #[must_use]
    pub fn to_xml_with_profile(&self, profile: &crate::profile::PhaseProfile) -> String {
        let mut out = self.to_xml();
        let closing = "</dreamsim-report>\n";
        // INVARIANT: to_xml always terminates the document with the
        // closing root tag it opened.
        let body_end = out.rfind(closing).expect("report must be well-formed");
        out.truncate(body_end);
        out.push_str("  <profile>\n");
        for (name, value) in profile.gated_counters() {
            elem(&mut out, 4, &name.replace('_', "-"), value);
        }
        elem(&mut out, 4, "checkpoint-bytes", profile.checkpoint_bytes);
        if let Some(allocs) = profile.allocations {
            elem(&mut out, 4, "allocations", allocs);
        }
        out.push_str("  </profile>\n");
        out.push_str(closing);
        out
    }

    /// The paper's XML simulation report.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        let m = &self.metrics;
        let p = &self.params;
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        out.push_str("<dreamsim-report>\n");
        out.push_str("  <parameters>\n");
        elem(&mut out, 4, "total-nodes", p.total_nodes);
        elem(&mut out, 4, "total-configs", p.total_configs);
        elem(&mut out, 4, "total-tasks", p.total_tasks);
        elem(
            &mut out,
            4,
            "next-task-max-interval",
            p.next_task_max_interval,
        );
        elem(
            &mut out,
            4,
            "config-area",
            format_args!("[{}..{}]", p.config_area.lo, p.config_area.hi),
        );
        elem(
            &mut out,
            4,
            "node-area",
            format_args!("[{}..{}]", p.node_area.lo, p.node_area.hi),
        );
        elem(
            &mut out,
            4,
            "task-time",
            format_args!("[{}..{}]", p.task_time.lo, p.task_time.hi),
        );
        elem(
            &mut out,
            4,
            "config-time",
            format_args!("[{}..{}]", p.config_time.lo, p.config_time.hi),
        );
        elem(
            &mut out,
            4,
            "closest-match-fraction",
            p.closest_match_fraction,
        );
        elem(&mut out, 4, "reconfiguration-mode", p.mode);
        elem(&mut out, 4, "placement-model", p.placement.label());
        elem(&mut out, 4, "seed", p.seed);
        out.push_str("  </parameters>\n");
        out.push_str("  <metrics>\n");
        elem(
            &mut out,
            4,
            "total-tasks-generated",
            m.total_tasks_generated,
        );
        elem(
            &mut out,
            4,
            "total-tasks-completed",
            m.total_tasks_completed,
        );
        elem(
            &mut out,
            4,
            "total-discarded-tasks",
            m.total_discarded_tasks,
        );
        elem(
            &mut out,
            4,
            "avg-wasted-area-per-task",
            m.avg_wasted_area_per_task,
        );
        elem(
            &mut out,
            4,
            "wasted-area-snapshot-end",
            m.wasted_area_snapshot_end,
        );
        elem(
            &mut out,
            4,
            "avg-running-time-per-task",
            m.avg_running_time_per_task,
        );
        elem(
            &mut out,
            4,
            "avg-reconfiguration-count-per-node",
            m.avg_reconfig_count_per_node,
        );
        elem(
            &mut out,
            4,
            "avg-config-time-per-task",
            m.avg_config_time_per_task,
        );
        elem(
            &mut out,
            4,
            "avg-waiting-time-per-task",
            m.avg_waiting_time_per_task,
        );
        elem(&mut out, 4, "waiting-time-p50", m.wait_p50);
        elem(&mut out, 4, "waiting-time-p95", m.wait_p95);
        elem(&mut out, 4, "waiting-time-p99", m.wait_p99);
        elem(&mut out, 4, "waiting-time-max", m.wait_max);
        elem(
            &mut out,
            4,
            "avg-scheduling-steps-per-task",
            m.avg_scheduling_steps_per_task,
        );
        elem(
            &mut out,
            4,
            "total-scheduler-workload",
            m.total_scheduler_workload,
        );
        elem(&mut out, 4, "total-used-nodes", m.total_used_nodes);
        elem(
            &mut out,
            4,
            "total-simulation-time",
            m.total_simulation_time,
        );
        elem(&mut out, 4, "total-suspensions", m.total_suspensions);
        elem(&mut out, 4, "suspension-peak-length", m.suspension_peak_len);
        elem(&mut out, 4, "mean-fragmentation", m.mean_fragmentation_end);
        out.push_str("    <placements>\n");
        elem(&mut out, 6, "allocation", m.phases.allocation);
        elem(&mut out, 6, "configuration", m.phases.configuration);
        elem(
            &mut out,
            6,
            "partial-configuration",
            m.phases.partial_configuration,
        );
        elem(
            &mut out,
            6,
            "partial-reconfiguration",
            m.phases.partial_reconfiguration,
        );
        elem(&mut out, 6, "resumed-from-suspension", m.phases.resumed);
        out.push_str("    </placements>\n");
        // Fault-injection block. Emitted only when some fault counter is
        // nonzero, so fault-free reports stay byte-identical to releases
        // that predate the fault model.
        let any_faults = m.node_failures != 0
            || m.failure_killed != 0
            || m.reconfig_failures != 0
            || m.reconfig_retries != 0
            || m.task_failures != 0
            || m.resubmissions != 0
            || m.tasks_lost != 0
            || m.node_downtime != 0;
        if any_faults {
            out.push_str("    <faults>\n");
            elem(&mut out, 6, "node-failures", m.node_failures);
            elem(&mut out, 6, "failure-killed-tasks", m.failure_killed);
            elem(&mut out, 6, "reconfiguration-failures", m.reconfig_failures);
            elem(&mut out, 6, "reconfiguration-retries", m.reconfig_retries);
            elem(&mut out, 6, "task-failures", m.task_failures);
            elem(&mut out, 6, "resubmissions", m.resubmissions);
            elem(&mut out, 6, "tasks-lost", m.tasks_lost);
            elem(&mut out, 6, "node-downtime", m.node_downtime);
            out.push_str("    </faults>\n");
        }
        // Chaos-layer block, gated exactly like <faults>: emitted only
        // when some chaos counter is nonzero, so domain-free runs stay
        // byte-identical to releases that predate the chaos layer.
        let any_chaos = m.domain_outages != 0
            || m.domain_restores != 0
            || m.tasks_shed != 0
            || m.tasks_degraded != 0
            || m.domain_downtime.iter().any(|&d| d != 0);
        if any_chaos {
            out.push_str("    <chaos>\n");
            elem(&mut out, 6, "domain-outages", m.domain_outages);
            elem(&mut out, 6, "domain-restores", m.domain_restores);
            elem(&mut out, 6, "tasks-shed", m.tasks_shed);
            elem(&mut out, 6, "tasks-degraded", m.tasks_degraded);
            elem(&mut out, 6, "mean-time-to-recover", m.mean_time_to_recover);
            for (d, dt) in m.domain_downtime.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "      <domain-downtime domain=\"{d}\">{dt}</domain-downtime>"
                );
            }
            out.push_str("    </chaos>\n");
        }
        // Service-mode block, gated exactly like <faults>/<chaos>:
        // emitted only when the run rolled sliding windows, so batch-mode
        // reports stay byte-identical to releases that predate `serve`.
        let any_service =
            m.windows_closed != 0 || m.window_peak_arrivals != 0 || m.window_peak_completions != 0;
        if any_service {
            out.push_str("    <service>\n");
            elem(&mut out, 6, "windows-closed", m.windows_closed);
            elem(&mut out, 6, "window-peak-arrivals", m.window_peak_arrivals);
            elem(
                &mut out,
                6,
                "window-peak-completions",
                m.window_peak_completions,
            );
            out.push_str("    </service>\n");
        }
        out.push_str("  </metrics>\n");
        out.push_str("</dreamsim-report>\n");
        out
    }

    /// Header row matching [`Report::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> &'static str {
        "mode,nodes,tasks,completed,discarded,avg_wasted_area,avg_running_time,\
         avg_reconfig_count,avg_config_time,avg_waiting_time,avg_sched_steps,\
         total_workload,used_nodes,sim_time,suspensions"
    }

    /// One flat CSV row of the headline metrics.
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        let m = &self.metrics;
        format!(
            "{},{},{},{},{},{:.3},{:.3},{:.3},{:.4},{:.3},{:.3},{},{},{},{}",
            m.mode,
            m.total_nodes,
            m.total_tasks_generated,
            m.total_tasks_completed,
            m.total_discarded_tasks,
            m.avg_wasted_area_per_task,
            m.avg_running_time_per_task,
            m.avg_reconfig_count_per_node,
            m.avg_config_time_per_task,
            m.avg_waiting_time_per_task,
            m.avg_scheduling_steps_per_task,
            m.total_scheduler_workload,
            m.total_used_nodes,
            m.total_simulation_time,
            m.total_suspensions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ReconfigMode;
    use crate::stats::Stats;
    use dreamsim_model::StepCounter;

    fn report() -> Report {
        let params = SimParams::paper(100, 1000, ReconfigMode::Partial);
        let metrics = Stats::default().finalize(
            &params,
            StepCounter {
                scheduling: 10,
                housekeeping: 5,
            },
            999,
            0,
            0,
            0,
            0,
            0,
            0.0,
            0,
        );
        Report::new(params, metrics)
    }

    #[test]
    fn xml_is_well_formed_enough_to_round_trip_tags() {
        let xml = report().to_xml();
        assert!(xml.starts_with("<?xml"));
        // Every opened tag is closed.
        for tag in [
            "dreamsim-report",
            "parameters",
            "metrics",
            "placements",
            "total-scheduler-workload",
            "reconfiguration-mode",
        ] {
            let opens = xml.matches(&format!("<{tag}>")).count();
            let closes = xml.matches(&format!("</{tag}>")).count();
            assert_eq!(opens, closes, "tag {tag}");
            assert!(opens >= 1, "tag {tag} present");
        }
        assert!(xml.contains("<total-scheduler-workload>15</total-scheduler-workload>"));
        assert!(xml.contains("<reconfiguration-mode>partial</reconfiguration-mode>"));
    }

    #[test]
    fn xml_fault_block_only_present_when_counters_nonzero() {
        let clean = report();
        assert!(!clean.to_xml().contains("<faults>"));
        let mut faulty = report();
        faulty.metrics.node_failures = 3;
        faulty.metrics.tasks_lost = 2;
        faulty.metrics.node_downtime = 450;
        let xml = faulty.to_xml();
        assert!(xml.contains("<faults>"));
        assert!(xml.contains("<node-failures>3</node-failures>"));
        assert!(xml.contains("<tasks-lost>2</tasks-lost>"));
        assert!(xml.contains("<node-downtime>450</node-downtime>"));
        assert_eq!(xml.matches("</faults>").count(), 1);
    }

    #[test]
    fn xml_chaos_block_only_present_when_counters_nonzero() {
        let clean = report();
        assert!(!clean.to_xml().contains("<chaos>"));
        let mut chaotic = report();
        chaotic.metrics.domain_outages = 2;
        chaotic.metrics.domain_restores = 2;
        chaotic.metrics.tasks_shed = 5;
        chaotic.metrics.tasks_degraded = 1;
        chaotic.metrics.domain_downtime = vec![0, 340];
        chaotic.metrics.mean_time_to_recover = 170.0;
        let xml = chaotic.to_xml();
        assert!(xml.contains("<chaos>"));
        assert!(xml.contains("<domain-outages>2</domain-outages>"));
        assert!(xml.contains("<tasks-shed>5</tasks-shed>"));
        assert!(xml.contains("<tasks-degraded>1</tasks-degraded>"));
        assert!(xml.contains("<domain-downtime domain=\"0\">0</domain-downtime>"));
        assert!(xml.contains("<domain-downtime domain=\"1\">340</domain-downtime>"));
        assert_eq!(xml.matches("</chaos>").count(), 1);
    }

    #[test]
    fn xml_service_block_only_present_when_counters_nonzero() {
        let clean = report();
        assert!(!clean.to_xml().contains("<service>"));
        let mut served = report();
        served.metrics.windows_closed = 12;
        served.metrics.window_peak_arrivals = 40;
        served.metrics.window_peak_completions = 33;
        let xml = served.to_xml();
        assert!(xml.contains("<service>"));
        assert!(xml.contains("<windows-closed>12</windows-closed>"));
        assert!(xml.contains("<window-peak-arrivals>40</window-peak-arrivals>"));
        assert!(xml.contains("<window-peak-completions>33</window-peak-completions>"));
        assert_eq!(xml.matches("</service>").count(), 1);
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
        assert_eq!(xml_escape("plain"), "plain");
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let back: Report = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn csv_row_has_header_arity() {
        let r = report();
        let header_cols = Report::csv_header().split(',').count();
        let row_cols = r.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(r.to_csv_row().starts_with("partial,100,"));
    }
}
