//! Deterministic phase profiler.
//!
//! Wall-clock profiles of a discrete-event simulator are noisy and
//! machine-bound; what actually predicts scaling behaviour is *how many
//! operations* each phase performed. This module snapshots monotonic
//! operation counters — all derived from simulation state that is itself
//! deterministic under a fixed seed — so two runs of the same workload
//! produce byte-identical profiles on any machine. That is what lets CI
//! diff profiles against a committed baseline and fail on algorithmic
//! regressions (a 25 % jump in store mutations is a bug even when the
//! wall clock got faster).
//!
//! Phases and their counters:
//!
//! * **search** — `scheduling_steps` ([`StepCounter`]'s
//!   `Total_Search_Length_Scheduler`, the paper's own unit).
//! * **store-mutate** — `store_mutations`, one tick per successful
//!   `ResourceManager` state change (placements, evictions, task
//!   add/remove, failure/repair transitions).
//! * **housekeeping** — `housekeeping_steps`, the resource-information
//!   module's list/suspension traversals.
//! * **event-queue** — `events_pushed` / `events_popped` from the queue's
//!   own sequence numbering (which checkpoints carry, so these count the
//!   whole logical run even across a resume).
//! * **stats** — `stats_samples`, one per recorded arrival, completion,
//!   or discard.
//! * **checkpoint** — `checkpoints_written` and `checkpoint_bytes` for
//!   snapshots written by the run loop of the live process.
//!
//! `allocations` is the odd one out: operation counts can't see allocator
//! traffic, so the `bench-profile` CLI fills it from a counting global
//! allocator. It stays `None` inside the engine and never participates in
//! determinism claims beyond a single build.

use serde::{Deserialize, Serialize};

/// A snapshot of per-phase operation counters for one run.
///
/// Obtained from [`Simulation::phase_profile`](crate::Simulation::phase_profile);
/// all fields are monotonic over a run and deterministic under a fixed
/// seed. Differences of two snapshots are meaningful because every
/// counter only ever increases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Scheduler search steps (the paper's `Total_Search_Length_Scheduler`).
    pub scheduling_steps: u64,
    /// Resource-information housekeeping steps (list maintenance,
    /// suspension-queue rescans).
    pub housekeeping_steps: u64,
    /// Successful resource-store mutations (place/evict/assign/release,
    /// failure and repair transitions).
    pub store_mutations: u64,
    /// Events ever pushed onto the event queue.
    pub events_pushed: u64,
    /// Events popped off the event queue.
    pub events_popped: u64,
    /// Statistics samples recorded (arrivals + completions + discards).
    pub stats_samples: u64,
    /// Checkpoint files written by this process's run loop.
    pub checkpoints_written: u64,
    /// Total bytes of checkpoint data written (header + payload).
    pub checkpoint_bytes: u64,
    /// Heap allocations observed by the `bench-profile` counting
    /// allocator; `None` when no such allocator is installed.
    #[serde(default)]
    pub allocations: Option<u64>,
}

impl PhaseProfile {
    /// Total operations across all phases (excluding `allocations`,
    /// which is measured in different units).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.scheduling_steps
            + self.housekeeping_steps
            + self.store_mutations
            + self.events_pushed
            + self.events_popped
            + self.stats_samples
            + self.checkpoints_written
    }

    /// The named counters in display order, for report rendering and
    /// baseline diffing. `checkpoint_bytes` and `allocations` are not
    /// listed: bytes scale with payload (not algorithm) and allocations
    /// are build-dependent, so neither belongs in a regression gate.
    #[must_use]
    pub fn gated_counters(&self) -> [(&'static str, u64); 7] {
        [
            ("scheduling_steps", self.scheduling_steps),
            ("housekeeping_steps", self.housekeeping_steps),
            ("store_mutations", self.store_mutations),
            ("events_pushed", self.events_pushed),
            ("events_popped", self.events_popped),
            ("stats_samples", self.stats_samples),
            ("checkpoints_written", self.checkpoints_written),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_ops_sums_every_gated_counter() {
        let p = PhaseProfile {
            scheduling_steps: 1,
            housekeeping_steps: 2,
            store_mutations: 4,
            events_pushed: 8,
            events_popped: 16,
            stats_samples: 32,
            checkpoints_written: 64,
            checkpoint_bytes: 9999,
            allocations: Some(7),
        };
        assert_eq!(p.total_ops(), 127);
        let from_list: u64 = p.gated_counters().iter().map(|(_, v)| v).sum();
        assert_eq!(from_list, p.total_ops());
    }

    #[test]
    fn serde_round_trip_preserves_counters() {
        let p = PhaseProfile {
            scheduling_steps: 10,
            allocations: None,
            ..PhaseProfile::default()
        };
        let json = serde_json::to_string(&p).unwrap(); // INVARIANT: test asserts on success.
        let back: PhaseProfile = serde_json::from_str(&json).unwrap(); // INVARIANT: test asserts on success.
        assert_eq!(p, back);
    }
}
