//! Fault injection: node failures, bitstream-load failures, task
//! execution failures, and suspension deadlines.
//!
//! The paper's evaluation assumes every node, bitstream load, and task
//! execution succeeds; at the scale it targets (thousands of
//! reconfigurable nodes) failures are the common case. [`FaultModel`]
//! owns all fault randomness and bookkeeping:
//!
//! - **Node failures** — each node fails independently with an
//!   exponentially distributed time-to-failure (mean
//!   [`FaultParams::node_mttf`]) and is repaired after an exponentially
//!   distributed time-to-repair (mean [`FaultParams::node_mttr`]).
//!   This is a *per-node* process, unlike the legacy `node_mtbf`
//!   parameter's single global chain; the two are mutually exclusive
//!   (enforced by `SimParams::validate`).
//! - **Reconfiguration failures** — each bitstream-load attempt fails
//!   with probability [`FaultParams::reconfig_fail_prob`]; the driver
//!   retries with bounded exponential [`backoff`](FaultModel::backoff)
//!   before degrading to the closest-match configuration.
//! - **Execution failures** — each placed task fails mid-run with
//!   probability [`FaultParams::task_fail_prob`], at a point uniformly
//!   distributed over its required time.
//! - **Suspension deadline** — suspended tasks are discarded after
//!   [`FaultParams::suspension_deadline`] ticks in the queue.
//!
//! All draws come from a dedicated RNG stream derived from the run seed
//! (`Rng::derive(seed, FAULT_STREAM)`), so enabling or disabling faults
//! never perturbs workload or platform generation, and a disabled model
//! draws nothing at all — failure-free runs stay bit-identical to the
//! pre-fault simulator.

use crate::params::{DomainOutageKind, DomainParams, ScriptedOutage, SimParams};
use dreamsim_model::{NodeId, Ticks};
use dreamsim_rng::Rng;

/// Stream index for the fault RNG, far away from the small indices the
/// sweep harness uses for seed replication.
const FAULT_STREAM: u64 = 0xFA17;

/// Stream index for the failure-domain RNG. Domain outage/restore draws
/// live on their own stream so enabling domains never perturbs the
/// per-node fault process, and vice versa.
const DOMAIN_STREAM: u64 = 0xD017;

/// Correlated failure-domain state: the domain layout, the dedicated
/// outage RNG, and per-domain downtime/recovery accounting. Present only
/// when `SimParams::domains` is configured; serialized wholesale inside
/// [`FaultModel`] so checkpoints capture open outages exactly.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct DomainState {
    params: DomainParams,
    rng: Rng,
    /// Total node count, for the contiguous-block member mapping.
    node_count: usize,
    /// `down_since[d] = Some(t)` while domain `d` is down.
    down_since: Vec<Option<Ticks>>,
    /// Per-domain accrued downtime from completed outages.
    downtime: Vec<Ticks>,
    /// Nodes each currently-open outage took down (exactly these are
    /// restored — nodes that were already down for their own reasons
    /// keep their own repair schedule).
    victims: Vec<Vec<u32>>,
    /// Outages started / outages completed.
    outages: u64,
    restores: u64,
    /// Sum of completed outage durations (time-to-recover accumulator).
    recover_total: Ticks,
}

/// Per-run fault state: parameters, the dedicated RNG stream, and node
/// downtime accounting.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FaultModel {
    params: crate::params::FaultParams,
    enabled: bool,
    rng: Rng,
    /// `down_since[node] = Some(t)` while the node is down; empty when
    /// no failure process (legacy, fault-model, or domain) is
    /// configured.
    down_since: Vec<Option<Ticks>>,
    downtime: Ticks,
    /// Correlated failure-domain state; `None` (and absent from older
    /// checkpoints) when domains are not configured.
    #[serde(default)]
    domains: Option<DomainState>,
}

impl FaultModel {
    /// Build the model for one run. Downtime tracking is allocated when
    /// either failure process (the fault model's `node_mttf` or the
    /// legacy `node_mtbf`) can take nodes down.
    #[must_use]
    pub fn new(params: &SimParams) -> Self {
        let f = params.faults;
        let track_downtime =
            f.node_mttf.is_some() || params.node_mtbf.is_some() || params.domains.is_some();
        Self {
            params: f,
            // Configured domains count as a fault feature: domain-killed
            // tasks follow the same resubmission path as node failures.
            enabled: f.enabled() || params.domains.is_some(),
            rng: Rng::derive(params.seed, FAULT_STREAM),
            down_since: if track_downtime {
                vec![None; params.total_nodes]
            } else {
                Vec::new()
            },
            downtime: 0,
            domains: params.domains.as_ref().map(|d| DomainState {
                params: d.clone(),
                rng: Rng::derive(params.seed, DOMAIN_STREAM),
                node_count: params.total_nodes,
                down_since: vec![None; d.count],
                downtime: vec![0; d.count],
                victims: vec![Vec::new(); d.count],
                outages: 0,
                restores: 0,
                recover_total: 0,
            }),
        }
    }

    /// Whether any fault feature is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the per-node MTTF failure process is active.
    #[must_use]
    pub fn mttf_active(&self) -> bool {
        self.params.node_mttf.is_some()
    }

    /// Whether bitstream-load attempts can fail.
    #[must_use]
    pub fn reconfig_faults_enabled(&self) -> bool {
        self.params.reconfig_fail_prob > 0.0
    }

    /// Whether task executions can fail.
    #[must_use]
    pub fn task_faults_enabled(&self) -> bool {
        self.params.task_fail_prob > 0.0
    }

    /// Whether killed/failed tasks are resubmitted (within the retry
    /// budget) rather than discarded. Always false when the model is
    /// disabled, so legacy `node_mtbf` runs keep their discard-on-kill
    /// behaviour.
    #[must_use]
    pub fn resubmit_enabled(&self) -> bool {
        self.enabled && self.params.resubmit
    }

    /// Retry budget shared by reconfiguration retries and task
    /// resubmissions.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        self.params.max_retries
    }

    /// Suspension-queue deadline, if one is configured.
    #[must_use]
    pub fn suspension_deadline(&self) -> Option<Ticks> {
        self.params.suspension_deadline
    }

    /// Draw a time-to-failure for one node (≥ 1 tick).
    ///
    /// # Panics
    /// Panics if the MTTF process is not configured.
    pub fn draw_ttf(&mut self) -> Ticks {
        // INVARIANT: the engine schedules NodeFailure events only when
        // `node_faults_enabled()` (node_mttf is Some); documented panic
        // for direct misuse.
        let mttf = self.params.node_mttf.expect("draw_ttf requires node_mttf");
        draw_exp(&mut self.rng, mttf)
    }

    /// Draw a time-to-repair for one node (≥ 1 tick).
    pub fn draw_ttr(&mut self) -> Ticks {
        draw_exp(&mut self.rng, self.params.node_mttr)
    }

    /// Whether this bitstream-load attempt fails. Draws only when
    /// reconfiguration faults are enabled.
    pub fn reconfig_attempt_fails(&mut self) -> bool {
        self.reconfig_faults_enabled() && self.rng.bernoulli(self.params.reconfig_fail_prob)
    }

    /// Whether this task execution fails. Draws only when task faults
    /// are enabled.
    pub fn task_attempt_fails(&mut self) -> bool {
        self.task_faults_enabled() && self.rng.bernoulli(self.params.task_fail_prob)
    }

    /// How far into a `required`-tick execution the failure strikes:
    /// uniform over `[1, required]` (at least one tick runs).
    pub fn draw_fail_point(&mut self, required: Ticks) -> Ticks {
        self.rng.uniform_inclusive(1, required.max(1))
    }

    /// Backoff delay before retry attempt `attempt` (1-based):
    /// `base << (attempt-1)`, capped at `retry_backoff_cap`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Ticks {
        let base = self.params.retry_backoff_base;
        let cap = self.params.retry_backoff_cap;
        if attempt >= 64 {
            return cap;
        }
        // `checked_shl` only rejects shifts ≥ 64, not value overflow, so
        // saturating multiplication is used instead (attempt < 64 keeps
        // the `1 << …` itself in range).
        base.saturating_mul(1u64 << attempt.saturating_sub(1))
            .min(cap)
            .max(1)
    }

    /// Record that `node` went down at `now` (no-op unless downtime
    /// tracking is configured).
    pub fn mark_down(&mut self, node: NodeId, now: Ticks) {
        if let Some(slot) = self.down_since.get_mut(node.index()) {
            debug_assert!(slot.is_none(), "node marked down twice");
            *slot = Some(now);
        }
    }

    /// Record that `node` came back up at `now`, accruing its downtime.
    pub fn mark_up(&mut self, node: NodeId, now: Ticks) {
        if let Some(slot) = self.down_since.get_mut(node.index()) {
            if let Some(since) = slot.take() {
                // BOUND: downtime accrues at most makespan ticks per node; the sum stays far below 2^64.
                self.downtime += now.saturating_sub(since);
            }
        }
    }

    /// Total node downtime in node·ticks; nodes still down at `end`
    /// accrue up to `end`.
    #[must_use]
    pub fn total_downtime(&self, end: Ticks) -> Ticks {
        self.downtime
            // BOUND: same bound as the accumulator above: at most nodes x makespan node-ticks.
            + self
                .down_since
                .iter()
                .flatten()
                .map(|&since| end.saturating_sub(since))
                .sum::<Ticks>()
    }

    // ------------------------------------------------------------------
    // Correlated failure domains (chaos layer).
    // ------------------------------------------------------------------

    /// Whether failure domains are configured.
    #[must_use]
    pub fn domains_active(&self) -> bool {
        self.domains.is_some()
    }

    /// Number of configured failure domains (0 when disabled).
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.domains.as_ref().map_or(0, |d| d.params.count)
    }

    /// Whether the stochastic (MTTF-driven) domain outage process runs.
    #[must_use]
    pub fn domain_mttf_active(&self) -> bool {
        self.domains
            .as_ref()
            .is_some_and(|d| d.params.mttf.is_some())
    }

    /// What an outage does to member nodes.
    #[must_use]
    pub fn domain_kind(&self) -> DomainOutageKind {
        self.domains
            .as_ref()
            .map_or(DomainOutageKind::Fail, |d| d.params.kind)
    }

    /// The pre-scheduled outages from the chaos scenario (empty when
    /// none are scripted).
    #[must_use]
    pub fn scripted_outages(&self) -> &[ScriptedOutage] {
        self.domains
            .as_ref()
            .map_or(&[][..], |d| &d.params.scripted)
    }

    /// The node-index range belonging to domain `d`: nodes are split
    /// into contiguous blocks whose sizes differ by at most one
    /// (`[d·n/count, (d+1)·n/count)`), so every node belongs to exactly
    /// one domain and no domain is empty while `count ≤ n`.
    #[must_use]
    pub fn domain_members(&self, d: u32) -> std::ops::Range<usize> {
        let Some(ds) = &self.domains else {
            return 0..0;
        };
        let (n, count) = (ds.node_count, ds.params.count);
        // BOUND: u32 domain index; usize is at least 32 bits on every supported target.
        let d = d as usize;
        if d >= count {
            return 0..0;
        }
        (d * n / count)..((d + 1) * n / count)
    }

    /// Whether domain `d` is currently down.
    #[must_use]
    pub fn domain_is_down(&self, d: u32) -> bool {
        self.domains
            .as_ref()
            // BOUND: u32 domain index; usize is at least 32 bits on every supported target.
            .is_some_and(|ds| ds.down_since.get(d as usize).copied().flatten().is_some())
    }

    /// Draw a time-to-failure for one domain (≥ 1 tick), from the
    /// dedicated domain stream.
    ///
    /// # Panics
    /// Panics if no stochastic domain process is configured.
    pub fn draw_domain_ttf(&mut self) -> Ticks {
        // INVARIANT: the engine schedules stochastic DomainOutage events
        // only when `domain_mttf_active()`; documented panic for direct
        // misuse.
        let ds = self.domains.as_mut().expect("draw_domain_ttf: no domains");
        // INVARIANT: same gate — `domain_mttf_active()` implies mttf is set.
        let mttf = ds.params.mttf.expect("draw_domain_ttf requires mttf");
        draw_exp(&mut ds.rng, mttf)
    }

    /// Draw a time-to-restore for one domain (≥ 1 tick), from the
    /// dedicated domain stream.
    ///
    /// # Panics
    /// Panics if domains are not configured.
    pub fn draw_domain_ttr(&mut self) -> Ticks {
        // INVARIANT: only the domain-outage handler calls this, and it
        // runs only when domains are configured.
        let ds = self.domains.as_mut().expect("draw_domain_ttr: no domains");
        draw_exp(&mut ds.rng, ds.params.mttr)
    }

    /// Record that domain `d` went down at `now`, taking exactly
    /// `victims` (node indices) with it.
    pub fn mark_domain_down(&mut self, d: u32, now: Ticks, victims: Vec<u32>) {
        if let Some(ds) = &mut self.domains {
            // BOUND: u32 domain index; usize is at least 32 bits on every supported target.
            if let Some(slot) = ds.down_since.get_mut(d as usize) {
                debug_assert!(slot.is_none(), "domain marked down twice");
                *slot = Some(now);
                // BOUND: u32 domain index; usize is at least 32 bits on every supported target.
                ds.victims[d as usize] = victims;
                ds.outages += 1;
            }
        }
    }

    /// Record that domain `d` was restored at `now`: accrues its
    /// downtime and time-to-recover, and returns the nodes the outage
    /// had taken down (exactly these must be repaired).
    pub fn mark_domain_up(&mut self, d: u32, now: Ticks) -> Vec<u32> {
        let Some(ds) = &mut self.domains else {
            return Vec::new();
        };
        // BOUND: u32 domain index; usize is at least 32 bits on every supported target.
        let Some(slot) = ds.down_since.get_mut(d as usize) else {
            return Vec::new();
        };
        let Some(since) = slot.take() else {
            return Vec::new();
        };
        let dur = now.saturating_sub(since);
        // BOUND: u32 index; per-domain downtime is at most the makespan, far below 2^64.
        ds.downtime[d as usize] += dur;
        ds.recover_total += dur;
        ds.restores += 1;
        // BOUND: u32 domain index; usize is at least 32 bits on every supported target.
        std::mem::take(&mut ds.victims[d as usize])
    }

    /// Outages started over the run.
    #[must_use]
    pub fn domain_outages(&self) -> u64 {
        self.domains.as_ref().map_or(0, |d| d.outages)
    }

    /// Outages completed (restored) over the run.
    #[must_use]
    pub fn domain_restores(&self) -> u64 {
        self.domains.as_ref().map_or(0, |d| d.restores)
    }

    /// Per-domain downtime in ticks; domains still down at `end` accrue
    /// up to `end`. Empty when domains are disabled.
    #[must_use]
    pub fn domain_downtime(&self, end: Ticks) -> Vec<Ticks> {
        let Some(ds) = &self.domains else {
            return Vec::new();
        };
        ds.downtime
            .iter()
            .zip(&ds.down_since)
            .map(|(&dt, open)| dt + open.map_or(0, |since| end.saturating_sub(since)))
            .collect()
    }

    /// Mean time-to-recover over completed outages (0 when none
    /// completed).
    #[must_use]
    pub fn mean_time_to_recover(&self) -> f64 {
        let Some(ds) = &self.domains else {
            return 0.0;
        };
        if ds.restores == 0 {
            0.0
        } else {
            ds.recover_total as f64 / ds.restores as f64
        }
    }
}

/// Exponential draw with the given mean, rounded to whole ticks and
/// clamped to at least 1 so events always make progress.
fn draw_exp(rng: &mut Rng, mean: u64) -> Ticks {
    (rng.exponential_with_mean(mean as f64).round() as Ticks).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FaultParams;

    fn params_with(f: impl FnOnce(&mut FaultParams)) -> SimParams {
        let mut p = SimParams::default();
        p.total_nodes = 4;
        f(&mut p.faults);
        p
    }

    #[test]
    fn disabled_model_reports_every_feature_off() {
        let m = FaultModel::new(&SimParams::default());
        assert!(!m.enabled());
        assert!(!m.mttf_active());
        assert!(!m.reconfig_faults_enabled());
        assert!(!m.task_faults_enabled());
        assert!(!m.resubmit_enabled());
        assert_eq!(m.total_downtime(1_000_000), 0);
    }

    #[test]
    fn disabled_probability_draws_never_touch_the_rng() {
        let p = SimParams::default();
        let mut m = FaultModel::new(&p);
        let before = m.rng.clone();
        for _ in 0..32 {
            assert!(!m.reconfig_attempt_fails());
            assert!(!m.task_attempt_fails());
        }
        // The generator state is untouched: both streams continue
        // identically.
        let mut after = m.rng;
        let mut before = before;
        for _ in 0..8 {
            assert_eq!(before.rand_int64(), after.rand_int64());
        }
    }

    #[test]
    fn fault_stream_is_independent_of_the_main_stream() {
        let p = SimParams::default();
        let mut main = Rng::seed_from(p.seed);
        let mut fault = FaultModel::new(&p).rng;
        let a: Vec<u64> = (0..8).map(|_| main.rand_int64()).collect();
        let b: Vec<u64> = (0..8).map(|_| fault.rand_int64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn ttf_and_ttr_draws_are_positive_and_deterministic() {
        let p = params_with(|f| {
            f.node_mttf = Some(500);
            f.node_mttr = 50;
        });
        let mut a = FaultModel::new(&p);
        let mut b = FaultModel::new(&p);
        for _ in 0..64 {
            let (ta, tb) = (a.draw_ttf(), b.draw_ttf());
            assert_eq!(ta, tb);
            assert!(ta >= 1);
            let (ra, rb) = (a.draw_ttr(), b.draw_ttr());
            assert_eq!(ra, rb);
            assert!(ra >= 1);
        }
    }

    #[test]
    fn certain_failure_probability_always_fires() {
        let p = params_with(|f| {
            f.reconfig_fail_prob = 1.0;
            f.task_fail_prob = 1.0;
        });
        let mut m = FaultModel::new(&p);
        for _ in 0..16 {
            assert!(m.reconfig_attempt_fails());
            assert!(m.task_attempt_fails());
        }
    }

    #[test]
    fn fail_point_lies_within_the_execution() {
        let p = params_with(|f| f.task_fail_prob = 0.5);
        let mut m = FaultModel::new(&p);
        for required in [1u64, 2, 17, 100_000] {
            for _ in 0..16 {
                let at = m.draw_fail_point(required);
                assert!((1..=required).contains(&at));
            }
        }
        assert_eq!(
            m.draw_fail_point(0),
            1,
            "zero-length runs still take a tick"
        );
    }

    #[test]
    fn backoff_doubles_then_saturates() {
        let p = params_with(|f| {
            f.retry_backoff_base = 8;
            f.retry_backoff_cap = 100;
        });
        let m = FaultModel::new(&p);
        assert_eq!(m.backoff(1), 8);
        assert_eq!(m.backoff(2), 16);
        assert_eq!(m.backoff(3), 32);
        assert_eq!(m.backoff(4), 64);
        assert_eq!(m.backoff(5), 100);
        assert_eq!(m.backoff(63), 100);
        assert_eq!(m.backoff(64), 100);
        assert_eq!(m.backoff(u32::MAX), 100);
    }

    #[test]
    fn downtime_accrues_per_node_and_to_run_end() {
        let p = params_with(|f| {
            f.node_mttf = Some(1_000);
            f.node_mttr = 10;
        });
        let mut m = FaultModel::new(&p);
        m.mark_down(NodeId(0), 100);
        m.mark_up(NodeId(0), 150);
        assert_eq!(m.total_downtime(200), 50);
        m.mark_down(NodeId(1), 180);
        // Node 1 is still down at the end of the run.
        assert_eq!(m.total_downtime(200), 50 + 20);
        m.mark_up(NodeId(1), 190);
        assert_eq!(m.total_downtime(200), 50 + 10);
    }

    #[test]
    fn downtime_tracking_is_inert_without_a_failure_process() {
        let p = params_with(|f| f.task_fail_prob = 0.5);
        let mut m = FaultModel::new(&p);
        m.mark_down(NodeId(0), 10);
        m.mark_up(NodeId(0), 20);
        assert_eq!(m.total_downtime(100), 0);
    }

    fn params_with_domains(count: usize, f: impl FnOnce(&mut DomainParams)) -> SimParams {
        let mut p = SimParams::default();
        p.total_nodes = 10;
        let mut d = DomainParams {
            count,
            ..DomainParams::default()
        };
        f(&mut d);
        p.domains = Some(d);
        p
    }

    #[test]
    fn domain_free_model_exposes_no_domain_state() {
        let m = FaultModel::new(&SimParams::default());
        assert!(!m.domains_active());
        assert_eq!(m.num_domains(), 0);
        assert!(!m.domain_mttf_active());
        assert!(m.scripted_outages().is_empty());
        assert_eq!(m.domain_members(0), 0..0);
        assert!(!m.domain_is_down(0));
        assert!(m.domain_downtime(1_000).is_empty());
        assert_eq!(m.mean_time_to_recover(), 0.0);
    }

    #[test]
    fn domain_members_partition_every_node_exactly_once() {
        for (nodes, count) in [(10usize, 4usize), (10, 10), (10, 1), (7, 3), (5, 4)] {
            let mut p = params_with_domains(count, |_| {});
            p.total_nodes = nodes;
            let m = FaultModel::new(&p);
            let mut covered = vec![0u32; nodes];
            for d in 0..count as u32 {
                let r = m.domain_members(d);
                assert!(!r.is_empty(), "n={nodes} count={count} d={d} empty");
                for i in r {
                    covered[i] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "n={nodes} count={count}");
            assert_eq!(m.domain_members(count as u32), 0..0, "out of range");
        }
    }

    #[test]
    fn domain_draws_come_from_their_own_stream() {
        let p = params_with_domains(2, |d| d.mttf = Some(4_000));
        let mut a = FaultModel::new(&p);
        // Exhausting the node-fault stream must not move the domain
        // stream: interleaved and non-interleaved draws agree.
        let mut b = FaultModel::new(&p);
        let plain: Vec<Ticks> = (0..8).map(|_| a.draw_domain_ttf()).collect();
        let interleaved: Vec<Ticks> = (0..8)
            .map(|_| {
                b.draw_ttr();
                b.draw_domain_ttf()
            })
            .collect();
        assert_eq!(plain, interleaved);
        for t in plain {
            assert!(t >= 1);
        }
        assert!(b.draw_domain_ttr() >= 1);
    }

    #[test]
    fn domain_outage_bookkeeping_and_recovery_stats() {
        let p = params_with_domains(2, |d| d.mttr = 100);
        let mut m = FaultModel::new(&p);
        assert!(m.enabled(), "configured domains are a fault feature");
        m.mark_domain_down(0, 1_000, vec![0, 1, 2]);
        assert!(m.domain_is_down(0));
        assert!(!m.domain_is_down(1));
        assert_eq!(m.domain_outages(), 1);
        assert_eq!(m.domain_restores(), 0);
        // Still open: accrues to the queried end.
        assert_eq!(m.domain_downtime(1_300), vec![300, 0]);
        let victims = m.mark_domain_up(0, 1_250);
        assert_eq!(victims, vec![0, 1, 2]);
        assert!(!m.domain_is_down(0));
        assert_eq!(m.domain_restores(), 1);
        assert_eq!(m.domain_downtime(9_999), vec![250, 0]);
        assert_eq!(m.mean_time_to_recover(), 250.0);
        // Restoring an up domain is a no-op.
        assert!(m.mark_domain_up(0, 1_300).is_empty());
        assert_eq!(m.domain_restores(), 1);
    }

    #[test]
    fn domain_state_survives_serde_round_trip() {
        let p = params_with_domains(3, |d| {
            d.mttf = Some(2_000);
            d.kind = DomainOutageKind::Partition;
        });
        let mut m = FaultModel::new(&p);
        m.draw_domain_ttf();
        m.mark_domain_down(1, 500, vec![4, 5]);
        let js = serde_json::to_string(&m).unwrap();
        let mut back: FaultModel = serde_json::from_str(&js).unwrap();
        assert!(back.domain_is_down(1));
        assert_eq!(back.domain_kind(), DomainOutageKind::Partition);
        assert_eq!(back.mark_domain_up(1, 600), vec![4, 5]);
        assert_eq!(back.domain_downtime(600), vec![0, 100, 0]);
        // RNG position carried over: next draws agree with the original.
        assert_eq!(back.draw_domain_ttf(), m.draw_domain_ttf());
    }

    #[test]
    fn legacy_mtbf_also_gets_downtime_tracking() {
        let mut p = SimParams::default();
        p.total_nodes = 2;
        p.node_mtbf = Some(5_000);
        let mut m = FaultModel::new(&p);
        assert!(!m.enabled(), "legacy failures are not the fault model");
        m.mark_down(NodeId(1), 30);
        m.mark_up(NodeId(1), 45);
        assert_eq!(m.total_downtime(100), 15);
    }
}
