//! Statistics accumulation and the Table I performance metrics.
//!
//! [`Stats`] is the running accumulator the driver updates as events are
//! processed; [`Metrics`] is the finalized report (`MakeReport()` in the
//! UML), with one field per Table I row plus the extra counters this
//! implementation exposes.
//!
//! ## The wasted-area metric
//!
//! As discussed in DESIGN.md, Eq. 6/7 are reproduced in two forms:
//!
//! * `avg_wasted_area_per_task` (the paper's headline figure metric) —
//!   **per-allocation accumulation**: each time a task is placed, the
//!   chosen node's `AvailableArea` after the placement is added to
//!   `Total_Wasted_Area`; the average divides by tasks generated (Eq. 7).
//! * `wasted_area_snapshot_end` — the literal Eq. 6 sum at the end of the
//!   run, over nodes holding at least one configuration.

use crate::params::SimParams;
use dreamsim_model::{Area, StepCounter, Ticks};
use serde::{Deserialize, Serialize};

/// Which algorithmic phase of Section V placed a task (Fig. 5's four
/// parts plus suspension-queue resumption).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Direct allocation onto an already-configured idle instance.
    Allocation,
    /// Configuration of a blank node.
    Configuration,
    /// Partial configuration into a node's spare area.
    PartialConfiguration,
    /// Partial re-configuration after evicting idle regions
    /// (full-mode re-configuration uses this bucket too).
    PartialReconfiguration,
}

/// Per-phase placement counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCounts {
    /// Placements by direct allocation.
    pub allocation: u64,
    /// Placements by configuring a blank node.
    pub configuration: u64,
    /// Placements by partial configuration.
    pub partial_configuration: u64,
    /// Placements by (partial) re-configuration.
    pub partial_reconfiguration: u64,
    /// Placements that came out of the suspension queue (these also
    /// count in one of the four phase buckets).
    pub resumed: u64,
}

impl PhaseCounts {
    /// Total placements across the four phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.allocation
            + self.configuration
            + self.partial_configuration
            + self.partial_reconfiguration
    }

    /// Bump the counter for `phase`.
    pub fn bump(&mut self, phase: PhaseKind) {
        match phase {
            PhaseKind::Allocation => self.allocation += 1,
            PhaseKind::Configuration => self.configuration += 1,
            PhaseKind::PartialConfiguration => self.partial_configuration += 1,
            PhaseKind::PartialReconfiguration => self.partial_reconfiguration += 1,
        }
    }
}

/// One sliding-window bucket of live service metrics: event counts over
/// `[start, start + window)` ticks of simulated time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowBucket {
    /// First tick the bucket covers (inclusive).
    pub start: Ticks,
    /// Tasks that arrived inside the bucket.
    pub arrivals: u64,
    /// Tasks that completed inside the bucket.
    pub completions: u64,
    /// Tasks discarded inside the bucket.
    pub discards: u64,
    /// Placements inside the bucket.
    pub placements: u64,
    /// Σ waiting time over placements inside the bucket.
    pub wait_sum: u64,
}

/// Sliding-window live metrics for the open-system service driver
/// (`dreamsim serve`): a rolling sequence of fixed-length
/// [`WindowBucket`]s, with bounded retention of closed buckets and
/// lifetime peak counters that survive trimming. `None` in
/// [`Stats::window`] (every batch run) leaves the accumulator — and the
/// serialized checkpoint shape — untouched.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Bucket length, in ticks (nonzero).
    pub window: Ticks,
    /// How many closed buckets to retain; older ones are trimmed.
    pub retain: u64,
    /// The bucket currently accumulating.
    pub current: WindowBucket,
    /// Closed buckets, oldest first, at most `retain` of them.
    pub closed: Vec<WindowBucket>,
    /// Lifetime count of closed buckets (trimming does not decrement).
    pub closed_total: u64,
    /// Lifetime peak `arrivals` over closed buckets.
    pub peak_arrivals: u64,
    /// Lifetime peak `completions` over closed buckets.
    pub peak_completions: u64,
}

impl WindowStats {
    /// Fresh window accounting starting at tick 0.
    #[must_use]
    pub fn new(window: Ticks, retain: u64) -> Self {
        Self {
            window: window.max(1),
            retain: retain.max(1),
            current: WindowBucket::default(),
            closed: Vec::new(),
            closed_total: 0,
            peak_arrivals: 0,
            peak_completions: 0,
        }
    }

    /// Close every bucket that ends at or before `now` (simulated
    /// time), trimming retention as buckets close. Idempotent for a
    /// given `now`; callers roll before recording events at `now`.
    pub fn roll(&mut self, now: Ticks) {
        // BOUND: each iteration advances current.start by window >= 1,
        // so the loop runs at most (now - start) / window times.
        while self.current.start + self.window <= now {
            let next_start = self.current.start + self.window;
            let bucket = std::mem::take(&mut self.current);
            self.closed_total += 1;
            self.peak_arrivals = self.peak_arrivals.max(bucket.arrivals);
            self.peak_completions = self.peak_completions.max(bucket.completions);
            self.closed.push(bucket);
            // BOUND: retain >= 1, enforced in new().
            while self.closed.len() as u64 > self.retain {
                self.closed.remove(0);
            }
            self.current.start = next_start;
        }
    }
}

/// Selects how [`Stats`] accumulates the waiting-time distribution.
///
/// `Exact` (the seed behaviour and the default) keeps every placed
/// task's wait in [`Stats::wait_samples`] — one `u64` per task, O(n)
/// memory and O(n) checkpoint payload. `Sketch` replaces the vector
/// with the fixed-structure [`WaitSketch`]: O(1) memory in the task
/// count, exact percentiles up to [`WaitSketch::EXACT_WINDOW`] samples
/// and bounded-relative-error percentiles beyond
/// ([`WaitSketch::MAX_REL_ERROR_DENOM`]), which is what makes
/// million-task scale-ladder runs feasible.
///
/// Like `SearchBackend` and `EventQueueBackend` the selection itself
/// is derived state, but unlike them the sketch's *contents* are real
/// state and ride inside checkpoints ([`Stats::sketch`]); a resumed run
/// continues accumulating into the restored sketch. Switching a
/// collapsed sketch back to `Exact` is impossible (the individual
/// samples are gone) and is deliberately a no-op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StatsBackend {
    /// Per-task wait samples; exact percentiles (seed behaviour).
    #[default]
    Exact,
    /// Fixed-bucket log-histogram sketch; O(1) memory.
    Sketch,
}

impl StatsBackend {
    /// Parse a CLI flag value. Accepts `exact` and `sketch`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(Self::Exact),
            "sketch" => Some(Self::Sketch),
            _ => None,
        }
    }

    /// Stable label for reports and bench output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Sketch => "sketch",
        }
    }
}

/// Deterministic streaming quantile sketch over waiting times: a hybrid
/// of an exact window and a fixed-bucket base-2 log histogram (HDR
/// style, [`WaitSketch::SUB_BITS`] sub-bucket bits per octave).
///
/// The first [`WaitSketch::EXACT_WINDOW`] samples are kept verbatim, so
/// below that size every quantile — and therefore every report byte —
/// is identical to the `Exact` backend (the differential battery pins
/// this). The window overflow *collapses* the sketch: all samples move
/// into the histogram, later samples are bucketed directly, and
/// quantiles become bucket midpoints with relative error at most
/// `1 / MAX_REL_ERROR_DENOM` (plus 1 tick of integer slack; pinned by
/// the adversarial-distribution tests). The maximum is tracked exactly
/// in both regimes.
///
/// Everything is integer arithmetic over a fixed bucket layout, so the
/// collapsed state is independent of insertion order and serialization
/// is canonical: buckets are written sparsely as ascending
/// `[index, count]` pairs, bounding the checkpoint payload by the
/// bucket count — O(1) in the number of tasks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaitSketch {
    /// Un-collapsed samples in insertion order (empty once collapsed).
    exact: Vec<Ticks>,
    /// Dense bucket counts; empty before collapse,
    /// [`Self::NUM_BUCKETS`] entries after.
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact maximum over all samples.
    max: Ticks,
}

impl WaitSketch {
    /// Samples kept exactly before the sketch collapses to buckets.
    pub const EXACT_WINDOW: usize = 4096;
    /// Sub-bucket bits per octave: 2^6 = 64 log-linear buckets per
    /// power of two.
    const SUB_BITS: u32 = 6;
    /// Values below this are their own (exact) bucket.
    const LINEAR_MAX: u64 = 1 << Self::SUB_BITS;
    /// Total fixed buckets: 64 linear + 64 per octave for the 58
    /// octaves from 2^6 through 2^63.
    // BOUND: LINEAR_MAX = 64 and SUB_BITS = 6, tiny constants.
    const NUM_BUCKETS: usize = (Self::LINEAR_MAX as usize) * (1 + 64 - Self::SUB_BITS as usize);
    /// Collapsed-quantile relative error is at most `1 / this` (plus
    /// one tick of integer rounding slack): bucket width over bucket
    /// base is `1 / 2^SUB_BITS`, and midpoints halve it.
    pub const MAX_REL_ERROR_DENOM: u64 = 1 << (Self::SUB_BITS + 1);

    /// Whether the exact window has collapsed into buckets.
    #[must_use]
    pub fn is_collapsed(&self) -> bool {
        !self.counts.is_empty()
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum over all samples (0 when empty).
    #[must_use]
    pub fn max(&self) -> Ticks {
        self.max
    }

    /// Bucket index for value `v`: identity below
    /// [`Self::LINEAR_MAX`], then 64 log-linear buckets per octave.
    /// Monotone non-decreasing in `v`, which is what lets the
    /// cumulative-count walk in [`Self::quantile`] respect rank order.
    fn bucket_index(v: Ticks) -> usize {
        if v < Self::LINEAR_MAX {
            // BOUND: v < 64, fits usize.
            v as usize
        } else {
            // v >= 64 has at most 57 leading zeros, so exp is in 6..=63.
            let exp = 63 - v.leading_zeros();
            // Top SUB_BITS bits after the leading one select the
            // sub-bucket; the shifted value is in [64, 128).
            // BOUND: (v >> (exp - 6)) < 128, fits usize.
            let sub = (v >> (exp - Self::SUB_BITS)) as usize - Self::LINEAR_MAX as usize;
            // BOUND: exp <= 63 and LINEAR_MAX = 64, so the product and
            // sum stay far below NUM_BUCKETS = 3776.
            Self::LINEAR_MAX as usize * (1 + exp as usize - Self::SUB_BITS as usize) + sub
        }
    }

    /// Representative (midpoint) value for bucket `idx` — the inverse
    /// of [`Self::bucket_index`] up to the pinned error bound.
    fn bucket_value(idx: usize) -> Ticks {
        // BOUND: LINEAR_MAX = 64, fits usize.
        let linear = Self::LINEAR_MAX as usize;
        if idx < linear {
            idx as u64
        } else {
            let octave = (idx - linear) / linear; // exp - SUB_BITS
            let sub = ((idx - linear) % linear) as u64;
            // BOUND: octave <= 57 and (64 + sub) <= 127, so the shifted
            // base and the added half-width both stay below 2^64.
            let lo = (Self::LINEAR_MAX + sub) << octave;
            let width = 1u64 << octave;
            lo + width / 2
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: Ticks) {
        self.count += 1;
        self.max = self.max.max(v);
        if self.counts.is_empty() {
            self.exact.push(v);
            if self.exact.len() > Self::EXACT_WINDOW {
                self.collapse();
            }
        } else {
            self.counts[Self::bucket_index(v)] += 1;
        }
    }

    /// Move every exact sample into the bucket array. Bucket counts are
    /// commutative, so the collapsed state — and its serialization — is
    /// independent of the order the samples arrived in (pinned by the
    /// insertion-order tests).
    fn collapse(&mut self) {
        self.counts = vec![0; Self::NUM_BUCKETS];
        for &v in &self.exact {
            self.counts[Self::bucket_index(v)] += 1;
        }
        self.exact = Vec::new();
    }

    /// Nearest-rank quantile, `p` in `[0, 1]`, using exactly the
    /// `Exact` backend's rank formula so the two backends agree to the
    /// byte while the window holds.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Ticks {
        if self.count == 0 {
            return 0;
        }
        // BOUND: p in [0,1], so the rank is at most count - 1.
        let rank = ((self.count - 1) as f64 * p).round() as u64;
        if self.counts.is_empty() {
            let mut sorted = self.exact.clone();
            // TIEBREAK: u64 keys — equal waits are indistinguishable,
            // so an unstable sort cannot reorder anything observable.
            sorted.sort_unstable();
            // BOUND: rank < count = exact.len() <= EXACT_WINDOW.
            sorted[rank as usize]
        } else {
            let mut seen = 0u64;
            for (i, &c) in self.counts.iter().enumerate() {
                seen += c;
                if seen > rank {
                    return Self::bucket_value(i);
                }
            }
            // Unreachable: collapsed bucket counts sum to `count`,
            // which exceeds every valid rank; the exact max is still a
            // correct answer for any quantile of a distribution.
            self.max
        }
    }

    /// Tear down an *un-collapsed* sketch into its samples, insertion
    /// order preserved (backend switch back to `Exact`).
    fn take_exact(&mut self) -> Vec<Ticks> {
        std::mem::take(&mut self.exact)
    }
}

// Manual serde: the dense bucket array is written sparsely (ascending
// `[index, count]` pairs, nonzero only), bounding serialized size by
// the fixed bucket count rather than the task count, and making the
// encoding canonical — two sketches holding the same distribution
// serialize to identical bytes.
impl Serialize for WaitSketch {
    fn to_value(&self) -> serde::Value {
        let buckets: Vec<serde::Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| {
                serde::Value::Array(vec![
                    Serialize::to_value(&(i as u64)),
                    Serialize::to_value(&c),
                ])
            })
            .collect();
        serde::Value::Object(vec![
            ("count".to_string(), Serialize::to_value(&self.count)),
            ("max".to_string(), Serialize::to_value(&self.max)),
            (
                "collapsed".to_string(),
                serde::Value::Bool(self.is_collapsed()),
            ),
            ("exact".to_string(), Serialize::to_value(&self.exact)),
            ("buckets".to_string(), serde::Value::Array(buckets)),
        ])
    }
}

impl Deserialize for WaitSketch {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("WaitSketch: expected object"))?;
        let field = |k: &str| {
            serde::__find(obj, k)
                .ok_or_else(|| serde::Error::custom(format!("WaitSketch: missing {k}")))
        };
        let count: u64 = Deserialize::from_value(field("count")?)?;
        let max: Ticks = Deserialize::from_value(field("max")?)?;
        let collapsed = field("collapsed")?
            .as_bool()
            .ok_or_else(|| serde::Error::custom("WaitSketch: collapsed must be a bool"))?;
        let exact: Vec<Ticks> = Deserialize::from_value(field("exact")?)?;
        let pairs = field("buckets")?
            .as_array()
            .ok_or_else(|| serde::Error::custom("WaitSketch: buckets must be an array"))?;
        let mut counts = if collapsed {
            vec![0u64; Self::NUM_BUCKETS]
        } else {
            Vec::new()
        };
        let mut bucket_total = 0u64;
        let mut last_idx: Option<u64> = None;
        for pair in pairs {
            let parts = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| serde::Error::custom("WaitSketch: bucket must be [index, count]"))?;
            let idx: u64 = Deserialize::from_value(&parts[0])?;
            let c: u64 = Deserialize::from_value(&parts[1])?;
            if !collapsed || idx >= Self::NUM_BUCKETS as u64 || c == 0 {
                return Err(serde::Error::custom(format!(
                    "WaitSketch: invalid bucket entry [{idx}, {c}]"
                )));
            }
            if last_idx.is_some_and(|prev| prev >= idx) {
                return Err(serde::Error::custom(
                    "WaitSketch: bucket indices must be strictly ascending",
                ));
            }
            last_idx = Some(idx);
            // BOUND: idx checked against NUM_BUCKETS above.
            counts[idx as usize] = c;
            bucket_total += c;
        }
        let held = if collapsed {
            bucket_total
        } else {
            exact.len() as u64
        };
        if held != count {
            return Err(serde::Error::custom(format!(
                "WaitSketch: holds {held} samples but count says {count}"
            )));
        }
        Ok(Self {
            exact,
            counts,
            count,
            max,
        })
    }
}

/// Running accumulator over one simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Tasks created (`TotalCurGenTasks` → `TotalTasks`).
    pub generated: u64,
    /// Tasks completed (`TotalCompletedTasks`).
    pub completed: u64,
    /// Tasks discarded (`TotalDiscardedTasks`).
    pub discarded: u64,
    /// Placements per phase.
    pub phases: PhaseCounts,
    /// Per-allocation wasted-area accumulation (`Total_Wasted_Area`).
    pub total_wasted_area: u64,
    /// Σ `twait` over placed tasks (`Total_Task_Wait_Time`, Eq. 8).
    pub total_wait: u64,
    /// Σ (completion − creation) over completed tasks
    /// (`Total_Tasks_Running_Time`).
    pub total_running_time: u64,
    /// Σ configuration time paid (`Total_Configuration_Time`; equals
    /// Eq. 10 because every reconfiguration is charged as it happens).
    pub total_config_time: u64,
    /// Tasks killed by injected node failures (extension).
    pub failure_killed: u64,
    /// Node failures injected (extension).
    pub node_failures: u64,
    /// Bitstream loads that failed (fault-injection extension).
    pub reconfig_failures: u64,
    /// Reconfiguration retries scheduled after failed bitstream loads
    /// (fault-injection extension).
    pub reconfig_retries: u64,
    /// Tasks that failed mid-execution (fault-injection extension).
    pub task_failures: u64,
    /// Fault-killed tasks resubmitted to the scheduler (fault-injection
    /// extension).
    pub resubmissions: u64,
    /// Tasks discarded because of injected faults: killed by node
    /// failures, failed beyond the retry budget, or timed out in the
    /// suspension queue (fault-injection extension).
    pub tasks_lost: u64,
    /// Tasks shed by load-shedding: admission-policy rejections plus
    /// suspension-deadline timeouts (chaos-layer extension).
    #[serde(default)]
    pub tasks_shed: u64,
    /// Tasks placed degraded — on a strictly larger configuration — by
    /// the `degrade-to-closest-match` admission policy (chaos-layer
    /// extension).
    #[serde(default)]
    pub tasks_degraded: u64,
    /// Every placed task's waiting time, for distribution statistics
    /// (P50/P95/P99 in [`Metrics`]); one `u64` per placed task.
    // REBUILD: not silently defaulted — `Checkpoint` carries its own
    // `wait_samples` copy and `Simulation::resume` writes it back, so a
    // resumed run reports identical percentiles (pinned by the
    // byte-identical-resume tests).
    #[serde(skip)]
    pub wait_samples: Vec<Ticks>,
    /// Streaming waiting-time sketch ([`StatsBackend::Sketch`]); `None`
    /// under the default `Exact` backend, which keeps exact-mode
    /// checkpoints byte-identical to the seed. Unlike `wait_samples`
    /// the sketch *is* serialized — it is O(1)-sized — so checkpoints
    /// carry it directly and resume needs no rebuild step.
    #[serde(default)]
    pub sketch: Option<WaitSketch>,
    /// Sliding-window live metrics (service mode only; `None` in batch
    /// runs, which keeps batch checkpoints shape-stable).
    #[serde(default)]
    pub window: Option<WindowStats>,
}

impl Stats {
    /// Record a task arrival.
    pub fn record_arrival(&mut self) {
        self.generated += 1;
        if let Some(w) = &mut self.window {
            w.current.arrivals += 1;
        }
    }

    /// Record a placement: the phase that produced it, the waiting time
    /// (Eq. 8), the configuration time paid, the chosen node's leftover
    /// area, and whether the task came from the suspension queue.
    pub fn record_placement(
        &mut self,
        phase: PhaseKind,
        wait: Ticks,
        config_time: Ticks,
        wasted_after: Area,
        resumed: bool,
    ) {
        self.phases.bump(phase);
        if resumed {
            self.phases.resumed += 1;
        }
        self.total_wait += wait;
        self.total_config_time += config_time;
        // BOUND: per-task wasted area <= node area (Table II <= 4000); sum far below 2^64.
        self.total_wasted_area += wasted_after;
        if let Some(sk) = &mut self.sketch {
            sk.record(wait);
        } else {
            self.wait_samples.push(wait);
        }
        if let Some(w) = &mut self.window {
            w.current.placements += 1;
            w.current.wait_sum += wait;
        }
    }

    /// The active waiting-time accumulation backend.
    #[must_use]
    pub fn backend(&self) -> StatsBackend {
        if self.sketch.is_some() {
            StatsBackend::Sketch
        } else {
            StatsBackend::Exact
        }
    }

    /// Switch the waiting-time backend in place.
    ///
    /// `Exact → Sketch` re-records every held sample into a fresh
    /// sketch (lossless: the sketch keeps an exact window far larger
    /// than any single conversion source) and frees the sample vector.
    /// `Sketch → Exact` restores the samples while the sketch is still
    /// un-collapsed; a *collapsed* sketch no longer has them, so the
    /// request is deliberately a no-op (see [`StatsBackend`]).
    pub fn set_backend(&mut self, backend: StatsBackend) {
        match backend {
            StatsBackend::Sketch => {
                if self.sketch.is_none() {
                    let mut sk = WaitSketch::default();
                    for &w in &self.wait_samples {
                        sk.record(w);
                    }
                    self.wait_samples = Vec::new();
                    self.sketch = Some(sk);
                }
            }
            StatsBackend::Exact => {
                if let Some(sk) = &mut self.sketch {
                    if !sk.is_collapsed() {
                        self.wait_samples = sk.take_exact();
                        self.sketch = None;
                    }
                }
            }
        }
    }

    /// Record a completion with the task's total residence time
    /// (creation → completion).
    pub fn record_completion(&mut self, residence: Ticks) {
        self.completed += 1;
        self.total_running_time += residence;
        if let Some(w) = &mut self.window {
            w.current.completions += 1;
        }
    }

    /// Record a discard.
    pub fn record_discard(&mut self) {
        self.discarded += 1;
        if let Some(w) = &mut self.window {
            w.current.discards += 1;
        }
    }

    /// Record a failed bitstream load. The configuration time was already
    /// spent on the aborted attempt, so it is charged to
    /// `total_config_time` just like a successful reconfiguration
    /// (Eq. 10 counts time paid, not configurations achieved).
    pub fn record_reconfig_failure(&mut self, config_time: Ticks) {
        self.reconfig_failures += 1;
        self.total_config_time += config_time;
    }

    /// Finalize into the Table I metric set.
    #[must_use]
    pub fn finalize(
        &self,
        params: &SimParams,
        steps: StepCounter,
        end_time: Ticks,
        wasted_area_snapshot_end: Area,
        total_reconfigurations: u64,
        used_nodes: usize,
        total_suspensions: u64,
        suspension_peak: usize,
        mean_fragmentation_end: f64,
        node_downtime: Ticks,
    ) -> Metrics {
        let per_task = |x: u64| {
            if self.generated == 0 {
                0.0
            } else {
                x as f64 / self.generated as f64
            }
        };
        let (wait_p50, wait_p95, wait_p99, wait_max) = if let Some(sk) = &self.sketch {
            // Sketch backend: same nearest-rank formula, so identical
            // bytes while the exact window holds (differential-tested);
            // bounded-error midpoints beyond, exact max always.
            (
                sk.quantile(0.50),
                sk.quantile(0.95),
                sk.quantile(0.99),
                sk.max(),
            )
        } else {
            let mut waits = self.wait_samples.clone();
            // TIEBREAK: u64 keys — equal waits are indistinguishable, so an
            // unstable sort cannot reorder anything observable.
            waits.sort_unstable();
            let pct = |p: f64| -> Ticks {
                if waits.is_empty() {
                    0
                } else {
                    // BOUND: p in [0,1], so the index is at most waits.len() - 1.
                    let idx = ((waits.len() - 1) as f64 * p).round() as usize;
                    waits[idx]
                }
            };
            (
                pct(0.50),
                pct(0.95),
                pct(0.99),
                waits.last().copied().unwrap_or(0),
            )
        };
        Metrics {
            mode: params.mode.label().to_string(),
            total_nodes: params.total_nodes as u64,
            total_tasks_generated: self.generated,
            total_tasks_completed: self.completed,
            total_discarded_tasks: self.discarded,
            total_suspensions,
            suspension_peak_len: suspension_peak as u64,
            avg_wasted_area_per_task: per_task(self.total_wasted_area),
            wasted_area_snapshot_end,
            avg_running_time_per_task: if self.completed == 0 {
                0.0
            } else {
                self.total_running_time as f64 / self.completed as f64
            },
            avg_reconfig_count_per_node: total_reconfigurations as f64 / params.total_nodes as f64,
            total_reconfigurations,
            avg_config_time_per_task: per_task(self.total_config_time),
            total_config_time: self.total_config_time,
            avg_waiting_time_per_task: per_task(self.total_wait),
            wait_p50,
            wait_p95,
            wait_p99,
            wait_max,
            avg_scheduling_steps_per_task: per_task(steps.scheduling),
            scheduler_search_length: steps.scheduling,
            housekeeping_steps: steps.housekeeping,
            total_scheduler_workload: steps.total_workload(),
            total_used_nodes: used_nodes as u64,
            total_simulation_time: end_time,
            phases: self.phases,
            failure_killed: self.failure_killed,
            node_failures: self.node_failures,
            reconfig_failures: self.reconfig_failures,
            reconfig_retries: self.reconfig_retries,
            task_failures: self.task_failures,
            resubmissions: self.resubmissions,
            tasks_lost: self.tasks_lost,
            tasks_shed: self.tasks_shed,
            tasks_degraded: self.tasks_degraded,
            node_downtime,
            mean_fragmentation_end,
            domain_outages: 0,
            domain_restores: 0,
            domain_downtime: Vec::new(),
            mean_time_to_recover: 0.0,
            windows_closed: self.window.as_ref().map_or(0, |w| w.closed_total),
            window_peak_arrivals: self.window.as_ref().map_or(0, |w| w.peak_arrivals),
            window_peak_completions: self.window.as_ref().map_or(0, |w| w.peak_completions),
        }
    }
}

/// The finalized Table I metric set for one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Reconfiguration mode label ("full" / "partial").
    pub mode: String,
    /// Node count the run used.
    pub total_nodes: u64,
    /// Tasks generated.
    pub total_tasks_generated: u64,
    /// Tasks completed.
    pub total_tasks_completed: u64,
    /// Table I: *Total discarded tasks*.
    pub total_discarded_tasks: u64,
    /// Number of suspensions performed.
    pub total_suspensions: u64,
    /// Peak suspension-queue length.
    pub suspension_peak_len: u64,
    /// Table I: *Average wasted area per task* (Eq. 7, per-allocation
    /// accumulation).
    pub avg_wasted_area_per_task: f64,
    /// Literal Eq. 6 snapshot at end of run.
    pub wasted_area_snapshot_end: Area,
    /// Table I: *Average running time of each task* (arrival →
    /// completion).
    pub avg_running_time_per_task: f64,
    /// Table I: *Average reconfiguration count per node*.
    pub avg_reconfig_count_per_node: f64,
    /// Total reconfigurations across all nodes.
    pub total_reconfigurations: u64,
    /// Table I: *Average reconfiguration time per task* (Eq. 10 / tasks).
    pub avg_config_time_per_task: f64,
    /// Total configuration time paid (Eq. 10).
    pub total_config_time: Ticks,
    /// Table I: *Average waiting time per task* (Eq. 9).
    pub avg_waiting_time_per_task: f64,
    /// Median waiting time over placed tasks (distribution extension).
    pub wait_p50: Ticks,
    /// 95th-percentile waiting time over placed tasks.
    pub wait_p95: Ticks,
    /// 99th-percentile waiting time over placed tasks.
    pub wait_p99: Ticks,
    /// Maximum waiting time over placed tasks.
    pub wait_max: Ticks,
    /// Table I: *Average scheduling steps per task*.
    pub avg_scheduling_steps_per_task: f64,
    /// Scheduler search length (`Total_Search_Length_Scheduler`).
    pub scheduler_search_length: u64,
    /// Housekeeping steps by the resource information module.
    pub housekeeping_steps: u64,
    /// Table I: *Total scheduler workload* (search + housekeeping).
    pub total_scheduler_workload: u64,
    /// Table I: *Total used nodes* (nodes configured at least once).
    pub total_used_nodes: u64,
    /// Table I: *Total simulation time* (Eq. 5).
    pub total_simulation_time: Ticks,
    /// Placements per algorithmic phase.
    pub phases: PhaseCounts,
    /// Tasks killed by injected node failures (0 in paper runs).
    pub failure_killed: u64,
    /// Node failures injected (0 in paper runs).
    pub node_failures: u64,
    /// Bitstream loads that failed (0 in paper runs).
    #[serde(default)]
    pub reconfig_failures: u64,
    /// Reconfiguration retries scheduled after failed loads (0 in paper
    /// runs).
    #[serde(default)]
    pub reconfig_retries: u64,
    /// Tasks that failed mid-execution (0 in paper runs).
    #[serde(default)]
    pub task_failures: u64,
    /// Fault-killed tasks resubmitted to the scheduler (0 in paper runs).
    #[serde(default)]
    pub resubmissions: u64,
    /// Tasks discarded because of injected faults (0 in paper runs).
    #[serde(default)]
    pub tasks_lost: u64,
    /// Tasks shed by load-shedding — admission-policy rejections plus
    /// suspension-deadline timeouts (0 in paper runs).
    #[serde(default)]
    pub tasks_shed: u64,
    /// Tasks placed degraded on a strictly larger configuration by the
    /// `degrade-to-closest-match` admission policy (0 in paper runs).
    #[serde(default)]
    pub tasks_degraded: u64,
    /// Total ticks nodes spent failed, summed over nodes (0 in paper
    /// runs).
    #[serde(default)]
    pub node_downtime: Ticks,
    /// Mean external fragmentation over configured nodes at the end of
    /// the run (always 0 under the paper's scalar area model; nonzero
    /// only with `PlacementModel::Contiguous`).
    pub mean_fragmentation_end: f64,
    /// Correlated domain outages that started (0 without `--domains`).
    #[serde(default)]
    pub domain_outages: u64,
    /// Domain outages that completed — the domain was restored — before
    /// the run ended (0 without `--domains`).
    #[serde(default)]
    pub domain_restores: u64,
    /// Downtime per failure domain in ticks; open outages accrue to the
    /// end of the run. Empty without `--domains`.
    #[serde(default)]
    pub domain_downtime: Vec<Ticks>,
    /// Mean time-to-recover over completed domain outages (0 when none
    /// completed).
    #[serde(default)]
    pub mean_time_to_recover: f64,
    /// Sliding-window buckets closed over the service window (0 in
    /// batch runs).
    #[serde(default)]
    pub windows_closed: u64,
    /// Lifetime peak arrivals in one sliding-window bucket (0 in batch
    /// runs).
    #[serde(default)]
    pub window_peak_arrivals: u64,
    /// Lifetime peak completions in one sliding-window bucket (0 in
    /// batch runs).
    #[serde(default)]
    pub window_peak_completions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ReconfigMode;

    fn finalize(stats: &Stats, steps: StepCounter) -> Metrics {
        let params = SimParams::paper(100, 1000, ReconfigMode::Partial);
        stats.finalize(&params, steps, 5_000, 1234, 321, 77, 12, 4, 0.0, 0)
    }

    #[test]
    fn averages_divide_by_generated_tasks() {
        let mut s = Stats::default();
        for _ in 0..10 {
            s.record_arrival();
        }
        for i in 0..8 {
            s.record_placement(PhaseKind::Allocation, 100 + i, 10, 50, false);
        }
        let m = finalize(
            &s,
            StepCounter {
                scheduling: 500,
                housekeeping: 300,
            },
        );
        assert_eq!(m.total_tasks_generated, 10);
        // Σ wait = 8*100 + (0+..+7) = 828; /10 generated.
        assert!((m.avg_waiting_time_per_task - 82.8).abs() < 1e-9);
        assert!((m.avg_config_time_per_task - 8.0).abs() < 1e-9);
        assert!((m.avg_wasted_area_per_task - 40.0).abs() < 1e-9);
        assert!((m.avg_scheduling_steps_per_task - 50.0).abs() < 1e-9);
        assert_eq!(m.total_scheduler_workload, 800);
    }

    #[test]
    fn running_time_divides_by_completed() {
        let mut s = Stats::default();
        s.record_arrival();
        s.record_arrival();
        s.record_completion(1000);
        let m = finalize(&s, StepCounter::default());
        assert!((m.avg_running_time_per_task - 1000.0).abs() < 1e-9);
        assert_eq!(m.total_tasks_completed, 1);
    }

    #[test]
    fn reconfig_count_divides_by_node_count() {
        let s = Stats::default();
        let m = finalize(&s, StepCounter::default());
        // 321 reconfigs over 100 nodes.
        assert!((m.avg_reconfig_count_per_node - 3.21).abs() < 1e-9);
        assert_eq!(m.total_used_nodes, 77);
        assert_eq!(m.total_simulation_time, 5_000);
        assert_eq!(m.wasted_area_snapshot_end, 1234);
        assert_eq!(m.total_suspensions, 12);
        assert_eq!(m.suspension_peak_len, 4);
    }

    #[test]
    fn empty_run_produces_zeroes_not_nan() {
        let s = Stats::default();
        let m = finalize(&s, StepCounter::default());
        assert_eq!(m.avg_waiting_time_per_task, 0.0);
        assert_eq!(m.avg_running_time_per_task, 0.0);
        assert!(!m.avg_wasted_area_per_task.is_nan());
    }

    #[test]
    fn phase_counts_track_every_phase() {
        let mut s = Stats::default();
        s.record_placement(PhaseKind::Allocation, 0, 0, 0, false);
        s.record_placement(PhaseKind::Configuration, 0, 15, 0, false);
        s.record_placement(PhaseKind::PartialConfiguration, 0, 15, 0, true);
        s.record_placement(PhaseKind::PartialReconfiguration, 0, 15, 0, false);
        assert_eq!(s.phases.total(), 4);
        assert_eq!(s.phases.resumed, 1);
        assert_eq!(s.phases.allocation, 1);
        assert_eq!(s.phases.configuration, 1);
        assert_eq!(s.phases.partial_configuration, 1);
        assert_eq!(s.phases.partial_reconfiguration, 1);
        assert_eq!(s.total_config_time, 45);
    }

    #[test]
    fn wait_percentiles_computed_from_samples() {
        let mut s = Stats::default();
        for w in 1..=100u64 {
            s.record_arrival();
            s.record_placement(PhaseKind::Allocation, w, 0, 0, false);
        }
        let m = finalize(&s, StepCounter::default());
        // Nearest-rank on the 0-based index grid: round(99·0.5) = 50 →
        // the 51st order statistic.
        assert_eq!(m.wait_p50, 51);
        assert_eq!(m.wait_p95, 95);
        assert_eq!(m.wait_p99, 99);
        assert_eq!(m.wait_max, 100);
    }

    #[test]
    fn wait_percentiles_zero_when_nothing_placed() {
        let m = finalize(&Stats::default(), StepCounter::default());
        assert_eq!(m.wait_p50, 0);
        assert_eq!(m.wait_max, 0);
    }

    #[test]
    fn reconfig_failure_charges_config_time() {
        let mut s = Stats::default();
        s.record_reconfig_failure(15);
        s.record_reconfig_failure(15);
        assert_eq!(s.reconfig_failures, 2);
        assert_eq!(s.total_config_time, 30);
    }

    #[test]
    fn fault_counters_flow_into_metrics() {
        let mut s = Stats::default();
        s.record_reconfig_failure(15);
        s.reconfig_retries = 3;
        s.task_failures = 4;
        s.resubmissions = 5;
        s.tasks_lost = 2;
        let params = SimParams::paper(100, 1000, ReconfigMode::Partial);
        let m = s.finalize(
            &params,
            StepCounter::default(),
            5_000,
            0,
            0,
            0,
            0,
            0,
            0.0,
            777,
        );
        assert_eq!(m.reconfig_failures, 1);
        assert_eq!(m.reconfig_retries, 3);
        assert_eq!(m.task_failures, 4);
        assert_eq!(m.resubmissions, 5);
        assert_eq!(m.tasks_lost, 2);
        assert_eq!(m.node_downtime, 777);
    }

    #[test]
    fn window_buckets_roll_trim_and_track_peaks() {
        let mut s = Stats::default();
        s.window = Some(WindowStats::new(100, 2));
        for _ in 0..3 {
            s.record_arrival();
        }
        s.record_placement(PhaseKind::Allocation, 7, 0, 0, false);
        s.record_completion(50);
        let w = s.window.as_mut().unwrap();
        w.roll(100);
        assert_eq!(w.closed.len(), 1);
        assert_eq!(w.closed[0].arrivals, 3);
        assert_eq!(w.closed[0].placements, 1);
        assert_eq!(w.closed[0].wait_sum, 7);
        assert_eq!(w.closed[0].completions, 1);
        assert_eq!(w.current.start, 100);
        s.record_arrival();
        let w = s.window.as_mut().unwrap();
        // A long quiet gap closes (and trims) several empty buckets at once.
        w.roll(450);
        assert_eq!(w.closed.len(), 2);
        assert_eq!(w.closed_total, 4);
        assert_eq!(w.current.start, 400);
        assert_eq!(w.peak_arrivals, 3);
        assert_eq!(w.peak_completions, 1);
        // Rolling again at the same clock is a no-op.
        let before = w.clone();
        w.roll(450);
        assert_eq!(*w, before);
        let m = finalize(&s, StepCounter::default());
        assert_eq!(m.windows_closed, 4);
        assert_eq!(m.window_peak_arrivals, 3);
        assert_eq!(m.window_peak_completions, 1);
    }

    #[test]
    fn window_stats_absent_in_batch_metrics() {
        let m = finalize(&Stats::default(), StepCounter::default());
        assert_eq!(m.windows_closed, 0);
        assert_eq!(m.window_peak_arrivals, 0);
        assert_eq!(m.window_peak_completions, 0);
    }

    #[test]
    fn metrics_serde_round_trip() {
        let s = Stats::default();
        let m = finalize(&s, StepCounter::default());
        let js = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&js).unwrap();
        assert_eq!(m, back);
    }

    // ---- WaitSketch battery -------------------------------------------

    /// Exact nearest-rank quantile on a sample set, mirroring the
    /// `Exact` backend's formula.
    fn exact_quantile(samples: &[Ticks], p: f64) -> Ticks {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    fn sketch_of(samples: &[Ticks]) -> WaitSketch {
        let mut sk = WaitSketch::default();
        for &v in samples {
            sk.record(v);
        }
        sk
    }

    /// Deterministic splitmix64 stream for sample generation.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    const PCTS: [f64; 3] = [0.50, 0.95, 0.99];

    #[test]
    fn stats_backend_parse_and_label_round_trip() {
        for b in [StatsBackend::Exact, StatsBackend::Sketch] {
            assert_eq!(StatsBackend::parse(b.label()), Some(b));
        }
        assert_eq!(StatsBackend::parse("p2"), None);
        assert_eq!(StatsBackend::default(), StatsBackend::Exact);
    }

    #[test]
    fn sketch_matches_exact_backend_below_window() {
        // The flagship identity: while the exact window holds, sketch
        // percentiles equal the Exact backend's to the byte — including
        // the engine-realistic case of heavy ties and zeros.
        let mut state = 7u64;
        let samples: Vec<Ticks> = (0..WaitSketch::EXACT_WINDOW)
            .map(|_| match splitmix(&mut state) % 5 {
                0 => 0,
                1 => splitmix(&mut state) % 10,
                _ => splitmix(&mut state) % 2_000,
            })
            .collect();
        let sk = sketch_of(&samples);
        assert!(!sk.is_collapsed());
        for p in PCTS {
            assert_eq!(sk.quantile(p), exact_quantile(&samples, p));
        }
        assert_eq!(sk.max(), *samples.iter().max().unwrap());

        // And through a whole Stats accumulator: identical percentile
        // fields in the finalized metrics.
        let mut exact = Stats::default();
        let mut sketchy = Stats::default();
        sketchy.set_backend(StatsBackend::Sketch);
        for &w in &samples {
            exact.record_placement(PhaseKind::Allocation, w, 0, 0, false);
            sketchy.record_placement(PhaseKind::Allocation, w, 0, 0, false);
        }
        let (me, ms) = (
            finalize(&exact, StepCounter::default()),
            finalize(&sketchy, StepCounter::default()),
        );
        assert_eq!(
            (me.wait_p50, me.wait_p95, me.wait_p99, me.wait_max),
            (ms.wait_p50, ms.wait_p95, ms.wait_p99, ms.wait_max)
        );
    }

    #[test]
    fn collapsed_sketch_is_insertion_order_independent() {
        // Three engine-producible arrival orders of the same multiset —
        // ascending (drained suspension queue), descending, and
        // hash-shuffled (interleaved completions) — must produce
        // identical quantiles AND identical serialized bytes once
        // collapsed.
        let n = 3 * WaitSketch::EXACT_WINDOW;
        let base: Vec<Ticks> = (0..n as u64).map(|i| (i * i) % 50_000).collect();
        let mut ascending = base.clone();
        ascending.sort_unstable(); // TIEBREAK: u64 keys, ties identical
        let descending: Vec<Ticks> = ascending.iter().rev().copied().collect();
        let mut shuffled = base.clone();
        let mut state = 41u64;
        for i in (1..shuffled.len()).rev() {
            // BOUND: modulus keeps the index within 0..=i.
            shuffled.swap(i, (splitmix(&mut state) % (i as u64 + 1)) as usize);
        }
        let (a, b, c) = (
            sketch_of(&ascending),
            sketch_of(&descending),
            sketch_of(&shuffled),
        );
        assert!(a.is_collapsed());
        assert_eq!(a, b);
        assert_eq!(a, c);
        let bytes = serde_json::to_string(&a).unwrap();
        assert_eq!(bytes, serde_json::to_string(&b).unwrap());
        assert_eq!(bytes, serde_json::to_string(&c).unwrap());
        for p in PCTS {
            assert_eq!(a.quantile(p), b.quantile(p));
            assert_eq!(a.quantile(p), c.quantile(p));
        }
    }

    #[test]
    fn sketch_serde_round_trips_byte_identically_in_both_regimes() {
        let mut state = 97u64;
        for n in [0usize, 100, WaitSketch::EXACT_WINDOW + 1000] {
            let samples: Vec<Ticks> = (0..n).map(|_| splitmix(&mut state) % 1_000_000).collect();
            let sk = sketch_of(&samples);
            let js = serde_json::to_string(&sk).unwrap();
            let back: WaitSketch = serde_json::from_str(&js).unwrap();
            assert_eq!(sk, back);
            assert_eq!(js, serde_json::to_string(&back).unwrap());
            for p in PCTS {
                assert_eq!(sk.quantile(p), back.quantile(p));
            }
        }
    }

    #[test]
    fn sketch_rejects_corrupt_encodings() {
        let sk = sketch_of(&(0..5000u64).collect::<Vec<_>>());
        let js = serde_json::to_string(&sk).unwrap();
        // Bucket entries in an un-collapsed sketch, out-of-range
        // indices, zero counts, and count mismatches must all fail
        // loudly rather than deserialize into a lying sketch.
        for bad in [
            js.replace("\"collapsed\":true", "\"collapsed\":false"),
            js.replace("\"count\":5000", "\"count\":4999"),
        ] {
            assert!(
                serde_json::from_str::<WaitSketch>(&bad).is_err(),
                "corrupt sketch must not deserialize: {bad:.60}"
            );
        }
    }

    #[test]
    fn sketch_error_bounds_pinned_on_adversarial_distributions() {
        // Constant, bimodal, and heavy-tail sample sets, all past the
        // collapse point: every percentile must land within the
        // documented relative error of the true nearest-rank value,
        // and the max must be exact.
        let n = WaitSketch::EXACT_WINDOW * 2;
        let constant: Vec<Ticks> = vec![123_457; n];
        let bimodal: Vec<Ticks> = (0..n)
            .map(|i| if i % 2 == 0 { 10 } else { 5_000_000 })
            .collect();
        let mut state = 1234u64;
        let heavy_tail: Vec<Ticks> = (0..n)
            .map(|_| {
                // Pareto-ish: a power of two drawn log-uniformly up to
                // 2^40, times a small jitter — spans 12 octaves.
                let exp = splitmix(&mut state) % 40;
                (1u64 << exp) + splitmix(&mut state) % (1 << exp.min(20))
            })
            .collect();
        for samples in [&constant, &bimodal, &heavy_tail] {
            let sk = sketch_of(samples);
            assert!(sk.is_collapsed());
            assert_eq!(sk.max(), *samples.iter().max().unwrap(), "max stays exact");
            for p in PCTS {
                let truth = exact_quantile(samples, p);
                let got = sk.quantile(p);
                let tolerance = truth / WaitSketch::MAX_REL_ERROR_DENOM + 1;
                assert!(
                    got.abs_diff(truth) <= tolerance,
                    "p{p}: sketch {got} vs exact {truth} exceeds ±{tolerance}"
                );
            }
        }
    }

    #[test]
    fn sketch_checkpoint_payload_is_flat_in_sample_count() {
        // The O(n) memory-hazard regression (satellite: checkpoint size
        // must be flat across the ladder): 100× more samples may not
        // grow the serialized sketch beyond the fixed bucket budget.
        let mut state = 5u64;
        let small = {
            let samples: Vec<Ticks> = (0..10_000)
                .map(|_| splitmix(&mut state) % 100_000)
                .collect();
            serde_json::to_string(&sketch_of(&samples)).unwrap().len()
        };
        let large = {
            let samples: Vec<Ticks> = (0..1_000_000)
                .map(|_| splitmix(&mut state) % 100_000)
                .collect();
            serde_json::to_string(&sketch_of(&samples)).unwrap().len()
        };
        // Every possible bucket of the 100k-range distribution is
        // already populated at 10k samples; the only growth left is
        // digit width on the counts.
        assert!(
            large < small * 2,
            "sketch payload must be flat: {small} bytes at 10k, {large} at 1M"
        );
        // Hard ceiling: sparse encoding is bounded by the bucket count,
        // regardless of the sample count.
        assert!(
            large < 40_000,
            "collapsed sketch payload too large: {large}"
        );
    }

    #[test]
    fn stats_backend_conversions_are_lossless_until_collapse() {
        let mut s = Stats::default();
        for w in [5u64, 9, 9, 1_000, 77] {
            s.record_placement(PhaseKind::Allocation, w, 0, 0, false);
        }
        let before = finalize(&s, StepCounter::default());
        s.set_backend(StatsBackend::Sketch);
        assert_eq!(s.backend(), StatsBackend::Sketch);
        assert!(s.wait_samples.is_empty(), "samples moved into the sketch");
        let via_sketch = finalize(&s, StepCounter::default());
        assert_eq!(before, via_sketch);
        // Round-trip back while un-collapsed: insertion order restored.
        s.set_backend(StatsBackend::Exact);
        assert_eq!(s.backend(), StatsBackend::Exact);
        assert_eq!(s.wait_samples, vec![5, 9, 9, 1_000, 77]);
        // Collapse, then demand Exact: deliberately refused.
        s.set_backend(StatsBackend::Sketch);
        for _ in 0..=WaitSketch::EXACT_WINDOW {
            s.record_placement(PhaseKind::Allocation, 3, 0, 0, false);
        }
        assert!(s.sketch.as_ref().unwrap().is_collapsed());
        s.set_backend(StatsBackend::Exact);
        assert_eq!(
            s.backend(),
            StatsBackend::Sketch,
            "a collapsed sketch cannot be expanded back to samples"
        );
    }

    #[test]
    fn exact_mode_stats_serialization_is_unchanged_by_sketch_field() {
        // Exact-mode checkpoints must stay byte-compatible with the
        // seed: the sketch field is None and a deserializer that has
        // never heard of it (simulated by deleting the key) still
        // produces the same accumulator.
        let mut s = Stats::default();
        s.record_arrival();
        s.record_placement(PhaseKind::Configuration, 4, 15, 100, false);
        let js = serde_json::to_string(&s).unwrap();
        assert!(js.contains("\"sketch\":null"));
        let legacy = js.replace("\"sketch\":null,", "");
        let back: Stats = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.sketch, None);
        assert_eq!(back.generated, s.generated);
        assert_eq!(back.phases, s.phases);
    }
}
