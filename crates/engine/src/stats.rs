//! Statistics accumulation and the Table I performance metrics.
//!
//! [`Stats`] is the running accumulator the driver updates as events are
//! processed; [`Metrics`] is the finalized report (`MakeReport()` in the
//! UML), with one field per Table I row plus the extra counters this
//! implementation exposes.
//!
//! ## The wasted-area metric
//!
//! As discussed in DESIGN.md, Eq. 6/7 are reproduced in two forms:
//!
//! * `avg_wasted_area_per_task` (the paper's headline figure metric) —
//!   **per-allocation accumulation**: each time a task is placed, the
//!   chosen node's `AvailableArea` after the placement is added to
//!   `Total_Wasted_Area`; the average divides by tasks generated (Eq. 7).
//! * `wasted_area_snapshot_end` — the literal Eq. 6 sum at the end of the
//!   run, over nodes holding at least one configuration.

use crate::params::SimParams;
use dreamsim_model::{Area, StepCounter, Ticks};
use serde::{Deserialize, Serialize};

/// Which algorithmic phase of Section V placed a task (Fig. 5's four
/// parts plus suspension-queue resumption).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Direct allocation onto an already-configured idle instance.
    Allocation,
    /// Configuration of a blank node.
    Configuration,
    /// Partial configuration into a node's spare area.
    PartialConfiguration,
    /// Partial re-configuration after evicting idle regions
    /// (full-mode re-configuration uses this bucket too).
    PartialReconfiguration,
}

/// Per-phase placement counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCounts {
    /// Placements by direct allocation.
    pub allocation: u64,
    /// Placements by configuring a blank node.
    pub configuration: u64,
    /// Placements by partial configuration.
    pub partial_configuration: u64,
    /// Placements by (partial) re-configuration.
    pub partial_reconfiguration: u64,
    /// Placements that came out of the suspension queue (these also
    /// count in one of the four phase buckets).
    pub resumed: u64,
}

impl PhaseCounts {
    /// Total placements across the four phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.allocation
            + self.configuration
            + self.partial_configuration
            + self.partial_reconfiguration
    }

    /// Bump the counter for `phase`.
    pub fn bump(&mut self, phase: PhaseKind) {
        match phase {
            PhaseKind::Allocation => self.allocation += 1,
            PhaseKind::Configuration => self.configuration += 1,
            PhaseKind::PartialConfiguration => self.partial_configuration += 1,
            PhaseKind::PartialReconfiguration => self.partial_reconfiguration += 1,
        }
    }
}

/// One sliding-window bucket of live service metrics: event counts over
/// `[start, start + window)` ticks of simulated time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowBucket {
    /// First tick the bucket covers (inclusive).
    pub start: Ticks,
    /// Tasks that arrived inside the bucket.
    pub arrivals: u64,
    /// Tasks that completed inside the bucket.
    pub completions: u64,
    /// Tasks discarded inside the bucket.
    pub discards: u64,
    /// Placements inside the bucket.
    pub placements: u64,
    /// Σ waiting time over placements inside the bucket.
    pub wait_sum: u64,
}

/// Sliding-window live metrics for the open-system service driver
/// (`dreamsim serve`): a rolling sequence of fixed-length
/// [`WindowBucket`]s, with bounded retention of closed buckets and
/// lifetime peak counters that survive trimming. `None` in
/// [`Stats::window`] (every batch run) leaves the accumulator — and the
/// serialized checkpoint shape — untouched.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Bucket length, in ticks (nonzero).
    pub window: Ticks,
    /// How many closed buckets to retain; older ones are trimmed.
    pub retain: u64,
    /// The bucket currently accumulating.
    pub current: WindowBucket,
    /// Closed buckets, oldest first, at most `retain` of them.
    pub closed: Vec<WindowBucket>,
    /// Lifetime count of closed buckets (trimming does not decrement).
    pub closed_total: u64,
    /// Lifetime peak `arrivals` over closed buckets.
    pub peak_arrivals: u64,
    /// Lifetime peak `completions` over closed buckets.
    pub peak_completions: u64,
}

impl WindowStats {
    /// Fresh window accounting starting at tick 0.
    #[must_use]
    pub fn new(window: Ticks, retain: u64) -> Self {
        Self {
            window: window.max(1),
            retain: retain.max(1),
            current: WindowBucket::default(),
            closed: Vec::new(),
            closed_total: 0,
            peak_arrivals: 0,
            peak_completions: 0,
        }
    }

    /// Close every bucket that ends at or before `now` (simulated
    /// time), trimming retention as buckets close. Idempotent for a
    /// given `now`; callers roll before recording events at `now`.
    pub fn roll(&mut self, now: Ticks) {
        // BOUND: each iteration advances current.start by window >= 1,
        // so the loop runs at most (now - start) / window times.
        while self.current.start + self.window <= now {
            let next_start = self.current.start + self.window;
            let bucket = std::mem::take(&mut self.current);
            self.closed_total += 1;
            self.peak_arrivals = self.peak_arrivals.max(bucket.arrivals);
            self.peak_completions = self.peak_completions.max(bucket.completions);
            self.closed.push(bucket);
            // BOUND: retain >= 1, enforced in new().
            while self.closed.len() as u64 > self.retain {
                self.closed.remove(0);
            }
            self.current.start = next_start;
        }
    }
}

/// Running accumulator over one simulation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Tasks created (`TotalCurGenTasks` → `TotalTasks`).
    pub generated: u64,
    /// Tasks completed (`TotalCompletedTasks`).
    pub completed: u64,
    /// Tasks discarded (`TotalDiscardedTasks`).
    pub discarded: u64,
    /// Placements per phase.
    pub phases: PhaseCounts,
    /// Per-allocation wasted-area accumulation (`Total_Wasted_Area`).
    pub total_wasted_area: u64,
    /// Σ `twait` over placed tasks (`Total_Task_Wait_Time`, Eq. 8).
    pub total_wait: u64,
    /// Σ (completion − creation) over completed tasks
    /// (`Total_Tasks_Running_Time`).
    pub total_running_time: u64,
    /// Σ configuration time paid (`Total_Configuration_Time`; equals
    /// Eq. 10 because every reconfiguration is charged as it happens).
    pub total_config_time: u64,
    /// Tasks killed by injected node failures (extension).
    pub failure_killed: u64,
    /// Node failures injected (extension).
    pub node_failures: u64,
    /// Bitstream loads that failed (fault-injection extension).
    pub reconfig_failures: u64,
    /// Reconfiguration retries scheduled after failed bitstream loads
    /// (fault-injection extension).
    pub reconfig_retries: u64,
    /// Tasks that failed mid-execution (fault-injection extension).
    pub task_failures: u64,
    /// Fault-killed tasks resubmitted to the scheduler (fault-injection
    /// extension).
    pub resubmissions: u64,
    /// Tasks discarded because of injected faults: killed by node
    /// failures, failed beyond the retry budget, or timed out in the
    /// suspension queue (fault-injection extension).
    pub tasks_lost: u64,
    /// Tasks shed by load-shedding: admission-policy rejections plus
    /// suspension-deadline timeouts (chaos-layer extension).
    #[serde(default)]
    pub tasks_shed: u64,
    /// Tasks placed degraded — on a strictly larger configuration — by
    /// the `degrade-to-closest-match` admission policy (chaos-layer
    /// extension).
    #[serde(default)]
    pub tasks_degraded: u64,
    /// Every placed task's waiting time, for distribution statistics
    /// (P50/P95/P99 in [`Metrics`]); one `u64` per placed task.
    // REBUILD: not silently defaulted — `Checkpoint` carries its own
    // `wait_samples` copy and `Simulation::resume` writes it back, so a
    // resumed run reports identical percentiles (pinned by the
    // byte-identical-resume tests).
    #[serde(skip)]
    pub wait_samples: Vec<Ticks>,
    /// Sliding-window live metrics (service mode only; `None` in batch
    /// runs, which keeps batch checkpoints shape-stable).
    #[serde(default)]
    pub window: Option<WindowStats>,
}

impl Stats {
    /// Record a task arrival.
    pub fn record_arrival(&mut self) {
        self.generated += 1;
        if let Some(w) = &mut self.window {
            w.current.arrivals += 1;
        }
    }

    /// Record a placement: the phase that produced it, the waiting time
    /// (Eq. 8), the configuration time paid, the chosen node's leftover
    /// area, and whether the task came from the suspension queue.
    pub fn record_placement(
        &mut self,
        phase: PhaseKind,
        wait: Ticks,
        config_time: Ticks,
        wasted_after: Area,
        resumed: bool,
    ) {
        self.phases.bump(phase);
        if resumed {
            self.phases.resumed += 1;
        }
        self.total_wait += wait;
        self.total_config_time += config_time;
        // BOUND: per-task wasted area <= node area (Table II <= 4000); sum far below 2^64.
        self.total_wasted_area += wasted_after;
        self.wait_samples.push(wait);
        if let Some(w) = &mut self.window {
            w.current.placements += 1;
            w.current.wait_sum += wait;
        }
    }

    /// Record a completion with the task's total residence time
    /// (creation → completion).
    pub fn record_completion(&mut self, residence: Ticks) {
        self.completed += 1;
        self.total_running_time += residence;
        if let Some(w) = &mut self.window {
            w.current.completions += 1;
        }
    }

    /// Record a discard.
    pub fn record_discard(&mut self) {
        self.discarded += 1;
        if let Some(w) = &mut self.window {
            w.current.discards += 1;
        }
    }

    /// Record a failed bitstream load. The configuration time was already
    /// spent on the aborted attempt, so it is charged to
    /// `total_config_time` just like a successful reconfiguration
    /// (Eq. 10 counts time paid, not configurations achieved).
    pub fn record_reconfig_failure(&mut self, config_time: Ticks) {
        self.reconfig_failures += 1;
        self.total_config_time += config_time;
    }

    /// Finalize into the Table I metric set.
    #[must_use]
    pub fn finalize(
        &self,
        params: &SimParams,
        steps: StepCounter,
        end_time: Ticks,
        wasted_area_snapshot_end: Area,
        total_reconfigurations: u64,
        used_nodes: usize,
        total_suspensions: u64,
        suspension_peak: usize,
        mean_fragmentation_end: f64,
        node_downtime: Ticks,
    ) -> Metrics {
        let per_task = |x: u64| {
            if self.generated == 0 {
                0.0
            } else {
                x as f64 / self.generated as f64
            }
        };
        let mut waits = self.wait_samples.clone();
        // TIEBREAK: u64 keys — equal waits are indistinguishable, so an
        // unstable sort cannot reorder anything observable.
        waits.sort_unstable();
        let pct = |p: f64| -> Ticks {
            if waits.is_empty() {
                0
            } else {
                // BOUND: p in [0,1], so the index is at most waits.len() - 1.
                let idx = ((waits.len() - 1) as f64 * p).round() as usize;
                waits[idx]
            }
        };
        let (wait_p50, wait_p95, wait_p99, wait_max) = (
            pct(0.50),
            pct(0.95),
            pct(0.99),
            waits.last().copied().unwrap_or(0),
        );
        Metrics {
            mode: params.mode.label().to_string(),
            total_nodes: params.total_nodes as u64,
            total_tasks_generated: self.generated,
            total_tasks_completed: self.completed,
            total_discarded_tasks: self.discarded,
            total_suspensions,
            suspension_peak_len: suspension_peak as u64,
            avg_wasted_area_per_task: per_task(self.total_wasted_area),
            wasted_area_snapshot_end,
            avg_running_time_per_task: if self.completed == 0 {
                0.0
            } else {
                self.total_running_time as f64 / self.completed as f64
            },
            avg_reconfig_count_per_node: total_reconfigurations as f64 / params.total_nodes as f64,
            total_reconfigurations,
            avg_config_time_per_task: per_task(self.total_config_time),
            total_config_time: self.total_config_time,
            avg_waiting_time_per_task: per_task(self.total_wait),
            wait_p50,
            wait_p95,
            wait_p99,
            wait_max,
            avg_scheduling_steps_per_task: per_task(steps.scheduling),
            scheduler_search_length: steps.scheduling,
            housekeeping_steps: steps.housekeeping,
            total_scheduler_workload: steps.total_workload(),
            total_used_nodes: used_nodes as u64,
            total_simulation_time: end_time,
            phases: self.phases,
            failure_killed: self.failure_killed,
            node_failures: self.node_failures,
            reconfig_failures: self.reconfig_failures,
            reconfig_retries: self.reconfig_retries,
            task_failures: self.task_failures,
            resubmissions: self.resubmissions,
            tasks_lost: self.tasks_lost,
            tasks_shed: self.tasks_shed,
            tasks_degraded: self.tasks_degraded,
            node_downtime,
            mean_fragmentation_end,
            domain_outages: 0,
            domain_restores: 0,
            domain_downtime: Vec::new(),
            mean_time_to_recover: 0.0,
            windows_closed: self.window.as_ref().map_or(0, |w| w.closed_total),
            window_peak_arrivals: self.window.as_ref().map_or(0, |w| w.peak_arrivals),
            window_peak_completions: self.window.as_ref().map_or(0, |w| w.peak_completions),
        }
    }
}

/// The finalized Table I metric set for one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Reconfiguration mode label ("full" / "partial").
    pub mode: String,
    /// Node count the run used.
    pub total_nodes: u64,
    /// Tasks generated.
    pub total_tasks_generated: u64,
    /// Tasks completed.
    pub total_tasks_completed: u64,
    /// Table I: *Total discarded tasks*.
    pub total_discarded_tasks: u64,
    /// Number of suspensions performed.
    pub total_suspensions: u64,
    /// Peak suspension-queue length.
    pub suspension_peak_len: u64,
    /// Table I: *Average wasted area per task* (Eq. 7, per-allocation
    /// accumulation).
    pub avg_wasted_area_per_task: f64,
    /// Literal Eq. 6 snapshot at end of run.
    pub wasted_area_snapshot_end: Area,
    /// Table I: *Average running time of each task* (arrival →
    /// completion).
    pub avg_running_time_per_task: f64,
    /// Table I: *Average reconfiguration count per node*.
    pub avg_reconfig_count_per_node: f64,
    /// Total reconfigurations across all nodes.
    pub total_reconfigurations: u64,
    /// Table I: *Average reconfiguration time per task* (Eq. 10 / tasks).
    pub avg_config_time_per_task: f64,
    /// Total configuration time paid (Eq. 10).
    pub total_config_time: Ticks,
    /// Table I: *Average waiting time per task* (Eq. 9).
    pub avg_waiting_time_per_task: f64,
    /// Median waiting time over placed tasks (distribution extension).
    pub wait_p50: Ticks,
    /// 95th-percentile waiting time over placed tasks.
    pub wait_p95: Ticks,
    /// 99th-percentile waiting time over placed tasks.
    pub wait_p99: Ticks,
    /// Maximum waiting time over placed tasks.
    pub wait_max: Ticks,
    /// Table I: *Average scheduling steps per task*.
    pub avg_scheduling_steps_per_task: f64,
    /// Scheduler search length (`Total_Search_Length_Scheduler`).
    pub scheduler_search_length: u64,
    /// Housekeeping steps by the resource information module.
    pub housekeeping_steps: u64,
    /// Table I: *Total scheduler workload* (search + housekeeping).
    pub total_scheduler_workload: u64,
    /// Table I: *Total used nodes* (nodes configured at least once).
    pub total_used_nodes: u64,
    /// Table I: *Total simulation time* (Eq. 5).
    pub total_simulation_time: Ticks,
    /// Placements per algorithmic phase.
    pub phases: PhaseCounts,
    /// Tasks killed by injected node failures (0 in paper runs).
    pub failure_killed: u64,
    /// Node failures injected (0 in paper runs).
    pub node_failures: u64,
    /// Bitstream loads that failed (0 in paper runs).
    #[serde(default)]
    pub reconfig_failures: u64,
    /// Reconfiguration retries scheduled after failed loads (0 in paper
    /// runs).
    #[serde(default)]
    pub reconfig_retries: u64,
    /// Tasks that failed mid-execution (0 in paper runs).
    #[serde(default)]
    pub task_failures: u64,
    /// Fault-killed tasks resubmitted to the scheduler (0 in paper runs).
    #[serde(default)]
    pub resubmissions: u64,
    /// Tasks discarded because of injected faults (0 in paper runs).
    #[serde(default)]
    pub tasks_lost: u64,
    /// Tasks shed by load-shedding — admission-policy rejections plus
    /// suspension-deadline timeouts (0 in paper runs).
    #[serde(default)]
    pub tasks_shed: u64,
    /// Tasks placed degraded on a strictly larger configuration by the
    /// `degrade-to-closest-match` admission policy (0 in paper runs).
    #[serde(default)]
    pub tasks_degraded: u64,
    /// Total ticks nodes spent failed, summed over nodes (0 in paper
    /// runs).
    #[serde(default)]
    pub node_downtime: Ticks,
    /// Mean external fragmentation over configured nodes at the end of
    /// the run (always 0 under the paper's scalar area model; nonzero
    /// only with `PlacementModel::Contiguous`).
    pub mean_fragmentation_end: f64,
    /// Correlated domain outages that started (0 without `--domains`).
    #[serde(default)]
    pub domain_outages: u64,
    /// Domain outages that completed — the domain was restored — before
    /// the run ended (0 without `--domains`).
    #[serde(default)]
    pub domain_restores: u64,
    /// Downtime per failure domain in ticks; open outages accrue to the
    /// end of the run. Empty without `--domains`.
    #[serde(default)]
    pub domain_downtime: Vec<Ticks>,
    /// Mean time-to-recover over completed domain outages (0 when none
    /// completed).
    #[serde(default)]
    pub mean_time_to_recover: f64,
    /// Sliding-window buckets closed over the service window (0 in
    /// batch runs).
    #[serde(default)]
    pub windows_closed: u64,
    /// Lifetime peak arrivals in one sliding-window bucket (0 in batch
    /// runs).
    #[serde(default)]
    pub window_peak_arrivals: u64,
    /// Lifetime peak completions in one sliding-window bucket (0 in
    /// batch runs).
    #[serde(default)]
    pub window_peak_completions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ReconfigMode;

    fn finalize(stats: &Stats, steps: StepCounter) -> Metrics {
        let params = SimParams::paper(100, 1000, ReconfigMode::Partial);
        stats.finalize(&params, steps, 5_000, 1234, 321, 77, 12, 4, 0.0, 0)
    }

    #[test]
    fn averages_divide_by_generated_tasks() {
        let mut s = Stats::default();
        for _ in 0..10 {
            s.record_arrival();
        }
        for i in 0..8 {
            s.record_placement(PhaseKind::Allocation, 100 + i, 10, 50, false);
        }
        let m = finalize(
            &s,
            StepCounter {
                scheduling: 500,
                housekeeping: 300,
            },
        );
        assert_eq!(m.total_tasks_generated, 10);
        // Σ wait = 8*100 + (0+..+7) = 828; /10 generated.
        assert!((m.avg_waiting_time_per_task - 82.8).abs() < 1e-9);
        assert!((m.avg_config_time_per_task - 8.0).abs() < 1e-9);
        assert!((m.avg_wasted_area_per_task - 40.0).abs() < 1e-9);
        assert!((m.avg_scheduling_steps_per_task - 50.0).abs() < 1e-9);
        assert_eq!(m.total_scheduler_workload, 800);
    }

    #[test]
    fn running_time_divides_by_completed() {
        let mut s = Stats::default();
        s.record_arrival();
        s.record_arrival();
        s.record_completion(1000);
        let m = finalize(&s, StepCounter::default());
        assert!((m.avg_running_time_per_task - 1000.0).abs() < 1e-9);
        assert_eq!(m.total_tasks_completed, 1);
    }

    #[test]
    fn reconfig_count_divides_by_node_count() {
        let s = Stats::default();
        let m = finalize(&s, StepCounter::default());
        // 321 reconfigs over 100 nodes.
        assert!((m.avg_reconfig_count_per_node - 3.21).abs() < 1e-9);
        assert_eq!(m.total_used_nodes, 77);
        assert_eq!(m.total_simulation_time, 5_000);
        assert_eq!(m.wasted_area_snapshot_end, 1234);
        assert_eq!(m.total_suspensions, 12);
        assert_eq!(m.suspension_peak_len, 4);
    }

    #[test]
    fn empty_run_produces_zeroes_not_nan() {
        let s = Stats::default();
        let m = finalize(&s, StepCounter::default());
        assert_eq!(m.avg_waiting_time_per_task, 0.0);
        assert_eq!(m.avg_running_time_per_task, 0.0);
        assert!(!m.avg_wasted_area_per_task.is_nan());
    }

    #[test]
    fn phase_counts_track_every_phase() {
        let mut s = Stats::default();
        s.record_placement(PhaseKind::Allocation, 0, 0, 0, false);
        s.record_placement(PhaseKind::Configuration, 0, 15, 0, false);
        s.record_placement(PhaseKind::PartialConfiguration, 0, 15, 0, true);
        s.record_placement(PhaseKind::PartialReconfiguration, 0, 15, 0, false);
        assert_eq!(s.phases.total(), 4);
        assert_eq!(s.phases.resumed, 1);
        assert_eq!(s.phases.allocation, 1);
        assert_eq!(s.phases.configuration, 1);
        assert_eq!(s.phases.partial_configuration, 1);
        assert_eq!(s.phases.partial_reconfiguration, 1);
        assert_eq!(s.total_config_time, 45);
    }

    #[test]
    fn wait_percentiles_computed_from_samples() {
        let mut s = Stats::default();
        for w in 1..=100u64 {
            s.record_arrival();
            s.record_placement(PhaseKind::Allocation, w, 0, 0, false);
        }
        let m = finalize(&s, StepCounter::default());
        // Nearest-rank on the 0-based index grid: round(99·0.5) = 50 →
        // the 51st order statistic.
        assert_eq!(m.wait_p50, 51);
        assert_eq!(m.wait_p95, 95);
        assert_eq!(m.wait_p99, 99);
        assert_eq!(m.wait_max, 100);
    }

    #[test]
    fn wait_percentiles_zero_when_nothing_placed() {
        let m = finalize(&Stats::default(), StepCounter::default());
        assert_eq!(m.wait_p50, 0);
        assert_eq!(m.wait_max, 0);
    }

    #[test]
    fn reconfig_failure_charges_config_time() {
        let mut s = Stats::default();
        s.record_reconfig_failure(15);
        s.record_reconfig_failure(15);
        assert_eq!(s.reconfig_failures, 2);
        assert_eq!(s.total_config_time, 30);
    }

    #[test]
    fn fault_counters_flow_into_metrics() {
        let mut s = Stats::default();
        s.record_reconfig_failure(15);
        s.reconfig_retries = 3;
        s.task_failures = 4;
        s.resubmissions = 5;
        s.tasks_lost = 2;
        let params = SimParams::paper(100, 1000, ReconfigMode::Partial);
        let m = s.finalize(
            &params,
            StepCounter::default(),
            5_000,
            0,
            0,
            0,
            0,
            0,
            0.0,
            777,
        );
        assert_eq!(m.reconfig_failures, 1);
        assert_eq!(m.reconfig_retries, 3);
        assert_eq!(m.task_failures, 4);
        assert_eq!(m.resubmissions, 5);
        assert_eq!(m.tasks_lost, 2);
        assert_eq!(m.node_downtime, 777);
    }

    #[test]
    fn window_buckets_roll_trim_and_track_peaks() {
        let mut s = Stats::default();
        s.window = Some(WindowStats::new(100, 2));
        for _ in 0..3 {
            s.record_arrival();
        }
        s.record_placement(PhaseKind::Allocation, 7, 0, 0, false);
        s.record_completion(50);
        let w = s.window.as_mut().unwrap();
        w.roll(100);
        assert_eq!(w.closed.len(), 1);
        assert_eq!(w.closed[0].arrivals, 3);
        assert_eq!(w.closed[0].placements, 1);
        assert_eq!(w.closed[0].wait_sum, 7);
        assert_eq!(w.closed[0].completions, 1);
        assert_eq!(w.current.start, 100);
        s.record_arrival();
        let w = s.window.as_mut().unwrap();
        // A long quiet gap closes (and trims) several empty buckets at once.
        w.roll(450);
        assert_eq!(w.closed.len(), 2);
        assert_eq!(w.closed_total, 4);
        assert_eq!(w.current.start, 400);
        assert_eq!(w.peak_arrivals, 3);
        assert_eq!(w.peak_completions, 1);
        // Rolling again at the same clock is a no-op.
        let before = w.clone();
        w.roll(450);
        assert_eq!(*w, before);
        let m = finalize(&s, StepCounter::default());
        assert_eq!(m.windows_closed, 4);
        assert_eq!(m.window_peak_arrivals, 3);
        assert_eq!(m.window_peak_completions, 1);
    }

    #[test]
    fn window_stats_absent_in_batch_metrics() {
        let m = finalize(&Stats::default(), StepCounter::default());
        assert_eq!(m.windows_closed, 0);
        assert_eq!(m.window_peak_arrivals, 0);
        assert_eq!(m.window_peak_completions, 0);
    }

    #[test]
    fn metrics_serde_round_trip() {
        let s = Stats::default();
        let m = finalize(&s, StepCounter::default());
        let js = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&js).unwrap();
        assert_eq!(m, back);
    }
}
