//! # dreamsim-engine
//!
//! The DReAMSim core subsystem (Section III/IV of the paper): the
//! discrete-event clock, the job-submission machinery, statistics
//! accumulation for every Table I metric, and report generation (the
//! output subsystem's XML report plus JSON/CSV).
//!
//! The engine is policy-agnostic: scheduling policies implement
//! [`sim::SchedulePolicy`] (the paper's `Scheduler` class) and workload
//! generators implement [`sim::TaskSource`] (the input subsystem's
//! synthetic-task generation / real-workload feed). The concrete policies
//! live in `dreamsim-sched`, the generators in `dreamsim-workload`.
//!
//! ## Time model
//!
//! Time advances in integer *timeticks* (Eq. 5). The default driver is
//! event-driven: the clock jumps to the next scheduled event, which
//! produces identical traces to the paper's tick-by-tick loop because
//! nothing observable changes between events. A literal tick-stepped
//! driver ([`sim::Simulation::run_tick_stepped`]) is kept for
//! cross-validation (DESIGN.md ablation A4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod checkpoint;
pub mod compact;
pub mod event;
pub mod fault;
pub mod init;
pub mod monitor;
pub mod params;
pub mod profile;
pub mod report;
pub mod ring;
pub mod service;
pub mod sim;
pub mod stats;

pub use audit::AuditError;
pub use checkpoint::{
    read_checkpoint, write_checkpoint, write_checkpoint_compat_v1, Checkpoint, CheckpointError,
    FORMAT_VERSION, OLDEST_READABLE_VERSION,
};
pub use dreamsim_model::SearchBackend;
pub use event::{Event, EventQueue, EventQueueBackend};
pub use fault::FaultModel;
pub use monitor::{NullObserver, Observer, RecordingMonitor};
pub use params::{
    AdmissionPolicy, ArrivalDistribution, BurstWindow, DomainOutageKind, DomainParams, FaultParams,
    ParamsError, PlacementModel, ReconfigMode, ScriptedOutage, ServiceParams, SimParams,
};
pub use profile::PhaseProfile;
pub use report::Report;
pub use ring::{scan_ring, CheckpointRing, RingEntry};
pub use service::{
    recover_from_ring, serve, RecoveryReport, RejectedSnapshot, ServiceError, ServiceLegEnd,
    ServiceLegOptions, ServiceOptions, ServiceOutcome, Watchdog, WatchdogCondition, WatchdogDiag,
    WatchdogParams,
};
pub use sim::{
    Decision, DiscardReason, PlacePhase, Placement, Resume, RunError, RunOptions, RunResult,
    SchedCtx, SchedulePolicy, SimScratch, Simulation, SourceYield, TaskSource, TaskSpec, TaskTable,
};
pub use stats::{
    Metrics, PhaseCounts, PhaseKind, Stats, StatsBackend, WaitSketch, WindowBucket, WindowStats,
};
