//! Resource generation (the user-defined resource specification module
//! of the input subsystem): `InitNodes()` and `InitConfigs()`.
//!
//! Nodes receive a `TotalArea` uniformly from the node-area range and a
//! network delay from the network-delay range; configurations receive a
//! `ReqArea` and `ConfigTime` from their ranges (Table II). For workload
//! realism the generator also assigns processor types, parameters, device
//! families, and capability sets, none of which constrain the paper's
//! case-study scheduler.

use crate::params::SimParams;
use dreamsim_model::caps::{Capabilities, Capability, DeviceFamily};
use dreamsim_model::config::{Config, Param, ProcessorType};
use dreamsim_model::{ConfigId, Node, NodeId};
use dreamsim_rng::Rng;

/// Generate the configuration list (`InitConfigs()`).
#[must_use]
pub fn generate_configs(params: &SimParams, rng: &mut Rng) -> Vec<Config> {
    (0..params.total_configs)
        .map(|i| {
            let req_area = rng.uniform_inclusive(params.config_area.lo, params.config_area.hi);
            let config_time = rng.uniform_inclusive(params.config_time.lo, params.config_time.hi);
            let (ptype, cfg_params) = random_ptype(rng);
            // Capability-constraint extension: each configuration may
            // demand hardware features of its host (never the
            // PartialReconfig pseudo-capability, which every node has).
            let mut required = Capabilities::none();
            if params.capability_requirement_prob > 0.0 {
                for c in Capability::ALL {
                    if c != Capability::PartialReconfig
                        && rng.bernoulli(params.capability_requirement_prob)
                    {
                        required.insert(c);
                    }
                }
            }
            Config::new(ConfigId::from_index(i), req_area, config_time)
                .with_ptype(ptype)
                .with_params(cfg_params)
                .with_required_caps(required)
        })
        .collect()
}

/// Generate the node table (`InitNodes()`).
#[must_use]
pub fn generate_nodes(params: &SimParams, rng: &mut Rng) -> Vec<Node> {
    (0..params.total_nodes)
        .map(|i| {
            let total_area = rng.uniform_inclusive(params.node_area.lo, params.node_area.hi);
            let delay = rng.uniform_inclusive(params.network_delay.lo, params.network_delay.hi);
            let family = DeviceFamily::ALL[rng.index(DeviceFamily::ALL.len())];
            let mut caps = Capabilities::none();
            for c in Capability::ALL {
                if rng.bernoulli(0.5) {
                    caps.insert(c);
                }
            }
            // Every node in the partial-reconfiguration experiments can
            // partially reconfigure.
            caps.insert(Capability::PartialReconfig);
            let node = Node::new(NodeId::from_index(i), total_area, delay)
                .with_family(family)
                .with_caps(caps);
            match params.placement {
                crate::params::PlacementModel::Scalar => node,
                crate::params::PlacementModel::Contiguous => {
                    node.with_contiguous(dreamsim_model::GapFit::FirstFit)
                }
            }
        })
        .collect()
}

/// Draw a random processor type with plausible parameters (the paper's
/// `Ptype` examples: multipliers, systolic arrays, soft-core processors
/// such as ρ-VEX, custom signal processors).
fn random_ptype(rng: &mut Rng) -> (ProcessorType, Vec<Param>) {
    match rng.index(4) {
        0 => {
            let width = [16u16, 32, 64][rng.index(3)];
            (
                ProcessorType::Multiplier { width_bits: width },
                vec![Param {
                    name: "width_bits".into(),
                    value: i64::from(width),
                }],
            )
        }
        1 => {
            // BOUND: uniform_below(7) < 7; both draws fit u16.
            let rows = 2 + rng.uniform_below(7) as u16;
            // BOUND: uniform_below(7) < 7, fits u16.
            let cols = 2 + rng.uniform_below(7) as u16;
            (
                ProcessorType::SystolicArray { rows, cols },
                vec![
                    Param {
                        name: "rows".into(),
                        value: i64::from(rows),
                    },
                    Param {
                        name: "cols".into(),
                        value: i64::from(cols),
                    },
                ],
            )
        }
        2 => {
            // ρ-VEX-style VLIW parameterization.
            let issues = [1u8, 2, 4, 8][rng.index(4)];
            let alus = issues;
            let multipliers = (issues / 2).max(1);
            let memory_slots = (issues / 2).max(1);
            let clusters = [1u8, 2][rng.index(2)];
            (
                ProcessorType::SoftCoreVliw {
                    issues,
                    alus,
                    multipliers,
                    memory_slots,
                    clusters,
                },
                vec![
                    Param {
                        name: "issues".into(),
                        value: i64::from(issues),
                    },
                    Param {
                        name: "clusters".into(),
                        value: i64::from(clusters),
                    },
                ],
            )
        }
        _ => {
            // BOUND: uniform_below(16) < 16; 8 + 8*15 fits u16.
            let taps = 8 + 8 * rng.uniform_below(16) as u16;
            (
                ProcessorType::SignalProcessor { taps },
                vec![Param {
                    name: "taps".into(),
                    value: i64::from(taps),
                }],
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ReconfigMode;

    fn params() -> SimParams {
        SimParams::paper(200, 1000, ReconfigMode::Partial)
    }

    #[test]
    fn configs_respect_table_ii_ranges() {
        let p = params();
        let mut rng = Rng::seed_from(1);
        let configs = generate_configs(&p, &mut rng);
        assert_eq!(configs.len(), 50);
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(c.id.index(), i, "ids dense and ordered");
            assert!(p.config_area.contains(c.req_area), "area {}", c.req_area);
            assert!(p.config_time.contains(c.config_time));
        }
    }

    #[test]
    fn nodes_respect_table_ii_ranges() {
        let p = params();
        let mut rng = Rng::seed_from(2);
        let nodes = generate_nodes(&p, &mut rng);
        assert_eq!(nodes.len(), 200);
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.index(), i);
            assert!(p.node_area.contains(n.total_area));
            assert!(p.network_delay.contains(n.network_delay));
            assert!(n.is_blank());
            assert!(n.caps.contains(Capability::PartialReconfig));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = params();
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        assert_eq!(generate_configs(&p, &mut a), generate_configs(&p, &mut b));
        assert_eq!(generate_nodes(&p, &mut a), generate_nodes(&p, &mut b));
    }

    #[test]
    fn ptype_variety_appears() {
        let p = params();
        let mut rng = Rng::seed_from(3);
        let configs = generate_configs(&p, &mut rng);
        let labels: std::collections::HashSet<&str> =
            configs.iter().map(|c| c.ptype.label()).collect();
        assert!(
            labels.len() >= 3,
            "expected several Ptype classes, got {labels:?}"
        );
    }

    #[test]
    fn degenerate_single_point_ranges() {
        let mut p = params();
        p.config_area = crate::params::Range::new(500, 500);
        p.config_time = crate::params::Range::new(12, 12);
        let mut rng = Rng::seed_from(4);
        for c in generate_configs(&p, &mut rng) {
            assert_eq!(c.req_area, 500);
            assert_eq!(c.config_time, 12);
        }
    }
}
