//! The monitoring module: observers that watch simulation events.
//!
//! "The current states of different nodes can be checked by the
//! monitoring module" (Section III). Observers receive every lifecycle
//! event plus periodic resource snapshots; [`RecordingMonitor`] is the
//! bundled implementation that collects a utilization time series and
//! event counts, and the CLI uses it for progress output.

use crate::sim::{DiscardReason, Placement};
use dreamsim_model::{NodeId, NodeState, ResourceManager, Task, Ticks};

/// Callbacks invoked by the simulation driver. All default to no-ops so
/// observers implement only what they need.
#[allow(unused_variables)]
pub trait Observer {
    /// A task arrived at the RMS.
    fn on_arrival(&mut self, now: Ticks, task: &Task) {}
    /// A task was placed on a node.
    fn on_placement(&mut self, now: Ticks, task: &Task, placement: &Placement) {}
    /// A task was parked in the suspension queue.
    fn on_suspend(&mut self, now: Ticks, task: &Task) {}
    /// A task was discarded.
    fn on_discard(&mut self, now: Ticks, task: &Task, reason: DiscardReason) {}
    /// A task completed.
    fn on_completion(&mut self, now: Ticks, task: &Task) {}
    /// A node failed (failure-injection extension).
    fn on_node_failure(&mut self, now: Ticks, node: NodeId) {}
    /// A failed node was repaired.
    fn on_node_repair(&mut self, now: Ticks, node: NodeId) {}
    /// A bitstream load failed during placement (fault-injection
    /// extension); `attempt` counts failed attempts for this task so far.
    fn on_reconfig_failed(&mut self, now: Ticks, task: &Task, attempt: u32) {}
    /// A task failed mid-execution (fault-injection extension).
    fn on_task_failed(&mut self, now: Ticks, task: &Task) {}
    /// A fault-killed task was resubmitted to the scheduler
    /// (fault-injection extension); `attempt` counts resubmissions.
    fn on_resubmit(&mut self, now: Ticks, task: &Task, attempt: u32) {}
    /// A correlated failure-domain outage started (chaos-layer
    /// extension). Member nodes report their own
    /// [`on_node_failure`](Self::on_node_failure) calls first.
    fn on_domain_outage(&mut self, now: Ticks, domain: u32) {}
    /// A failure-domain outage ended; member-node
    /// [`on_node_repair`](Self::on_node_repair) calls follow.
    fn on_domain_restore(&mut self, now: Ticks, domain: u32) {}
    /// Periodic resource snapshot (taken at every arrival).
    fn on_snapshot(&mut self, now: Ticks, resources: &ResourceManager, suspended: usize) {}
}

/// Observer that ignores everything (useful as a default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// One utilization sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UtilizationSample {
    /// Sample time.
    pub time: Ticks,
    /// Fraction of nodes with at least one running task.
    pub busy_fraction: f64,
    /// Fraction of nodes with no configuration.
    pub blank_fraction: f64,
    /// Suspension-queue length.
    pub suspended: usize,
}

/// Bundled monitor recording counts and a utilization time series.
#[derive(Clone, Debug, Default)]
pub struct RecordingMonitor {
    /// Minimum ticks between stored snapshots (0 stores every snapshot).
    pub sample_interval: Ticks,
    last_sample: Option<Ticks>,
    /// Utilization time series.
    pub samples: Vec<UtilizationSample>,
    /// Arrivals seen.
    pub arrivals: u64,
    /// Placements seen.
    pub placements: u64,
    /// Suspensions seen.
    pub suspensions: u64,
    /// Discards seen.
    pub discards: u64,
    /// Completions seen.
    pub completions: u64,
    /// Node failures seen.
    pub failures: u64,
    /// Node repairs seen.
    pub repairs: u64,
    /// Failed bitstream loads seen.
    pub reconfig_failures: u64,
    /// Mid-execution task failures seen.
    pub task_failures: u64,
    /// Resubmissions seen.
    pub resubmissions: u64,
    /// Domain outages seen (chaos-layer extension).
    pub domain_outages: u64,
    /// Domain restores seen.
    pub domain_restores: u64,
}

impl RecordingMonitor {
    /// A monitor storing at most one sample per `sample_interval` ticks.
    #[must_use]
    pub fn new(sample_interval: Ticks) -> Self {
        Self {
            sample_interval,
            ..Self::default()
        }
    }
}

impl Observer for RecordingMonitor {
    fn on_arrival(&mut self, _now: Ticks, _task: &Task) {
        self.arrivals += 1;
    }

    fn on_placement(&mut self, _now: Ticks, _task: &Task, _p: &Placement) {
        self.placements += 1;
    }

    fn on_suspend(&mut self, _now: Ticks, _task: &Task) {
        self.suspensions += 1;
    }

    fn on_discard(&mut self, _now: Ticks, _task: &Task, _reason: DiscardReason) {
        self.discards += 1;
    }

    fn on_completion(&mut self, _now: Ticks, _task: &Task) {
        self.completions += 1;
    }

    fn on_node_failure(&mut self, _now: Ticks, _node: NodeId) {
        self.failures += 1;
    }

    fn on_node_repair(&mut self, _now: Ticks, _node: NodeId) {
        self.repairs += 1;
    }

    fn on_reconfig_failed(&mut self, _now: Ticks, _task: &Task, _attempt: u32) {
        self.reconfig_failures += 1;
    }

    fn on_task_failed(&mut self, _now: Ticks, _task: &Task) {
        self.task_failures += 1;
    }

    fn on_resubmit(&mut self, _now: Ticks, _task: &Task, _attempt: u32) {
        self.resubmissions += 1;
    }

    fn on_domain_outage(&mut self, _now: Ticks, _domain: u32) {
        self.domain_outages += 1;
    }

    fn on_domain_restore(&mut self, _now: Ticks, _domain: u32) {
        self.domain_restores += 1;
    }

    fn on_snapshot(&mut self, now: Ticks, resources: &ResourceManager, suspended: usize) {
        if let Some(last) = self.last_sample {
            if now.saturating_sub(last) < self.sample_interval {
                return;
            }
        }
        self.last_sample = Some(now);
        let total = resources.num_nodes().max(1) as f64;
        let busy = resources
            .nodes()
            .iter()
            .filter(|n| n.state() == NodeState::Busy)
            .count() as f64;
        let blank = resources.nodes().iter().filter(|n| n.is_blank()).count() as f64;
        self.samples.push(UtilizationSample {
            time: now,
            busy_fraction: busy / total,
            blank_fraction: blank / total,
            suspended,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dreamsim_model::{Config, ConfigId, Node, StepCounter, TaskId};

    fn resources() -> ResourceManager {
        let configs = vec![Config::new(ConfigId(0), 400, 10)];
        let nodes = (0..4)
            .map(|i| Node::new(NodeId::from_index(i), 1000, 1))
            .collect();
        ResourceManager::new(nodes, configs)
    }

    #[test]
    fn snapshot_computes_fractions() {
        let mut rm = resources();
        let mut s = StepCounter::new();
        let e = rm.configure_slot(NodeId(0), ConfigId(0), &mut s).unwrap();
        rm.assign_task(e, TaskId(0), &mut s).unwrap();
        rm.configure_slot(NodeId(1), ConfigId(0), &mut s).unwrap();
        let mut mon = RecordingMonitor::new(0);
        mon.on_snapshot(10, &rm, 3);
        assert_eq!(mon.samples.len(), 1);
        let sample = mon.samples[0];
        assert!((sample.busy_fraction - 0.25).abs() < 1e-12);
        assert!((sample.blank_fraction - 0.5).abs() < 1e-12);
        assert_eq!(sample.suspended, 3);
    }

    #[test]
    fn sample_interval_throttles() {
        let rm = resources();
        let mut mon = RecordingMonitor::new(100);
        mon.on_snapshot(0, &rm, 0);
        mon.on_snapshot(50, &rm, 0); // dropped
        mon.on_snapshot(100, &rm, 0); // stored
        mon.on_snapshot(150, &rm, 0); // dropped
        assert_eq!(mon.samples.len(), 2);
        assert_eq!(mon.samples[1].time, 100);
    }

    #[test]
    fn null_observer_compiles_and_ignores() {
        let mut o = NullObserver;
        let rm = resources();
        o.on_snapshot(0, &rm, 0);
        o.on_node_failure(0, NodeId(0));
        o.on_reconfig_failed(0, &fault_task(), 1);
    }

    fn fault_task() -> Task {
        Task::new(
            TaskId(9),
            0,
            100,
            dreamsim_model::PreferredConfig::Known(ConfigId(0)),
            400,
        )
    }

    #[test]
    fn fault_callbacks_bump_counters() {
        let mut mon = RecordingMonitor::new(0);
        let t = fault_task();
        mon.on_node_repair(5, NodeId(1));
        mon.on_reconfig_failed(6, &t, 1);
        mon.on_reconfig_failed(7, &t, 2);
        mon.on_task_failed(8, &t);
        mon.on_resubmit(9, &t, 1);
        mon.on_domain_outage(10, 0);
        mon.on_domain_restore(12, 0);
        assert_eq!(mon.repairs, 1);
        assert_eq!(mon.reconfig_failures, 2);
        assert_eq!(mon.task_failures, 1);
        assert_eq!(mon.resubmissions, 1);
        assert_eq!(mon.domain_outages, 1);
        assert_eq!(mon.domain_restores, 1);
    }
}
