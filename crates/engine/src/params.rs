//! Simulation parameters (Table II).
//!
//! Defaults reproduce the paper's experimental setup:
//!
//! | Parameter | Paper value |
//! |---|---|
//! | Total nodes | 100 or 200 |
//! | Total configurations | 50 |
//! | Total tasks generated | 1 000 … 100 000 |
//! | Next task generation interval | U\[1..50\] ticks |
//! | Configuration `ReqArea` range | U\[200..2000\] |
//! | Node `TotalArea` range | U\[1000..4000\] |
//! | Task `t_required` range | U\[100..100 000\] |
//! | `t_config` range | U\[10..20\] |
//! | Closest-match percentage | 15 % |
//! | Reconfiguration method | with / without partial |
//!
//! The network-delay range is implicit in the paper (the `tcomm` term of
//! Eq. 8 and the UML's `NWDLow`/`NWDHigh` members); the default here is
//! U\[1..10\] and is configurable.

use serde::{Deserialize, Serialize};

/// Whether nodes support partial reconfiguration (the two scenarios
/// compared throughout Section VI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReconfigMode {
    /// One node – one configuration – one task at a time
    /// ("without partial configuration").
    Full,
    /// A node hosts as many configurations as its area allows
    /// ("with partial configuration").
    Partial,
}

impl ReconfigMode {
    /// Short label used in reports and figure legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReconfigMode::Full => "full",
            ReconfigMode::Partial => "partial",
        }
    }
}

impl std::fmt::Display for ReconfigMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How reconfigurable area is modeled (DESIGN.md experiment A5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementModel {
    /// The paper's model: area is a scalar budget (Eq. 4).
    #[default]
    Scalar,
    /// Realistic FPGA model: configurations must fit into a contiguous
    /// gap of fabric columns (first-fit gap selection); external
    /// fragmentation can reject placements the scalar model admits.
    Contiguous,
}

impl PlacementModel {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlacementModel::Scalar => "scalar",
            PlacementModel::Contiguous => "contiguous",
        }
    }
}

/// Task inter-arrival time distribution. The paper uses a uniform
/// interval; Poisson and exponential arrivals are provided because the
/// input subsystem advertises configurable "task arrival rate and arrival
/// distribution functions".
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalDistribution {
    /// Uniform integer interval `[1 ..= max_interval]` (Table II).
    Uniform,
    /// Poisson-distributed interval with mean `(1 + max_interval) / 2`
    /// (matched mean to the uniform case).
    Poisson,
    /// Geometric (discretized exponential) interval with the same mean.
    Exponential,
}

/// An inclusive integer range `[lo, hi]`, the form all Table II
/// parameters take.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Range {
    /// Construct a range; `lo` must not exceed `hi` (validated by
    /// [`SimParams::validate`]).
    #[must_use]
    pub const fn new(lo: u64, hi: u64) -> Self {
        Self { lo, hi }
    }

    /// Midpoint, used to match means across arrival distributions.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }

    /// Whether `v` lies inside the range.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// What a domain-level outage does to the member nodes (the two
/// correlated-failure shapes the chaos layer injects).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainOutageKind {
    /// Hard rack/zone failure: every member node goes down atomically
    /// and the tasks running there are killed (resubmitted within the
    /// retry budget, like per-node failures).
    #[default]
    Fail,
    /// Network partition: member nodes become unreachable for the
    /// outage window; tasks running there restart from the suspension
    /// queue once capacity returns instead of being resubmitted as
    /// fresh arrivals.
    Partition,
}

impl DomainOutageKind {
    /// Short label for reports and the CLI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DomainOutageKind::Fail => "fail",
            DomainOutageKind::Partition => "partition",
        }
    }

    /// Parse a CLI/scenario label.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fail" => Some(DomainOutageKind::Fail),
            "partition" => Some(DomainOutageKind::Partition),
            _ => None,
        }
    }
}

/// One scripted (deterministic) domain outage: domain `domain` goes
/// down at tick `at` and is restored `duration` ticks later.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedOutage {
    /// Which failure domain (index into the domain list).
    pub domain: u32,
    /// Outage start, in ticks.
    pub at: u64,
    /// Outage length, in ticks (must be nonzero).
    pub duration: u64,
}

/// Correlated failure-domain parameters (racks/zones). Nodes are
/// assigned to `count` domains in contiguous blocks; a domain outage
/// takes every member node down atomically. `None` in
/// [`SimParams::domains`] (the default) disables the whole subsystem:
/// no domain RNG stream is consumed and runs stay bit-identical to the
/// domain-free simulator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainParams {
    /// Number of failure domains (nodes are split into contiguous
    /// blocks of `ceil(total_nodes / count)`).
    pub count: usize,
    /// Mean time to (correlated) failure of each domain, in ticks
    /// (exponentially distributed, per domain, on a dedicated RNG
    /// stream). `None` disables stochastic outages; scripted outages
    /// still fire.
    #[serde(default)]
    pub mttf: Option<u64>,
    /// Mean time to restore a downed domain, in ticks (exponentially
    /// distributed; scripted outages carry their own fixed duration).
    pub mttr: u64,
    /// What an outage does to member nodes.
    #[serde(default)]
    pub kind: DomainOutageKind,
    /// Deterministic, pre-scheduled outages (chaos scenario scripts).
    #[serde(default)]
    pub scripted: Vec<ScriptedOutage>,
}

impl Default for DomainParams {
    /// One domain, stochastic outages off, 1000-tick mean restore.
    fn default() -> Self {
        Self {
            count: 1,
            mttf: None,
            mttr: 1_000,
            kind: DomainOutageKind::Fail,
            scripted: Vec::new(),
        }
    }
}

/// Admission policy for a bounded suspension queue: what happens when
/// parking one more task would exceed [`SimParams::suspension_cap`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Reject the newcomer: the task that would overflow the queue is
    /// discarded ([`DiscardReason::AdmissionBlocked`]).
    ///
    /// [`DiscardReason::AdmissionBlocked`]: crate::DiscardReason::AdmissionBlocked
    #[default]
    Block,
    /// Shed the oldest queued task to make room for the newcomer
    /// ([`DiscardReason::AdmissionShed`]).
    ///
    /// [`DiscardReason::AdmissionShed`]: crate::DiscardReason::AdmissionShed
    ShedOldest,
    /// Degrade the newcomer: place it immediately on the idle instance
    /// of the closest larger configuration, paying wasted area instead
    /// of queueing; falls back to `Block` when no such instance exists.
    DegradeClosest,
}

impl AdmissionPolicy {
    /// Short label for reports and the CLI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Block => "block",
            AdmissionPolicy::ShedOldest => "shed-oldest",
            AdmissionPolicy::DegradeClosest => "degrade-closest",
        }
    }

    /// Parse a CLI/scenario label.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "block" => Some(AdmissionPolicy::Block),
            "shed-oldest" => Some(AdmissionPolicy::ShedOldest),
            "degrade-closest" | "degrade-to-closest-match" => Some(AdmissionPolicy::DegradeClosest),
            _ => None,
        }
    }
}

/// An overload burst: inside `[start, end)` the synthetic source caps
/// the inter-arrival draw at `interval` instead of
/// [`SimParams::next_task_max_interval`], compressing arrivals to
/// stress the suspension queue. `None` (default) leaves the arrival
/// process byte-identical to the burst-free simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstWindow {
    /// First tick of the burst (inclusive).
    pub start: u64,
    /// End of the burst (exclusive).
    pub end: u64,
    /// Inter-arrival upper bound during the burst (must be nonzero).
    pub interval: u64,
}

/// Open-system service-mode parameters (`dreamsim serve`). Instead of
/// the paper's closed batch of `total_tasks` arrivals, the service
/// driver streams arrivals for `horizon` ticks, optionally modulating
/// the mean inter-arrival time with an integer diurnal load curve and
/// rolling sliding-window live metrics. `None` in
/// [`SimParams::service`] (the default) disables the whole subsystem
/// and keeps batch runs byte-identical to the service-free simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceParams {
    /// Length of the service window, in ticks. Arrivals stream freely
    /// until this horizon; the service leg then drains in-flight work
    /// bookkeeping and snapshots a final checkpoint.
    pub horizon: u64,
    /// Period of the diurnal load curve, in ticks (a triangle wave:
    /// load peaks mid-period and troughs at the period boundary).
    /// Ignored when `amplitude_permille` is zero.
    #[serde(default)]
    pub day_length: u64,
    /// Diurnal modulation depth in permille of the base arrival rate
    /// (0 = flat Poisson; 500 = mean inter-arrival swings ±50 %).
    /// Capped at 900 so the effective rate never collapses to zero.
    #[serde(default)]
    pub amplitude_permille: u32,
    /// Sliding-window bucket length for live metrics, in ticks.
    /// Zero disables window accounting entirely.
    #[serde(default)]
    pub window: u64,
    /// How many closed window buckets to retain (older buckets are
    /// trimmed as the service runs). Must be nonzero when `window` is.
    #[serde(default)]
    pub window_retain: u64,
}

impl Default for ServiceParams {
    /// A 50 000-tick flat-Poisson window with live metrics off.
    fn default() -> Self {
        Self {
            horizon: 50_000,
            day_length: 0,
            amplitude_permille: 0,
            window: 0,
            window_retain: 0,
        }
    }
}

/// Parameter validation error.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamsError {
    /// A range has `lo > hi`.
    InvalidRange {
        /// Which parameter.
        name: &'static str,
        /// Lower bound given.
        lo: u64,
        /// Upper bound given.
        hi: u64,
    },
    /// A count parameter is zero.
    ZeroCount(&'static str),
    /// The closest-match fraction is outside `[0, 1]`.
    InvalidFraction(f64),
    /// A probability parameter is outside `[0, 1]` (or NaN).
    InvalidProbability {
        /// Which parameter.
        name: &'static str,
        /// Value given.
        value: f64,
    },
    /// No configuration could ever fit on any node
    /// (`config_area.lo > node_area.hi`).
    ConfigsNeverFit,
    /// Both the legacy global failure process (`node_mtbf`) and the
    /// per-node fault model (`faults.node_mttf`) are enabled; they are
    /// mutually exclusive.
    ConflictingFailureModels,
    /// More failure domains than nodes: at least one domain would be
    /// empty.
    DomainsExceedNodes {
        /// Configured domain count.
        domains: usize,
        /// Configured node count.
        nodes: usize,
    },
    /// A service-mode parameter combination is invalid.
    InvalidService(&'static str),
    /// A scripted outage names a domain outside the configured range.
    ScriptedOutageOutOfRange {
        /// Index into `domains.scripted`.
        index: usize,
        /// Domain id the entry names.
        domain: u32,
        /// Configured domain count.
        count: usize,
    },
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::InvalidRange { name, lo, hi } => {
                write!(f, "parameter {name}: invalid range [{lo}..{hi}]")
            }
            ParamsError::ZeroCount(name) => write!(f, "parameter {name} must be nonzero"),
            ParamsError::InvalidFraction(v) => {
                write!(f, "closest-match fraction {v} outside [0,1]")
            }
            ParamsError::InvalidProbability { name, value } => {
                write!(f, "parameter {name}: probability {value} outside [0,1]")
            }
            ParamsError::ConfigsNeverFit => {
                write!(f, "smallest configuration exceeds largest node area")
            }
            ParamsError::ConflictingFailureModels => {
                write!(
                    f,
                    "node_mtbf (legacy global failures) and faults.node_mttf \
                     (per-node fault model) cannot both be enabled"
                )
            }
            ParamsError::DomainsExceedNodes { domains, nodes } => {
                write!(
                    f,
                    "domains.count {domains} exceeds total_nodes {nodes}: \
                     at least one failure domain would be empty"
                )
            }
            ParamsError::InvalidService(msg) => write!(f, "service parameters: {msg}"),
            ParamsError::ScriptedOutageOutOfRange {
                index,
                domain,
                count,
            } => {
                write!(
                    f,
                    "domains.scripted[{index}] names domain {domain}, but only \
                     {count} domain(s) are configured"
                )
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// Fault-injection parameters (robustness extension; see the
/// "Failure model" section of DESIGN.md). The default is fully
/// disabled: no failures are drawn, no retry events are scheduled, and
/// runs are bit-identical to the failure-free simulator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultParams {
    /// Mean time to failure of each node, in ticks (exponentially
    /// distributed, per node). `None` disables injected node failures.
    pub node_mttf: Option<u64>,
    /// Mean time to repair a failed node, in ticks (exponentially
    /// distributed).
    pub node_mttr: u64,
    /// Probability that one bitstream-load (reconfiguration) attempt
    /// fails and must be retried.
    pub reconfig_fail_prob: f64,
    /// Probability that a placed task fails mid-execution and must be
    /// resubmitted.
    pub task_fail_prob: f64,
    /// Retry budget per task: bounded reconfiguration retries before the
    /// scheduler degrades to the closest-match configuration, and
    /// resubmission attempts for failed or killed tasks before they are
    /// discarded.
    pub max_retries: u32,
    /// First retry delay in ticks; attempt `n` backs off to
    /// `base << (n-1)`, capped by [`retry_backoff_cap`].
    ///
    /// [`retry_backoff_cap`]: FaultParams::retry_backoff_cap
    pub retry_backoff_base: u64,
    /// Upper bound on the exponential backoff delay, in ticks.
    pub retry_backoff_cap: u64,
    /// Whether tasks killed by node or execution failures are
    /// resubmitted to the scheduler (within the retry budget) instead of
    /// being discarded outright.
    pub resubmit: bool,
    /// Maximum ticks a task may sit in the suspension queue before it is
    /// discarded with [`DiscardReason::SuspensionTimeout`]. `None`
    /// (default) means suspended tasks wait indefinitely.
    ///
    /// [`DiscardReason::SuspensionTimeout`]: crate::DiscardReason::SuspensionTimeout
    pub suspension_deadline: Option<u64>,
}

impl Default for FaultParams {
    /// Everything disabled — the paper's failure-free world.
    fn default() -> Self {
        Self {
            node_mttf: None,
            node_mttr: 1_000,
            reconfig_fail_prob: 0.0,
            task_fail_prob: 0.0,
            max_retries: 3,
            retry_backoff_base: 8,
            retry_backoff_cap: 512,
            resubmit: true,
            suspension_deadline: None,
        }
    }
}

impl FaultParams {
    /// Whether any fault-injection feature is active. When this is
    /// false the engine must not draw from the fault RNG stream or
    /// charge any steps on fault paths.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.node_mttf.is_some()
            || self.reconfig_fail_prob > 0.0
            || self.task_fail_prob > 0.0
            || self.suspension_deadline.is_some()
    }

    fn validate(&self) -> Result<(), ParamsError> {
        for (name, v) in [
            ("faults.reconfig_fail_prob", self.reconfig_fail_prob),
            ("faults.task_fail_prob", self.task_fail_prob),
        ] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(ParamsError::InvalidProbability { name, value: v });
            }
        }
        if self.node_mttf == Some(0) {
            return Err(ParamsError::ZeroCount("faults.node_mttf"));
        }
        if self.node_mttr == 0 {
            return Err(ParamsError::ZeroCount("faults.node_mttr"));
        }
        if self.retry_backoff_base == 0 {
            return Err(ParamsError::ZeroCount("faults.retry_backoff_base"));
        }
        if self.retry_backoff_cap == 0 {
            return Err(ParamsError::ZeroCount("faults.retry_backoff_cap"));
        }
        if self.suspension_deadline == Some(0) {
            return Err(ParamsError::ZeroCount("faults.suspension_deadline"));
        }
        Ok(())
    }
}

/// Full parameter set for one simulation run (the `DreamSim` class's
/// data members in Fig. 4).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Number of reconfigurable nodes (`TotalNodes`).
    pub total_nodes: usize,
    /// Number of processor configurations (`TotalConfigs`).
    pub total_configs: usize,
    /// Number of tasks to generate (`TotalTasks`).
    pub total_tasks: usize,
    /// Upper bound of the inter-arrival interval
    /// (`NextTaskMaxInterval`); intervals are drawn from
    /// `[1 ..= this]` under [`ArrivalDistribution::Uniform`].
    pub next_task_max_interval: u64,
    /// Arrival distribution (Table II uses uniform).
    pub arrival: ArrivalDistribution,
    /// Configuration `ReqArea` range (`TasklowA`/`TaskHighA` pair feeding
    /// configs in the original; Table II: \[200..2000\]).
    pub config_area: Range,
    /// Node `TotalArea` range (`NodelowA`/`NodeHighA`; \[1000..4000\]).
    pub node_area: Range,
    /// Task `t_required` range (`TaskReqTimeLow/High`; \[100..100 000\]).
    pub task_time: Range,
    /// Configuration time range (`ConfigTimeLow/High`; \[10..20\]).
    pub config_time: Range,
    /// Node network delay range (`NWDLow/High`; the `tcomm` of Eq. 8).
    pub network_delay: Range,
    /// Fraction of tasks whose preferred configuration is absent from
    /// the configuration list (Table II: 15 %).
    pub closest_match_fraction: f64,
    /// Reconfiguration method (the two compared scenarios).
    pub mode: ReconfigMode,
    /// Area model: the paper's scalar budget or contiguous 1-D
    /// placement (experiment A5).
    pub placement: PlacementModel,
    /// Probability that a generated configuration requires each hardware
    /// capability of its host node (0.0 — the paper's case — means
    /// placement ignores capabilities entirely).
    pub capability_requirement_prob: f64,
    /// Whether the suspension queue is enabled (ablation A3 disables it:
    /// tasks that would suspend are discarded instead).
    pub suspension_enabled: bool,
    /// Maximum resume retries before a suspended task is discarded;
    /// `None` (paper behaviour) retries indefinitely.
    pub max_sus_retries: Option<u64>,
    /// Mean timeticks between injected node failures, or `None` for the
    /// paper's failure-free runs (extension; see `dreamsim-engine`
    /// failure-injection docs).
    pub node_mtbf: Option<u64>,
    /// Mean timeticks a failed node stays down before repair.
    pub node_mttr: u64,
    /// Fault-injection parameters (disabled by default; mutually
    /// exclusive with `node_mtbf`).
    #[serde(default)]
    pub faults: FaultParams,
    /// Correlated failure domains (racks/zones). `None` (default)
    /// disables the chaos layer entirely.
    #[serde(default)]
    pub domains: Option<DomainParams>,
    /// Bound on the suspension-queue length; exceeding it triggers the
    /// [`admission`](Self::admission) policy. `None` (default) leaves
    /// the queue unbounded, as in the paper.
    #[serde(default)]
    pub suspension_cap: Option<usize>,
    /// What to do when a suspension would exceed `suspension_cap`.
    #[serde(default)]
    pub admission: AdmissionPolicy,
    /// Overload burst window for the synthetic arrival process. `None`
    /// (default) keeps the paper's steady arrival rate.
    #[serde(default)]
    pub burst: Option<BurstWindow>,
    /// Open-system service-mode parameters (`dreamsim serve`). `None`
    /// (default) keeps the paper's closed-batch driver.
    #[serde(default)]
    pub service: Option<ServiceParams>,
    /// Master seed for all randomness in the run.
    pub seed: u64,
}

impl Default for SimParams {
    /// Table II defaults with 200 nodes and 10 000 tasks, partial mode.
    fn default() -> Self {
        Self {
            total_nodes: 200,
            total_configs: 50,
            total_tasks: 10_000,
            next_task_max_interval: 50,
            arrival: ArrivalDistribution::Uniform,
            config_area: Range::new(200, 2000),
            node_area: Range::new(1000, 4000),
            task_time: Range::new(100, 100_000),
            config_time: Range::new(10, 20),
            network_delay: Range::new(1, 10),
            closest_match_fraction: 0.15,
            mode: ReconfigMode::Partial,
            placement: PlacementModel::Scalar,
            capability_requirement_prob: 0.0,
            suspension_enabled: true,
            max_sus_retries: None,
            node_mtbf: None,
            node_mttr: 1_000,
            faults: FaultParams::default(),
            domains: None,
            suspension_cap: None,
            admission: AdmissionPolicy::Block,
            burst: None,
            service: None,
            seed: 0x5EED,
        }
    }
}

impl SimParams {
    /// Table II defaults with the given node count, task count, and mode
    /// (the axes the paper's figures vary).
    #[must_use]
    pub fn paper(total_nodes: usize, total_tasks: usize, mode: ReconfigMode) -> Self {
        Self {
            total_nodes,
            total_tasks,
            mode,
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style mode override.
    #[must_use]
    pub fn with_mode(mut self, mode: ReconfigMode) -> Self {
        self.mode = mode;
        self
    }

    /// Validate every parameter; returns the first problem found.
    pub fn validate(&self) -> Result<(), ParamsError> {
        for (name, r) in [
            ("config_area", self.config_area),
            ("node_area", self.node_area),
            ("task_time", self.task_time),
            ("config_time", self.config_time),
            ("network_delay", self.network_delay),
        ] {
            if r.lo > r.hi {
                return Err(ParamsError::InvalidRange {
                    name,
                    lo: r.lo,
                    hi: r.hi,
                });
            }
        }
        if self.total_nodes == 0 {
            return Err(ParamsError::ZeroCount("total_nodes"));
        }
        if self.total_configs == 0 {
            return Err(ParamsError::ZeroCount("total_configs"));
        }
        if self.next_task_max_interval == 0 {
            return Err(ParamsError::ZeroCount("next_task_max_interval"));
        }
        if !(0.0..=1.0).contains(&self.closest_match_fraction)
            || self.closest_match_fraction.is_nan()
        {
            return Err(ParamsError::InvalidFraction(self.closest_match_fraction));
        }
        if !(0.0..=1.0).contains(&self.capability_requirement_prob)
            || self.capability_requirement_prob.is_nan()
        {
            return Err(ParamsError::InvalidFraction(
                self.capability_requirement_prob,
            ));
        }
        if self.config_area.lo > self.node_area.hi {
            return Err(ParamsError::ConfigsNeverFit);
        }
        self.faults.validate()?;
        if self.node_mtbf.is_some() && self.faults.node_mttf.is_some() {
            return Err(ParamsError::ConflictingFailureModels);
        }
        if let Some(d) = &self.domains {
            if d.count == 0 {
                return Err(ParamsError::ZeroCount("domains.count"));
            }
            if d.count > self.total_nodes {
                return Err(ParamsError::DomainsExceedNodes {
                    domains: d.count,
                    nodes: self.total_nodes,
                });
            }
            if d.mttf == Some(0) {
                return Err(ParamsError::ZeroCount("domains.mttf"));
            }
            if d.mttr == 0 {
                return Err(ParamsError::ZeroCount("domains.mttr"));
            }
            for (i, s) in d.scripted.iter().enumerate() {
                // BOUND: u32 domain index; usize is at least 32 bits on every supported target.
                if s.domain as usize >= d.count {
                    return Err(ParamsError::ScriptedOutageOutOfRange {
                        index: i,
                        domain: s.domain,
                        count: d.count,
                    });
                }
                if s.duration == 0 {
                    return Err(ParamsError::ZeroCount("domains.scripted.duration"));
                }
            }
        }
        if let Some(b) = &self.burst {
            if b.interval == 0 {
                return Err(ParamsError::ZeroCount("burst.interval"));
            }
            if b.start >= b.end {
                return Err(ParamsError::InvalidRange {
                    name: "burst",
                    lo: b.start,
                    hi: b.end,
                });
            }
        }
        if let Some(s) = &self.service {
            if s.horizon == 0 {
                return Err(ParamsError::ZeroCount("service.horizon"));
            }
            if s.amplitude_permille > 900 {
                return Err(ParamsError::InvalidService(
                    "amplitude_permille must be at most 900",
                ));
            }
            if s.amplitude_permille > 0 && s.day_length < 2 {
                return Err(ParamsError::InvalidService(
                    "day_length must be at least 2 when amplitude_permille is nonzero",
                ));
            }
            if s.window > 0 && s.window_retain == 0 {
                return Err(ParamsError::ZeroCount("service.window_retain"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let p = SimParams::default();
        assert_eq!(p.total_configs, 50);
        assert_eq!(p.next_task_max_interval, 50);
        assert_eq!(p.config_area, Range::new(200, 2000));
        assert_eq!(p.node_area, Range::new(1000, 4000));
        assert_eq!(p.task_time, Range::new(100, 100_000));
        assert_eq!(p.config_time, Range::new(10, 20));
        assert!((p.closest_match_fraction - 0.15).abs() < 1e-12);
        assert!(p.suspension_enabled);
        assert_eq!(p.max_sus_retries, None);
        assert!(p.node_mtbf.is_none());
        p.validate().unwrap();
    }

    #[test]
    fn paper_constructor_sets_axes() {
        let p = SimParams::paper(100, 50_000, ReconfigMode::Full);
        assert_eq!(p.total_nodes, 100);
        assert_eq!(p.total_tasks, 50_000);
        assert_eq!(p.mode, ReconfigMode::Full);
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let mut p = SimParams::default();
        p.node_area = Range::new(4000, 1000);
        assert_eq!(
            p.validate().unwrap_err(),
            ParamsError::InvalidRange {
                name: "node_area",
                lo: 4000,
                hi: 1000
            }
        );
    }

    #[test]
    fn validation_catches_zero_counts() {
        let mut p = SimParams::default();
        p.total_nodes = 0;
        assert_eq!(
            p.validate().unwrap_err(),
            ParamsError::ZeroCount("total_nodes")
        );
        let mut p = SimParams::default();
        p.total_configs = 0;
        assert_eq!(
            p.validate().unwrap_err(),
            ParamsError::ZeroCount("total_configs")
        );
        let mut p = SimParams::default();
        p.next_task_max_interval = 0;
        assert_eq!(
            p.validate().unwrap_err(),
            ParamsError::ZeroCount("next_task_max_interval")
        );
    }

    #[test]
    fn validation_catches_bad_fraction_and_misfit() {
        let mut p = SimParams::default();
        p.closest_match_fraction = 1.5;
        assert_eq!(p.validate().unwrap_err(), ParamsError::InvalidFraction(1.5));
        let mut p = SimParams::default();
        p.closest_match_fraction = f64::NAN;
        assert!(matches!(
            p.validate().unwrap_err(),
            ParamsError::InvalidFraction(_)
        ));
        let mut p = SimParams::default();
        p.config_area = Range::new(5000, 6000);
        assert_eq!(p.validate().unwrap_err(), ParamsError::ConfigsNeverFit);
    }

    #[test]
    fn range_helpers() {
        let r = Range::new(1, 50);
        assert_eq!(r.mean(), 25.5);
        assert!(r.contains(1) && r.contains(50) && !r.contains(51) && !r.contains(0));
    }

    #[test]
    fn mode_labels() {
        assert_eq!(ReconfigMode::Full.label(), "full");
        assert_eq!(ReconfigMode::Partial.to_string(), "partial");
    }

    #[test]
    fn serde_round_trip() {
        let p = SimParams::default();
        let js = serde_json::to_string(&p).unwrap();
        let back: SimParams = serde_json::from_str(&js).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn fault_defaults_are_disabled() {
        let f = FaultParams::default();
        assert!(!f.enabled());
        assert!(f.node_mttf.is_none());
        assert_eq!(f.reconfig_fail_prob, 0.0);
        assert_eq!(f.task_fail_prob, 0.0);
        assert!(f.suspension_deadline.is_none());
        SimParams::default().validate().unwrap();
    }

    #[test]
    fn fault_enabled_detects_each_feature() {
        let mut f = FaultParams::default();
        f.node_mttf = Some(500);
        assert!(f.enabled());
        let mut f = FaultParams::default();
        f.reconfig_fail_prob = 0.1;
        assert!(f.enabled());
        let mut f = FaultParams::default();
        f.task_fail_prob = 0.1;
        assert!(f.enabled());
        let mut f = FaultParams::default();
        f.suspension_deadline = Some(100);
        assert!(f.enabled());
    }

    #[test]
    fn validation_catches_bad_fault_probabilities() {
        let mut p = SimParams::default();
        p.faults.reconfig_fail_prob = 1.5;
        assert_eq!(
            p.validate().unwrap_err(),
            ParamsError::InvalidProbability {
                name: "faults.reconfig_fail_prob",
                value: 1.5
            }
        );
        let mut p = SimParams::default();
        p.faults.task_fail_prob = f64::NAN;
        assert!(matches!(
            p.validate().unwrap_err(),
            ParamsError::InvalidProbability {
                name: "faults.task_fail_prob",
                ..
            }
        ));
    }

    #[test]
    fn validation_catches_zero_fault_parameters() {
        for (set, name) in [
            (
                (|p: &mut SimParams| p.faults.node_mttf = Some(0)) as fn(&mut SimParams),
                "faults.node_mttf",
            ),
            (|p| p.faults.node_mttr = 0, "faults.node_mttr"),
            (
                |p| p.faults.retry_backoff_base = 0,
                "faults.retry_backoff_base",
            ),
            (
                |p| p.faults.retry_backoff_cap = 0,
                "faults.retry_backoff_cap",
            ),
            (
                |p| p.faults.suspension_deadline = Some(0),
                "faults.suspension_deadline",
            ),
        ] {
            let mut p = SimParams::default();
            set(&mut p);
            assert_eq!(p.validate().unwrap_err(), ParamsError::ZeroCount(name));
        }
    }

    #[test]
    fn validation_rejects_both_failure_models() {
        let mut p = SimParams::default();
        p.node_mtbf = Some(10_000);
        p.validate().unwrap();
        p.faults.node_mttf = Some(10_000);
        assert_eq!(
            p.validate().unwrap_err(),
            ParamsError::ConflictingFailureModels
        );
        p.node_mtbf = None;
        p.validate().unwrap();
    }

    #[test]
    fn chaos_defaults_are_disabled() {
        let p = SimParams::default();
        assert!(p.domains.is_none());
        assert!(p.suspension_cap.is_none());
        assert_eq!(p.admission, AdmissionPolicy::Block);
        assert!(p.burst.is_none());
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_domain_parameters() {
        let with_domains = |f: fn(&mut DomainParams)| {
            let mut p = SimParams::default();
            let mut d = DomainParams {
                count: 4,
                ..DomainParams::default()
            };
            f(&mut d);
            p.domains = Some(d);
            p.validate()
        };
        assert_eq!(
            with_domains(|d| d.count = 0).unwrap_err(),
            ParamsError::ZeroCount("domains.count")
        );
        assert_eq!(
            with_domains(|d| d.count = 500).unwrap_err(),
            ParamsError::DomainsExceedNodes {
                domains: 500,
                nodes: 200
            }
        );
        assert_eq!(
            with_domains(|d| d.mttf = Some(0)).unwrap_err(),
            ParamsError::ZeroCount("domains.mttf")
        );
        assert_eq!(
            with_domains(|d| d.mttr = 0).unwrap_err(),
            ParamsError::ZeroCount("domains.mttr")
        );
        assert_eq!(
            with_domains(|d| d.scripted.push(ScriptedOutage {
                domain: 4,
                at: 100,
                duration: 10
            }))
            .unwrap_err(),
            ParamsError::ScriptedOutageOutOfRange {
                index: 0,
                domain: 4,
                count: 4
            }
        );
        assert_eq!(
            with_domains(|d| d.scripted.push(ScriptedOutage {
                domain: 0,
                at: 100,
                duration: 0
            }))
            .unwrap_err(),
            ParamsError::ZeroCount("domains.scripted.duration")
        );
        with_domains(|_| {}).unwrap();
    }

    #[test]
    fn validation_catches_bad_burst_window() {
        let mut p = SimParams::default();
        p.burst = Some(BurstWindow {
            start: 100,
            end: 500,
            interval: 0,
        });
        assert_eq!(
            p.validate().unwrap_err(),
            ParamsError::ZeroCount("burst.interval")
        );
        p.burst = Some(BurstWindow {
            start: 500,
            end: 500,
            interval: 2,
        });
        assert_eq!(
            p.validate().unwrap_err(),
            ParamsError::InvalidRange {
                name: "burst",
                lo: 500,
                hi: 500
            }
        );
        p.burst = Some(BurstWindow {
            start: 100,
            end: 500,
            interval: 2,
        });
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_service_parameters() {
        let with_service = |f: fn(&mut ServiceParams)| {
            let mut p = SimParams::default();
            let mut s = ServiceParams::default();
            f(&mut s);
            p.service = Some(s);
            p.validate()
        };
        assert_eq!(
            with_service(|s| s.horizon = 0).unwrap_err(),
            ParamsError::ZeroCount("service.horizon")
        );
        assert!(matches!(
            with_service(|s| s.amplitude_permille = 901).unwrap_err(),
            ParamsError::InvalidService(_)
        ));
        assert!(matches!(
            with_service(|s| {
                s.amplitude_permille = 300;
                s.day_length = 1;
            })
            .unwrap_err(),
            ParamsError::InvalidService(_)
        ));
        assert_eq!(
            with_service(|s| s.window = 500).unwrap_err(),
            ParamsError::ZeroCount("service.window_retain")
        );
        with_service(|s| {
            s.amplitude_permille = 300;
            s.day_length = 2_000;
            s.window = 500;
            s.window_retain = 8;
        })
        .unwrap();
    }

    #[test]
    fn service_params_serde_round_trip() {
        let mut p = SimParams::default();
        p.service = Some(ServiceParams {
            horizon: 20_000,
            day_length: 4_000,
            amplitude_permille: 400,
            window: 1_000,
            window_retain: 6,
        });
        let js = serde_json::to_string(&p).unwrap();
        let back: SimParams = serde_json::from_str(&js).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn admission_and_kind_labels_round_trip() {
        for a in [
            AdmissionPolicy::Block,
            AdmissionPolicy::ShedOldest,
            AdmissionPolicy::DegradeClosest,
        ] {
            assert_eq!(AdmissionPolicy::parse(a.label()), Some(a));
        }
        assert_eq!(
            AdmissionPolicy::parse("degrade-to-closest-match"),
            Some(AdmissionPolicy::DegradeClosest)
        );
        assert_eq!(AdmissionPolicy::parse("nope"), None);
        for k in [DomainOutageKind::Fail, DomainOutageKind::Partition] {
            assert_eq!(DomainOutageKind::parse(k.label()), Some(k));
        }
        assert_eq!(DomainOutageKind::parse("nope"), None);
    }

    #[test]
    fn chaos_params_serde_round_trip() {
        let mut p = SimParams::default();
        p.domains = Some(DomainParams {
            count: 4,
            mttf: Some(5_000),
            mttr: 500,
            kind: DomainOutageKind::Partition,
            scripted: vec![ScriptedOutage {
                domain: 1,
                at: 2_000,
                duration: 300,
            }],
        });
        p.suspension_cap = Some(16);
        p.admission = AdmissionPolicy::ShedOldest;
        p.burst = Some(BurstWindow {
            start: 1_000,
            end: 3_000,
            interval: 2,
        });
        let js = serde_json::to_string(&p).unwrap();
        let back: SimParams = serde_json::from_str(&js).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn fault_params_serde_round_trip() {
        let mut p = SimParams::default();
        p.faults.task_fail_prob = 0.25;
        let js = serde_json::to_string(&p).unwrap();
        let back: SimParams = serde_json::from_str(&js).unwrap();
        assert_eq!(p, back);
    }
}
