//! Self-healing open-system service mode (`dreamsim serve`).
//!
//! The service driver runs a simulation as an always-on process over a
//! fixed horizon of streaming arrivals (see
//! [`ServiceParams`](crate::params::ServiceParams)), snapshotting into
//! a [`CheckpointRing`](crate::ring::CheckpointRing) as it goes. This
//! module supplies the layers
//! around the [`Simulation::run_service_leg`] event loop:
//!
//! * **startup recovery** ([`recover_from_ring`]): scan the ring
//!   newest-first, CRC-validate each candidate with the fuzz-hardened
//!   checkpoint loader, and resume from the newest valid snapshot —
//!   falling back past corrupted or mismatched ones, with every
//!   rejection recorded in a typed [`RecoveryReport`];
//! * **watchdog** ([`Watchdog`]): detects stalled clocks (unbounded
//!   event cascades at one tick) and zero-progress / suspension-queue
//!   livelock windows, purely from *simulated* time and progress
//!   counters (never wall-clock — determinism-lint r2), and triggers a
//!   bounded restart-from-checkpoint;
//! * **orchestration** ([`serve`]): recovery → service leg → (on
//!   watchdog trip) bounded re-recovery → graceful drain to a final
//!   ring checkpoint and report.
//!
//! Determinism: a killed-and-recovered service window reproduces the
//! uninterrupted window's report byte for byte, including when the
//! newest snapshot is corrupted (pinned by `sweep::chaos`'s service
//! drill and the CI `service-drill` job). A watchdog trip replays
//! deterministically too — restart-from-checkpoint re-stalls the same
//! way — which is why restarts are *bounded*: the point is a typed
//! postmortem ([`ServiceError::WatchdogExhausted`]) instead of a hung
//! process.

use crate::checkpoint::{read_checkpoint, CheckpointError};
use crate::params::{ParamsError, SimParams};
use crate::ring::scan_ring;
use crate::sim::{RunError, RunResult, SchedulePolicy, Simulation, TaskSource};
use dreamsim_model::Ticks;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Which watchdog condition fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WatchdogCondition {
    /// More events dispatched at a single clock value than the
    /// configured bound: the event loop is cycling without advancing
    /// simulated time.
    StalledClock,
    /// No task progressed for a full stall window while the suspension
    /// queue was empty.
    ZeroProgress,
    /// No task progressed for a full stall window while tasks sat in
    /// the suspension queue: classic livelock (capacity exists on
    /// paper, nothing ever resumes).
    SuspensionLivelock,
}

impl WatchdogCondition {
    /// Short label for reports and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WatchdogCondition::StalledClock => "stalled-clock",
            WatchdogCondition::ZeroProgress => "zero-progress",
            WatchdogCondition::SuspensionLivelock => "suspension-livelock",
        }
    }
}

/// Typed diagnostic emitted when the watchdog trips.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogDiag {
    /// Which condition fired.
    pub condition: WatchdogCondition,
    /// Simulated clock at the trip.
    pub clock: Ticks,
    /// Events dispatched at `clock` so far (stalled-clock evidence).
    pub events_at_clock: u64,
    /// Ticks since the last observed progress (stall evidence).
    pub stalled_for: Ticks,
    /// Suspension-queue length at the trip.
    pub suspension_len: u64,
}

impl std::fmt::Display for WatchdogDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at clock {} ({} events this tick, {} ticks without progress, {} suspended)",
            self.condition.label(),
            self.clock,
            self.events_at_clock,
            self.stalled_for,
            self.suspension_len
        )
    }
}

/// Watchdog thresholds. The defaults are generous backstops that a
/// healthy run never approaches; drills tighten them to force trips.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogParams {
    /// Maximum events dispatched at one clock value before the loop is
    /// declared stalled.
    pub max_events_per_tick: u64,
    /// Ticks without any completion/discard progress before the run is
    /// declared stalled or livelocked.
    pub stall_window: Ticks,
    /// Restart-from-checkpoint attempts before
    /// [`ServiceError::WatchdogExhausted`] is returned.
    pub max_restarts: u32,
}

impl Default for WatchdogParams {
    /// 1 M events/tick, 200 000-tick stall window, 2 restarts.
    fn default() -> Self {
        Self {
            max_events_per_tick: 1_000_000,
            stall_window: 200_000,
            max_restarts: 2,
        }
    }
}

/// Deterministic stall detector over *simulated* clocks and progress
/// counters (no wall time anywhere — determinism-lint r2: trips replay
/// identically on every machine and every rerun).
#[derive(Clone, Debug)]
pub struct Watchdog {
    params: WatchdogParams,
    cur_clock: Ticks,
    events_at_clock: u64,
    last_progress: u64,
    last_progress_clock: Ticks,
    started: bool,
}

impl Watchdog {
    /// Fresh watchdog; arms on the first observation.
    #[must_use]
    pub fn new(params: WatchdogParams) -> Self {
        Self {
            params,
            cur_clock: 0,
            events_at_clock: 0,
            last_progress: 0,
            last_progress_clock: 0,
            started: false,
        }
    }

    /// Observe one dispatched event: the current simulated clock, the
    /// monotone progress counter (completions + discards), and the
    /// suspension-queue length. Returns a diagnostic when a condition
    /// fires.
    pub fn observe(
        &mut self,
        clock: Ticks,
        progress: u64,
        suspension_len: u64,
    ) -> Option<WatchdogDiag> {
        if !self.started {
            self.started = true;
            self.cur_clock = clock;
            self.last_progress = progress;
            self.last_progress_clock = clock;
        }
        if clock != self.cur_clock {
            self.cur_clock = clock;
            self.events_at_clock = 0;
        }
        // BOUND: one increment per dispatched event; far below 2^64.
        self.events_at_clock += 1;
        if progress != self.last_progress {
            self.last_progress = progress;
            self.last_progress_clock = clock;
        }
        let stalled_for = clock.saturating_sub(self.last_progress_clock);
        let diag = |condition| WatchdogDiag {
            condition,
            clock,
            events_at_clock: self.events_at_clock,
            stalled_for,
            suspension_len,
        };
        if self.events_at_clock > self.params.max_events_per_tick {
            return Some(diag(WatchdogCondition::StalledClock));
        }
        if stalled_for >= self.params.stall_window {
            return Some(diag(if suspension_len > 0 {
                WatchdogCondition::SuspensionLivelock
            } else {
                WatchdogCondition::ZeroProgress
            }));
        }
        None
    }
}

/// One ring snapshot recovery refused, and why.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectedSnapshot {
    /// Ring file name (not the full path; the ring dir is in the
    /// report).
    pub file: String,
    /// Loader/resume error that disqualified it.
    pub error: String,
}

/// Typed record of one startup-recovery pass over a checkpoint ring.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Ring directory scanned.
    pub ring_dir: String,
    /// Well-formed ring entries found.
    pub scanned: u64,
    /// Snapshots rejected (CRC failures, truncation, parameter or
    /// policy mismatches, failed state audits), newest first.
    pub rejected: Vec<RejectedSnapshot>,
    /// Ring file recovery resumed from, when any candidate survived.
    pub recovered_from: Option<String>,
    /// Simulated clock of the resumed snapshot.
    pub recovered_clock: Option<Ticks>,
    /// No candidate survived (or the ring was empty): the service
    /// started from scratch.
    pub fresh_start: bool,
}

impl RecoveryReport {
    /// Pretty JSON for the `--recovery-report` artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        // INVARIANT: the report is a tree of strings and integers; the
        // vendored serializer cannot fail on it.
        serde_json::to_string_pretty(self).expect("recovery report serializes")
    }
}

/// Scan `dir` and resume from the newest snapshot that loads, matches
/// `params`, and passes the state audit. Rejected candidates are
/// recorded and skipped — a deliberately corrupted newest snapshot
/// falls back to the one before it. Returns the resumed simulation (or
/// `None` for a fresh start) plus the full [`RecoveryReport`].
///
/// Only I/O errors scanning the directory itself are fatal; a broken
/// snapshot never is.
pub fn recover_from_ring<S, P, FS, FP>(
    dir: &Path,
    params: &SimParams,
    make_source: &FS,
    make_policy: &FP,
) -> Result<(Option<Simulation<S, P>>, RecoveryReport), CheckpointError>
where
    S: TaskSource,
    P: SchedulePolicy,
    FS: Fn(&SimParams) -> S,
    FP: Fn() -> P,
{
    let entries = scan_ring(dir)?;
    let mut report = RecoveryReport {
        ring_dir: dir.display().to_string(),
        scanned: entries.len() as u64,
        rejected: Vec::new(),
        recovered_from: None,
        recovered_clock: None,
        fresh_start: false,
    };
    for entry in entries.iter().rev() {
        let file = entry
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| entry.path.display().to_string());
        let cp = match read_checkpoint(&entry.path) {
            Ok(cp) => cp,
            Err(e) => {
                report.rejected.push(RejectedSnapshot {
                    file,
                    error: e.to_string(),
                });
                continue;
            }
        };
        if cp.params() != params {
            report.rejected.push(RejectedSnapshot {
                file,
                error: "snapshot parameters differ from the requested service".to_string(),
            });
            continue;
        }
        match Simulation::resume(cp, make_source(params), make_policy()) {
            Ok(sim) => {
                report.recovered_from = Some(file);
                report.recovered_clock = Some(sim.clock());
                return Ok((Some(sim), report));
            }
            Err(e) => {
                report.rejected.push(RejectedSnapshot {
                    file,
                    error: e.to_string(),
                });
            }
        }
    }
    report.fresh_start = true;
    Ok((None, report))
}

/// Options for one service leg of [`Simulation::run_service_leg`]
/// (everything [`serve`] derives from [`ServiceOptions`] plus the
/// drill's deterministic kill switch).
#[derive(Clone, Debug, Default)]
pub struct ServiceLegOptions {
    /// Ring directory for periodic snapshots; `None` disables the ring
    /// (bare legs in tests).
    pub ring_dir: Option<PathBuf>,
    /// Snapshot whenever the clock crosses a multiple of this many
    /// ticks (0 is treated as 1).
    pub ring_every: Ticks,
    /// Ring retention budget (values below 1 clamp to 1).
    pub ring_retain: u64,
    /// Audit after every dispatched event (expensive; drills).
    pub audit: bool,
    /// Audit whenever the clock crosses a multiple of this many ticks.
    pub audit_every: Option<Ticks>,
    /// Deterministic kill switch: stop the leg — *without* a final
    /// snapshot, as a crash would — once the clock reaches this tick.
    pub stop_at: Option<Ticks>,
}

/// How a service leg ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceLegEnd {
    /// The service horizon was reached and the final snapshot written:
    /// graceful shutdown.
    Horizon,
    /// The deterministic kill switch fired mid-window (no final
    /// snapshot — state past the last ring entry is lost, exactly like
    /// a SIGKILL).
    Killed,
    /// The watchdog tripped; the orchestrator decides whether to
    /// restart from the ring.
    Stalled(WatchdogDiag),
}

/// Options for a full [`serve`] run.
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Checkpoint-ring directory (created if missing).
    pub ring_dir: PathBuf,
    /// Ring snapshot interval, in ticks.
    pub ring_every: Ticks,
    /// Ring retention budget.
    pub ring_retain: u64,
    /// Audit interval, in ticks (`None` audits only at snapshots).
    pub audit_every: Option<Ticks>,
    /// Watchdog thresholds; `None` disables the watchdog.
    pub watchdog: Option<WatchdogParams>,
    /// Deterministic kill switch for crash drills.
    pub stop_at: Option<Ticks>,
    /// Search backend override applied to fresh and resumed
    /// simulations alike.
    pub search: Option<dreamsim_model::SearchBackend>,
}

impl ServiceOptions {
    /// Defaults: snapshot every 5 000 ticks, retain 4, watchdog on.
    #[must_use]
    pub fn new(ring_dir: impl Into<PathBuf>) -> Self {
        Self {
            ring_dir: ring_dir.into(),
            ring_every: 5_000,
            ring_retain: 4,
            audit_every: None,
            watchdog: Some(WatchdogParams::default()),
            stop_at: None,
            search: None,
        }
    }

    fn leg_options(&self) -> ServiceLegOptions {
        ServiceLegOptions {
            ring_dir: Some(self.ring_dir.clone()),
            ring_every: self.ring_every,
            ring_retain: self.ring_retain,
            audit: false,
            audit_every: self.audit_every,
            stop_at: self.stop_at,
        }
    }
}

/// Why a [`serve`] run failed.
#[derive(Debug)]
pub enum ServiceError {
    /// The parameter set is invalid (or construction failed).
    Params(ParamsError),
    /// [`SimParams::service`] is `None`: nothing defines the horizon.
    NotService,
    /// The ring directory could not be created or read.
    RingDir {
        /// Offending path.
        path: PathBuf,
        /// Underlying I/O error.
        error: std::io::Error,
    },
    /// The service leg aborted (audit failure or snapshot I/O).
    Run(RunError),
    /// Scanning the ring for recovery failed at the I/O level.
    Checkpoint(CheckpointError),
    /// The watchdog kept tripping after exhausting its restart budget;
    /// the diagnostic of the final trip is attached.
    WatchdogExhausted {
        /// Restarts attempted before giving up.
        restarts: u32,
        /// The final trip.
        diag: WatchdogDiag,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Params(e) => write!(f, "invalid service parameters: {e}"),
            ServiceError::NotService => {
                write!(f, "parameter set has no service block (SimParams::service)")
            }
            ServiceError::RingDir { path, error } => {
                write!(f, "ring directory {}: {error}", path.display())
            }
            ServiceError::Run(e) => write!(f, "service leg failed: {e}"),
            ServiceError::Checkpoint(e) => write!(f, "ring recovery failed: {e}"),
            ServiceError::WatchdogExhausted { restarts, diag } => write!(
                f,
                "watchdog exhausted {restarts} restart(s); final trip: {diag}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Params(e) => Some(e),
            ServiceError::RingDir { error, .. } => Some(error),
            ServiceError::Run(e) => Some(e),
            ServiceError::Checkpoint(e) => Some(e),
            ServiceError::NotService | ServiceError::WatchdogExhausted { .. } => None,
        }
    }
}

impl From<RunError> for ServiceError {
    fn from(e: RunError) -> Self {
        ServiceError::Run(e)
    }
}

impl From<CheckpointError> for ServiceError {
    fn from(e: CheckpointError) -> Self {
        ServiceError::Checkpoint(e)
    }
}

/// What a finished [`serve`] run produced.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Final metrics/report, present only for a gracefully drained
    /// window (a killed run has no final report — that is the point).
    pub result: Option<RunResult>,
    /// The startup recovery pass.
    pub recovery: RecoveryReport,
    /// Watchdog-triggered restarts performed.
    pub restarts: u32,
    /// Every watchdog trip observed, in order.
    pub trips: Vec<WatchdogDiag>,
    /// Whether the deterministic kill switch ended the run.
    pub killed: bool,
    /// Simulated clock when the run ended.
    pub final_clock: Ticks,
}

/// Run the full self-healing service: recover from the ring (or start
/// fresh), stream the service window with periodic ring snapshots,
/// restart from the ring — boundedly — on watchdog trips, and drain to
/// a final snapshot plus report at the horizon.
///
/// `make_source` / `make_policy` build fresh source and policy
/// instances: recovery may construct several (one per resume
/// candidate), and they must match the checkpointed
/// [`TaskSource::source_kind`] and
/// [`SchedulePolicy::state_label`] to be accepted.
pub fn serve<S, P, FS, FP>(
    params: &SimParams,
    make_source: FS,
    make_policy: FP,
    opts: &ServiceOptions,
) -> Result<ServiceOutcome, ServiceError>
where
    S: TaskSource,
    P: SchedulePolicy,
    FS: Fn(&SimParams) -> S,
    FP: Fn() -> P,
{
    if params.service.is_none() {
        return Err(ServiceError::NotService);
    }
    params.validate().map_err(ServiceError::Params)?;
    std::fs::create_dir_all(&opts.ring_dir).map_err(|error| ServiceError::RingDir {
        path: opts.ring_dir.clone(),
        error,
    })?;
    let apply_search = |sim: Simulation<S, P>| match opts.search {
        Some(backend) => sim.with_search_backend(backend),
        None => sim,
    };
    let build_fresh = || -> Result<Simulation<S, P>, ServiceError> {
        Simulation::new(params.clone(), make_source(params), make_policy())
            .map(apply_search)
            .map_err(ServiceError::Params)
    };
    let recover = || -> Result<(Option<Simulation<S, P>>, RecoveryReport), ServiceError> {
        let (sim, report) = recover_from_ring(&opts.ring_dir, params, &make_source, &make_policy)?;
        Ok((sim.map(apply_search), report))
    };

    let (recovered, recovery) = recover()?;
    let mut sim = match recovered {
        Some(sim) => sim,
        None => build_fresh()?,
    };
    let leg_opts = opts.leg_options();
    let mut watchdog = opts.watchdog.map(Watchdog::new);
    let mut restarts = 0u32;
    let mut trips = Vec::new();
    loop {
        match sim.run_service_leg(&leg_opts, &mut watchdog)? {
            ServiceLegEnd::Horizon => {
                let final_clock = sim.clock();
                let result = sim.finish_service();
                return Ok(ServiceOutcome {
                    result: Some(result),
                    recovery,
                    restarts,
                    trips,
                    killed: false,
                    final_clock,
                });
            }
            ServiceLegEnd::Killed => {
                let final_clock = sim.clock();
                return Ok(ServiceOutcome {
                    result: None,
                    recovery,
                    restarts,
                    trips,
                    killed: true,
                    final_clock,
                });
            }
            ServiceLegEnd::Stalled(diag) => {
                trips.push(diag);
                let budget = opts.watchdog.map_or(0, |w| w.max_restarts);
                if restarts >= budget {
                    return Err(ServiceError::WatchdogExhausted { restarts, diag });
                }
                restarts += 1;
                // Restart-from-checkpoint: drop the wedged state and
                // resume from the newest valid ring snapshot (fresh
                // start if the ring has none).
                let (recovered, _restart_report) = recover()?;
                sim = match recovered {
                    Some(sim) => sim,
                    None => build_fresh()?,
                };
                watchdog = opts.watchdog.map(Watchdog::new);
            }
        }
    }
}
