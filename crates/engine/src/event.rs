//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number makes
//! the order of simultaneous events deterministic (insertion order),
//! which in turn makes whole simulation runs reproducible bit-for-bit —
//! a property the reproducibility integration tests pin down.
//!
//! Two interchangeable backends implement that contract
//! ([`EventQueueBackend`]): the seed binary heap (`O(log n)` per
//! operation) and a Brown-style calendar queue (`O(1)` amortized),
//! added for the 1M-node scale ladder. Both pop in exactly the same
//! `(time, seq)` order — the sequence number is unique, so the minimum
//! is unambiguous and no internal layout difference can leak into the
//! event trace. Serialization is backend-independent by construction
//! (entries are written in sorted pop order), so checkpoints are
//! byte-identical across backends; the differential battery in
//! `tests/differential.rs` certifies both properties end to end.

use dreamsim_model::{EntryRef, NodeId, TaskId, Ticks};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Event {
    /// A task arrives at the resource management system.
    TaskArrival {
        /// The arriving task.
        task: TaskId,
    },
    /// A task finishes on a node slot.
    TaskCompletion {
        /// The finishing task.
        task: TaskId,
        /// Where it ran.
        entry: EntryRef,
        /// When this run of the task was placed. Fault injection can
        /// kill and resubmit a task while its completion is pending, so
        /// handlers match this against `Task::start_time` to discard
        /// events from superseded runs.
        started_at: Ticks,
    },
    /// A node fails (failure-injection extension): all its work is lost.
    NodeFailure {
        /// The failing node.
        node: NodeId,
    },
    /// A failed node comes back blank.
    NodeRepair {
        /// The repaired node.
        node: NodeId,
    },
    /// A bitstream load failed (fault-injection extension); the task
    /// re-enters scheduling after its backoff delay.
    ReconfigFailed {
        /// The task whose reconfiguration failed.
        task: TaskId,
    },
    /// A running task failed mid-execution (fault-injection extension)
    /// and frees its slot without completing.
    TaskFailed {
        /// The failing task.
        task: TaskId,
        /// Where it was running.
        entry: EntryRef,
        /// When this run of the task was placed (staleness stamp, as in
        /// [`Event::TaskCompletion`]).
        started_at: Ticks,
    },
    /// A suspended task exceeded the suspension-queue deadline
    /// (fault-injection extension) and is discarded.
    SuspensionTimeout {
        /// The timed-out task.
        task: TaskId,
        /// When the task entered the suspension queue; a resume and
        /// re-suspension in the meantime makes this event stale.
        enqueued_at: Ticks,
    },
    /// A correlated failure domain goes down (chaos extension): every
    /// member node fails atomically.
    DomainOutage {
        /// The failing domain.
        domain: u32,
        /// Fixed outage length for scripted outages; `None` for
        /// stochastic outages, whose restore delay is drawn from the
        /// domain MTTR stream when the outage fires.
        duration: Option<Ticks>,
    },
    /// A downed failure domain is restored: exactly the nodes the
    /// outage took down come back blank.
    DomainRestore {
        /// The restored domain.
        domain: u32,
    },
}

/// Selects the [`EventQueue`] implementation.
///
/// Both backends pop in exactly the same `(time, seq)` order and
/// serialize to identical bytes, so the choice is pure performance
/// tuning: `Heap` is the seed `BinaryHeap` (`O(log n)` per operation,
/// lowest constant factors at small scale), `Calendar` is a calendar
/// queue (`O(1)` amortized push/pop) for large-scale runs where the
/// heap's `log n` and cache behaviour start to bite.
///
/// The backend is *derived* state, like `SearchBackend`: it is not
/// recorded in checkpoints (deserialization always restores the heap
/// representation) and is re-selected after resume via
/// [`crate::sim::Simulation::with_event_queue_backend`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EventQueueBackend {
    /// Binary heap ordered by inverted `(time, seq)` — the seed
    /// implementation and the serde default.
    #[default]
    Heap,
    /// Brown-style calendar queue: events hash into day buckets by
    /// `time / width`; pop scans the current day's bucket for the
    /// `(time, seq)` minimum.
    Calendar,
}

impl EventQueueBackend {
    /// Parse a CLI flag value. Accepts `heap` and `calendar`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(Self::Heap),
            "calendar" => Some(Self::Calendar),
            _ => None,
        }
    }

    /// Stable label for reports and bench output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Heap => "heap",
            Self::Calendar => "calendar",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Scheduled {
    time: Ticks,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Smallest day count a calendar keeps; also the size it starts at.
const MIN_DAYS: usize = 16;

/// A calendar day-bucket array plus the cursor marking the earliest
/// possibly-occupied day.
///
/// Invariants:
/// - `buckets.len()` is a power of two, so `day % buckets.len()` is a
///   mask.
/// - `width >= 1`, so `time / width` is always defined.
/// - `cursor_day` is a lower bound on the day of every pending entry
///   (pushes lower it, pops raise it to the popped entry's day, and a
///   rebuild recomputes it exactly).
/// - `len` is the total entry count across all buckets.
///
/// Entry order *within* a bucket is arbitrary (`swap_remove` history);
/// pop order never depends on it because the `(time, seq)` minimum is
/// selected by value and `seq` is unique.
#[derive(Clone, Debug)]
struct Calendar {
    buckets: Vec<Vec<Scheduled>>,
    width: Ticks,
    cursor_day: u64,
    len: usize,
}

impl Calendar {
    /// Rebuild a calendar holding exactly `entries`, sizing the day
    /// count to the entry count and the day width to the mean gap.
    ///
    /// With `days = next_power_of_two(len)` and
    /// `width = span / len + 1`, one full bucket cycle
    /// (`days * width`) covers the whole pending span, so far-future
    /// entries rarely share a bucket with near ones and the per-pop
    /// bucket scan stays O(1) amortized. All inputs to the sizing are
    /// deterministic functions of the pending entries, so two queues
    /// holding the same entries always land in the same geometry.
    fn assemble(entries: Vec<Scheduled>) -> Self {
        let len = entries.len();
        let days = len.next_power_of_two().max(MIN_DAYS);
        let (mut min_t, mut max_t) = (Ticks::MAX, Ticks::MIN);
        for s in &entries {
            min_t = min_t.min(s.time);
            max_t = max_t.max(s.time);
        }
        let width = if len == 0 {
            1
        } else {
            // BOUND: max_t >= min_t over a non-empty set, and the mean
            // gap of u64 times fits u64; +1 keeps width >= 1.
            (max_t - min_t) / len as u64 + 1
        };
        let mut cal = Self {
            buckets: vec![Vec::new(); days],
            width,
            cursor_day: if len == 0 { 0 } else { min_t / width },
            len,
        };
        for s in entries {
            let b = cal.bucket_of(s.time / cal.width);
            cal.buckets[b].push(s);
        }
        cal
    }

    fn day_of(&self, time: Ticks) -> u64 {
        time / self.width
    }

    fn bucket_of(&self, day: u64) -> usize {
        // BOUND: truncating day to usize is intended — the bucket index
        // is day modulo the power-of-two bucket count, taken via mask.
        (day as usize) & (self.buckets.len() - 1)
    }

    fn push(&mut self, s: Scheduled) {
        let day = self.day_of(s.time);
        if self.len == 0 || day < self.cursor_day {
            self.cursor_day = day;
        }
        let b = self.bucket_of(day);
        self.buckets[b].push(s);
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        let entries: Vec<Scheduled> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        *self = Self::assemble(entries);
    }

    /// Position `(bucket, slot, day)` of the `(time, seq)` minimum.
    ///
    /// Walks days forward from `cursor_day`; within the first day that
    /// has entries, the minimum over that day is the global minimum
    /// (later days only hold later times). If a full bucket cycle of
    /// days is empty — the pending set is sparse relative to the
    /// current geometry — falls back to a direct scan of every entry.
    fn locate_min(&self) -> Option<(usize, usize, u64)> {
        if self.len == 0 {
            return None;
        }
        for d in 0..self.buckets.len() as u64 {
            let day = self.cursor_day.saturating_add(d);
            let b = self.bucket_of(day);
            // TIEBREAK: seq is unique, so the (time, seq) argmin below
            // is unambiguous — bucket-internal order (which varies with
            // swap_remove history) cannot influence which entry wins.
            let mut best: Option<(usize, Ticks, u64)> = None;
            for (slot, s) in self.buckets[b].iter().enumerate() {
                if self.day_of(s.time) == day
                    && best.is_none_or(|(_, bt, bs)| (s.time, s.seq) < (bt, bs))
                {
                    best = Some((slot, s.time, s.seq));
                }
            }
            if let Some((slot, _, _)) = best {
                return Some((b, slot, day));
            }
        }
        // Sparse fallback: nothing within one bucket cycle of the
        // cursor. Scan every entry for the global minimum directly —
        // O(len), but callers then advance the cursor to the located
        // day, so consecutive operations stay local.
        let mut best: Option<(usize, usize, Ticks, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (slot, s) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, bt, bs)| (s.time, s.seq) < (bt, bs)) {
                    best = Some((b, slot, s.time, s.seq));
                }
            }
        }
        best.map(|(b, slot, t, _)| (b, slot, self.day_of(t)))
    }

    fn remove_at(&mut self, bucket: usize, slot: usize) -> Scheduled {
        let s = self.buckets[bucket].swap_remove(slot);
        self.len -= 1;
        if self.buckets.len() > MIN_DAYS && self.len < self.buckets.len() / 8 {
            self.rebuild();
        }
        s
    }

    fn pop(&mut self) -> Option<Scheduled> {
        let (b, slot, day) = self.locate_min()?;
        // The popped entry's day is a valid lower bound for everything
        // that remains: all other times are >= the minimum time.
        self.cursor_day = day;
        Some(self.remove_at(b, slot))
    }

    fn pop_due(&mut self, now: Ticks) -> Option<Scheduled> {
        let (b, slot, day) = self.locate_min()?;
        // Advance the cursor even on a miss, so the tick-stepped
        // driver's once-per-tick probe re-finds the minimum in O(1).
        self.cursor_day = day;
        if self.buckets[b][slot].time <= now {
            Some(self.remove_at(b, slot))
        } else {
            None
        }
    }

    fn peek_time(&self) -> Option<Ticks> {
        self.locate_min()
            .map(|(b, slot, _)| self.buckets[b][slot].time)
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cursor_day = 0;
        self.len = 0;
    }

    fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum()
    }
}

#[derive(Clone, Debug)]
enum Repr {
    Heap(BinaryHeap<Scheduled>),
    Calendar(Calendar),
}

impl Default for Repr {
    fn default() -> Self {
        Self::Heap(BinaryHeap::new())
    }
}

/// Priority queue of scheduled events.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    repr: Repr,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue (heap backend).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue pre-sized for `capacity` pending events, so the
    /// simulation hot path never reallocates the heap mid-run.
    /// Capacity is invisible to every observable behaviour (pop order,
    /// serialization, checkpoints) — pinned by the capacity regression
    /// test below.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            repr: Repr::Heap(BinaryHeap::with_capacity(capacity)),
            next_seq: 0,
        }
    }

    /// The active backend.
    #[must_use]
    pub fn backend(&self) -> EventQueueBackend {
        match &self.repr {
            Repr::Heap(_) => EventQueueBackend::Heap,
            Repr::Calendar(_) => EventQueueBackend::Calendar,
        }
    }

    /// Switch backends in place, carrying every pending entry (and its
    /// original sequence number) across, so pop order — and therefore
    /// the whole event trace — is unaffected. No-op if `backend` is
    /// already active.
    pub fn set_backend(&mut self, backend: EventQueueBackend) {
        if self.backend() == backend {
            return;
        }
        let entries: Vec<Scheduled> = match std::mem::take(&mut self.repr) {
            Repr::Heap(heap) => heap.into_vec(),
            Repr::Calendar(cal) => cal.buckets.into_iter().flatten().collect(),
        };
        self.repr = match backend {
            EventQueueBackend::Heap => Repr::Heap(BinaryHeap::from(entries)),
            EventQueueBackend::Calendar => Repr::Calendar(Calendar::assemble(entries)),
        };
    }

    /// Grow the queue's capacity to at least `total` entries (no-op if
    /// already that large). Used on checkpoint resume, where
    /// deserialization sizes the heap to exactly the pending entries:
    /// this restores the expected-peak headroom so the resumed run's
    /// pushes do not reallocate either. The calendar backend grows
    /// per-bucket organically and ignores the hint — deliberately, so
    /// scale-ladder runs skip the heap's large up-front reservation.
    pub fn ensure_capacity(&mut self, total: usize) {
        if let Repr::Heap(heap) = &mut self.repr {
            let have = heap.capacity();
            if total > have {
                heap.reserve(total - have);
            }
        }
    }

    /// Remove every pending event and reset the sequence counter,
    /// keeping the allocated capacity. A cleared queue is
    /// indistinguishable from a fresh one (same tie-breaking from seq
    /// 0), which is what lets sweep workers recycle queues across
    /// points.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Heap(heap) => heap.clear(),
            Repr::Calendar(cal) => cal.clear(),
        }
        self.next_seq = 0;
    }

    /// Current allocated capacity (allocation-diet tests only). For the
    /// calendar backend this is the sum of bucket capacities.
    #[must_use]
    pub fn capacity(&self) -> usize {
        match &self.repr {
            Repr::Heap(heap) => heap.capacity(),
            Repr::Calendar(cal) => cal.capacity(),
        }
    }

    /// Schedule `event` at absolute time `time`.
    pub fn push(&mut self, time: Ticks, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled { time, seq, event };
        match &mut self.repr {
            Repr::Heap(heap) => heap.push(s),
            Repr::Calendar(cal) => cal.push(s),
        }
    }

    /// Total events ever pushed onto this queue (the next sequence
    /// number). Monotonic, survives backend switches, and is carried by
    /// checkpoints — the phase profiler reads it as `events_pushed`, and
    /// `pushes() - len()` as `events_popped` (nothing else removes
    /// entries).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.next_seq
    }

    /// Pop the earliest event, with its time.
    pub fn pop(&mut self) -> Option<(Ticks, Event)> {
        match &mut self.repr {
            Repr::Heap(heap) => heap.pop(),
            Repr::Calendar(cal) => cal.pop(),
        }
        .map(|s| (s.time, s.event))
    }

    /// Time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<Ticks> {
        match &self.repr {
            Repr::Heap(heap) => heap.peek().map(|s| s.time),
            Repr::Calendar(cal) => cal.peek_time(),
        }
    }

    /// Pop the earliest event only if it is due at or before `now`
    /// (tick-stepped driver support).
    pub fn pop_due(&mut self, now: Ticks) -> Option<(Ticks, Event)> {
        match &mut self.repr {
            Repr::Heap(heap) => {
                if heap.peek()?.time <= now {
                    heap.pop()
                } else {
                    None
                }
            }
            Repr::Calendar(cal) => cal.pop_due(now),
        }
        .map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Heap(heap) => heap.len(),
            Repr::Calendar(cal) => cal.len,
        }
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every pending entry, unsorted.
    fn entries(&self) -> Vec<&Scheduled> {
        match &self.repr {
            Repr::Heap(heap) => heap.iter().collect(),
            Repr::Calendar(cal) => cal.buckets.iter().flatten().collect(),
        }
    }

    /// All pending events in pop order (`(time, seq)` ascending), without
    /// disturbing the queue. Used by the invariant auditor and the
    /// checkpoint writer.
    #[must_use]
    pub fn pending(&self) -> Vec<(Ticks, Event)> {
        let mut entries = self.entries();
        entries.sort_by_key(|s| (s.time, s.seq));
        entries.into_iter().map(|s| (s.time, s.event)).collect()
    }
}

// Manual serde: `Scheduled` and the backend layout are private, so the
// queue serializes as its entries in pop order plus the sequence
// counter — identical bytes whichever backend is active. Restoring
// re-pushes the entries with their *original* sequence numbers, so
// same-tick tie-breaking — and therefore the whole event trace — is
// preserved bit-for-bit across a checkpoint. Deserialization always
// rebuilds the heap representation; the backend is derived state,
// re-selected after resume (see [`EventQueueBackend`]).
impl serde::Serialize for EventQueue {
    fn to_value(&self) -> serde::Value {
        let mut entries = self.entries();
        entries.sort_by_key(|s| (s.time, s.seq));
        let entries: Vec<serde::Value> = entries
            .into_iter()
            .map(|s| {
                serde::Value::Array(vec![
                    serde::Serialize::to_value(&s.time),
                    serde::Serialize::to_value(&s.seq),
                    serde::Serialize::to_value(&s.event),
                ])
            })
            .collect();
        serde::Value::Object(vec![
            ("entries".to_string(), serde::Value::Array(entries)),
            (
                "next_seq".to_string(),
                serde::Serialize::to_value(&self.next_seq),
            ),
        ])
    }
}

impl serde::Deserialize for EventQueue {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("EventQueue: expected object"))?;
        let entries = serde::__find(obj, "entries")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| serde::Error::custom("EventQueue: missing entries array"))?;
        let next_seq: u64 = serde::Deserialize::from_value(
            serde::__find(obj, "next_seq")
                .ok_or_else(|| serde::Error::custom("EventQueue: missing next_seq"))?,
        )?;
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for e in entries {
            let parts = e
                .as_array()
                .ok_or_else(|| serde::Error::custom("EventQueue: entry must be an array"))?;
            if parts.len() != 3 {
                return Err(serde::Error::custom(
                    "EventQueue: entry must be [time, seq, event]",
                ));
            }
            let time: Ticks = serde::Deserialize::from_value(&parts[0])?;
            let seq: u64 = serde::Deserialize::from_value(&parts[1])?;
            if seq >= next_seq {
                return Err(serde::Error::custom(format!(
                    "EventQueue: entry seq {seq} not below next_seq {next_seq}"
                )));
            }
            let event: Event = serde::Deserialize::from_value(&parts[2])?;
            heap.push(Scheduled { time, seq, event });
        }
        Ok(Self {
            repr: Repr::Heap(heap),
            next_seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(i: u32) -> Event {
        Event::TaskArrival { task: TaskId(i) }
    }

    /// A queue pre-switched to `backend`, for running the shared
    /// battery against both implementations.
    fn queue(backend: EventQueueBackend) -> EventQueue {
        let mut q = EventQueue::new();
        q.set_backend(backend);
        assert_eq!(q.backend(), backend);
        q
    }

    const BOTH: [EventQueueBackend; 2] = [EventQueueBackend::Heap, EventQueueBackend::Calendar];

    #[test]
    fn backend_parse_and_label_round_trip() {
        for b in BOTH {
            assert_eq!(EventQueueBackend::parse(b.label()), Some(b));
        }
        assert_eq!(EventQueueBackend::parse("ladder"), None);
        assert_eq!(EventQueueBackend::default(), EventQueueBackend::Heap);
    }

    #[test]
    fn pops_in_time_order() {
        for b in BOTH {
            let mut q = queue(b);
            q.push(30, arrival(0));
            q.push(10, arrival(1));
            q.push(20, arrival(2));
            let order: Vec<Ticks> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
            assert_eq!(order, vec![10, 20, 30]);
        }
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        for b in BOTH {
            let mut q = queue(b);
            for i in 0..10 {
                q.push(5, arrival(i));
            }
            let order: Vec<TaskId> = std::iter::from_fn(|| {
                q.pop().map(|(_, e)| match e {
                    Event::TaskArrival { task } => task,
                    _ => unreachable!(),
                })
            })
            .collect();
            assert_eq!(order, (0..10).map(TaskId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn peek_and_pop_due() {
        for b in BOTH {
            let mut q = queue(b);
            q.push(10, arrival(0));
            q.push(20, arrival(1));
            assert_eq!(q.peek_time(), Some(10));
            assert!(q.pop_due(9).is_none());
            assert_eq!(q.pop_due(10).unwrap().0, 10);
            assert_eq!(q.pop_due(100).unwrap().0, 20);
            assert!(q.pop_due(u64::MAX).is_none());
        }
    }

    #[test]
    fn len_and_empty() {
        for b in BOTH {
            let mut q = queue(b);
            assert!(q.is_empty());
            q.push(1, arrival(0));
            q.push(2, arrival(1));
            assert_eq!(q.len(), 2);
            q.pop();
            q.pop();
            assert!(q.is_empty());
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn pop_due_preserves_insertion_order_for_same_tick_events() {
        // Mixed event kinds scheduled for the same tick must drain in
        // exactly the order they were pushed — the determinism contract
        // the tick-stepped driver relies on.
        for b in BOTH {
            let mut q = queue(b);
            let same_tick: Vec<Event> = vec![
                Event::TaskArrival { task: TaskId(3) },
                Event::NodeFailure { node: NodeId(1) },
                Event::ReconfigFailed { task: TaskId(9) },
                Event::SuspensionTimeout {
                    task: TaskId(4),
                    enqueued_at: 2,
                },
                Event::DomainOutage {
                    domain: 1,
                    duration: Some(40),
                },
                Event::DomainRestore { domain: 0 },
                Event::NodeRepair { node: NodeId(1) },
                Event::TaskArrival { task: TaskId(5) },
            ];
            for e in &same_tick {
                q.push(7, *e);
            }
            let mut drained = Vec::new();
            while let Some((t, e)) = q.pop_due(7) {
                assert_eq!(t, 7);
                drained.push(e);
            }
            assert_eq!(drained, same_tick);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn pop_due_tie_break_is_stable_across_earlier_pops() {
        // Sequence numbers keep incrementing across pops, so later
        // same-tick pushes still drain in insertion order even after
        // the queue has been partially consumed.
        for b in BOTH {
            let mut q = queue(b);
            q.push(1, arrival(0));
            assert_eq!(q.pop_due(1).unwrap().0, 1);
            q.push(4, arrival(10));
            q.push(4, arrival(11));
            q.push(3, arrival(12));
            q.push(4, arrival(13));
            let order: Vec<u32> = std::iter::from_fn(|| {
                q.pop_due(4).map(|(_, e)| match e {
                    Event::TaskArrival { task } => task.0,
                    _ => unreachable!(),
                })
            })
            .collect();
            assert_eq!(order, vec![12, 10, 11, 13]);
        }
    }

    #[test]
    fn capacity_is_invisible_to_pop_order_and_serialization() {
        // The allocation-diet contract: a pre-sized queue and a fresh
        // queue fed the same pushes drain identically and serialize to
        // identical bytes.
        let mut plain = EventQueue::new();
        let mut sized = EventQueue::with_capacity(64);
        assert!(sized.capacity() >= 64);
        let pushes: Vec<(Ticks, Event)> =
            (0..20).map(|i| ((i * 13) % 7, arrival(i as u32))).collect();
        for &(t, e) in &pushes {
            plain.push(t, e);
            sized.push(t, e);
        }
        assert_eq!(plain.pending(), sized.pending());
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&sized).unwrap()
        );
        let plain_order: Vec<(Ticks, Event)> = std::iter::from_fn(|| plain.pop()).collect();
        let sized_order: Vec<(Ticks, Event)> = std::iter::from_fn(|| sized.pop()).collect();
        assert_eq!(plain_order, sized_order);
    }

    #[test]
    fn clear_resets_sequencing_but_keeps_capacity() {
        for b in BOTH {
            let mut q = queue(b);
            for i in 0..100 {
                q.push(u64::from(i % 13), arrival(i));
            }
            let cap = q.capacity();
            assert!(cap > 0);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.capacity(), cap, "clear must keep the allocation");
            // A cleared queue tie-breaks exactly like a fresh one:
            // same-tick insertion order restarts from sequence 0.
            let mut fresh = EventQueue::new();
            for i in 0..6 {
                q.push(3, arrival(100 + i));
                fresh.push(3, arrival(100 + i));
            }
            assert_eq!(q.pending(), fresh.pending());
            assert_eq!(
                serde_json::to_string(&q).unwrap(),
                serde_json::to_string(&fresh).unwrap()
            );
        }
    }

    #[test]
    fn ensure_capacity_grows_but_never_shrinks() {
        let mut q = EventQueue::new();
        q.ensure_capacity(100);
        let grown = q.capacity();
        assert!(grown >= 100);
        q.ensure_capacity(10);
        assert_eq!(q.capacity(), grown, "ensure_capacity never shrinks");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for b in BOTH {
            let mut q = queue(b);
            q.push(50, arrival(0));
            q.push(10, arrival(1));
            assert_eq!(q.pop().unwrap().0, 10);
            q.push(5, arrival(2));
            q.push(60, arrival(3));
            assert_eq!(q.pop().unwrap().0, 5);
            assert_eq!(q.pop().unwrap().0, 50);
            assert_eq!(q.pop().unwrap().0, 60);
        }
    }

    /// Deterministic mixed workload driven by a splitmix64 stream:
    /// bursts of pushes (with clustered times to force ties) alternate
    /// with drains and occasional serialization snapshots. Both
    /// backends must agree on every pop and every snapshot byte.
    #[test]
    fn backends_agree_on_mixed_workload_and_snapshots() {
        let mut heap = queue(EventQueueBackend::Heap);
        let mut cal = queue(EventQueueBackend::Calendar);
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rand = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut next_id = 0u32;
        for round in 0..200u32 {
            let pushes = (rand() % 17) as usize;
            for _ in 0..pushes {
                // Cluster times into a narrow band (ties!) with an
                // occasional far-future outlier to stress bucket
                // wraparound and the sparse fallback.
                let r = rand();
                let t = if r % 19 == 0 {
                    1_000_000_000 + r % 100_000
                } else {
                    u64::from(round) * 10 + r % 7
                };
                heap.push(t, arrival(next_id));
                cal.push(t, arrival(next_id));
                next_id += 1;
            }
            let pops = (rand() % 13) as usize;
            for _ in 0..pops {
                assert_eq!(heap.pop(), cal.pop());
            }
            assert_eq!(heap.len(), cal.len());
            assert_eq!(heap.peek_time(), cal.peek_time());
            if round % 37 == 0 {
                assert_eq!(heap.pending(), cal.pending());
                assert_eq!(
                    serde_json::to_string(&heap).unwrap(),
                    serde_json::to_string(&cal).unwrap(),
                    "mid-stream snapshots must be byte-identical"
                );
            }
        }
        // Full drain: every remaining pop identical.
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            assert_eq!(h, c);
            if h.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_survives_resize_and_sparse_spans() {
        // Grow through several rebuilds, then drain a sparse residue
        // whose gaps exceed one bucket cycle (exercising the fallback
        // scan), asserting full sorted order throughout.
        let mut q = queue(EventQueueBackend::Calendar);
        let mut expect: Vec<(Ticks, u32)> = Vec::new();
        for i in 0..3000u32 {
            let t = u64::from(i.wrapping_mul(2_654_435_761) % 1000) * 1_000_003;
            q.push(t, arrival(i));
            expect.push((t, i));
        }
        expect.sort_by_key(|&(t, i)| (t, i));
        let drained: Vec<(Ticks, u32)> = std::iter::from_fn(|| {
            q.pop().map(|(t, e)| match e {
                Event::TaskArrival { task } => (t, task.0),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(drained, expect);
    }

    #[test]
    fn set_backend_mid_stream_preserves_order_and_bytes() {
        // Heap → Calendar → Heap with pending entries at every switch:
        // serialization bytes and the final drain order never change.
        let mut reference = queue(EventQueueBackend::Heap);
        let mut switched = queue(EventQueueBackend::Heap);
        for i in 0..50 {
            reference.push(u64::from(i % 11), arrival(i));
            switched.push(u64::from(i % 11), arrival(i));
        }
        switched.set_backend(EventQueueBackend::Calendar);
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&switched).unwrap()
        );
        for i in 50..80 {
            reference.push(u64::from(i % 5), arrival(i));
            switched.push(u64::from(i % 5), arrival(i));
        }
        switched.set_backend(EventQueueBackend::Heap);
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&switched).unwrap()
        );
        let a: Vec<(Ticks, Event)> = std::iter::from_fn(|| reference.pop()).collect();
        let b: Vec<(Ticks, Event)> = std::iter::from_fn(|| switched.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn deserialized_queue_restores_heap_backend() {
        let mut q = queue(EventQueueBackend::Calendar);
        for i in 0..10 {
            q.push(u64::from(i), arrival(i));
        }
        let json = serde_json::to_string(&q).unwrap();
        let restored: EventQueue = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.backend(), EventQueueBackend::Heap);
        assert_eq!(restored.pending(), q.pending());
    }
}
