//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number makes
//! the order of simultaneous events deterministic (insertion order),
//! which in turn makes whole simulation runs reproducible bit-for-bit —
//! a property the reproducibility integration tests pin down.

use dreamsim_model::{EntryRef, NodeId, TaskId, Ticks};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Event {
    /// A task arrives at the resource management system.
    TaskArrival {
        /// The arriving task.
        task: TaskId,
    },
    /// A task finishes on a node slot.
    TaskCompletion {
        /// The finishing task.
        task: TaskId,
        /// Where it ran.
        entry: EntryRef,
        /// When this run of the task was placed. Fault injection can
        /// kill and resubmit a task while its completion is pending, so
        /// handlers match this against `Task::start_time` to discard
        /// events from superseded runs.
        started_at: Ticks,
    },
    /// A node fails (failure-injection extension): all its work is lost.
    NodeFailure {
        /// The failing node.
        node: NodeId,
    },
    /// A failed node comes back blank.
    NodeRepair {
        /// The repaired node.
        node: NodeId,
    },
    /// A bitstream load failed (fault-injection extension); the task
    /// re-enters scheduling after its backoff delay.
    ReconfigFailed {
        /// The task whose reconfiguration failed.
        task: TaskId,
    },
    /// A running task failed mid-execution (fault-injection extension)
    /// and frees its slot without completing.
    TaskFailed {
        /// The failing task.
        task: TaskId,
        /// Where it was running.
        entry: EntryRef,
        /// When this run of the task was placed (staleness stamp, as in
        /// [`Event::TaskCompletion`]).
        started_at: Ticks,
    },
    /// A suspended task exceeded the suspension-queue deadline
    /// (fault-injection extension) and is discarded.
    SuspensionTimeout {
        /// The timed-out task.
        task: TaskId,
        /// When the task entered the suspension queue; a resume and
        /// re-suspension in the meantime makes this event stale.
        enqueued_at: Ticks,
    },
    /// A correlated failure domain goes down (chaos extension): every
    /// member node fails atomically.
    DomainOutage {
        /// The failing domain.
        domain: u32,
        /// Fixed outage length for scripted outages; `None` for
        /// stochastic outages, whose restore delay is drawn from the
        /// domain MTTR stream when the outage fires.
        duration: Option<Ticks>,
    },
    /// A downed failure domain is restored: exactly the nodes the
    /// outage took down come back blank.
    DomainRestore {
        /// The restored domain.
        domain: u32,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Scheduled {
    time: Ticks,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of scheduled events.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue pre-sized for `capacity` pending events, so the
    /// simulation hot path never reallocates the heap mid-run.
    /// Capacity is invisible to every observable behaviour (pop order,
    /// serialization, checkpoints) — pinned by the capacity regression
    /// test below.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Grow the heap's capacity to at least `total` entries (no-op if
    /// already that large). Used on checkpoint resume, where
    /// deserialization sizes the heap to exactly the pending entries:
    /// this restores the expected-peak headroom so the resumed run's
    /// pushes do not reallocate either.
    pub fn ensure_capacity(&mut self, total: usize) {
        let have = self.heap.capacity();
        if total > have {
            self.heap.reserve(total - have);
        }
    }

    /// Remove every pending event and reset the sequence counter,
    /// keeping the allocated capacity. A cleared queue is
    /// indistinguishable from a fresh one (same tie-breaking from seq
    /// 0), which is what lets sweep workers recycle queues across
    /// points.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Current heap capacity (allocation-diet tests only).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `event` at absolute time `time`.
    pub fn push(&mut self, time: Ticks, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pop the earliest event, with its time.
    pub fn pop(&mut self) -> Option<(Ticks, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<Ticks> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the earliest event only if it is due at or before `now`
    /// (tick-stepped driver support).
    pub fn pop_due(&mut self, now: Ticks) -> Option<(Ticks, Event)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// All pending events in pop order (`(time, seq)` ascending), without
    /// disturbing the queue. Used by the invariant auditor and the
    /// checkpoint writer.
    #[must_use]
    pub fn pending(&self) -> Vec<(Ticks, Event)> {
        let mut entries: Vec<&Scheduled> = self.heap.iter().collect();
        entries.sort_by_key(|s| (s.time, s.seq));
        entries.into_iter().map(|s| (s.time, s.event)).collect()
    }
}

// Manual serde: `Scheduled` and the heap layout are private, so the queue
// serializes as its entries in pop order plus the sequence counter.
// Restoring re-pushes the entries with their *original* sequence numbers,
// so same-tick tie-breaking — and therefore the whole event trace — is
// preserved bit-for-bit across a checkpoint.
impl serde::Serialize for EventQueue {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<&Scheduled> = self.heap.iter().collect();
        entries.sort_by_key(|s| (s.time, s.seq));
        let entries: Vec<serde::Value> = entries
            .into_iter()
            .map(|s| {
                serde::Value::Array(vec![
                    serde::Serialize::to_value(&s.time),
                    serde::Serialize::to_value(&s.seq),
                    serde::Serialize::to_value(&s.event),
                ])
            })
            .collect();
        serde::Value::Object(vec![
            ("entries".to_string(), serde::Value::Array(entries)),
            (
                "next_seq".to_string(),
                serde::Serialize::to_value(&self.next_seq),
            ),
        ])
    }
}

impl serde::Deserialize for EventQueue {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("EventQueue: expected object"))?;
        let entries = serde::__find(obj, "entries")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| serde::Error::custom("EventQueue: missing entries array"))?;
        let next_seq: u64 = serde::Deserialize::from_value(
            serde::__find(obj, "next_seq")
                .ok_or_else(|| serde::Error::custom("EventQueue: missing next_seq"))?,
        )?;
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for e in entries {
            let parts = e
                .as_array()
                .ok_or_else(|| serde::Error::custom("EventQueue: entry must be an array"))?;
            if parts.len() != 3 {
                return Err(serde::Error::custom(
                    "EventQueue: entry must be [time, seq, event]",
                ));
            }
            let time: Ticks = serde::Deserialize::from_value(&parts[0])?;
            let seq: u64 = serde::Deserialize::from_value(&parts[1])?;
            if seq >= next_seq {
                return Err(serde::Error::custom(format!(
                    "EventQueue: entry seq {seq} not below next_seq {next_seq}"
                )));
            }
            let event: Event = serde::Deserialize::from_value(&parts[2])?;
            heap.push(Scheduled { time, seq, event });
        }
        Ok(Self { heap, next_seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(i: u32) -> Event {
        Event::TaskArrival { task: TaskId(i) }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, arrival(0));
        q.push(10, arrival(1));
        q.push(20, arrival(2));
        let order: Vec<Ticks> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5, arrival(i));
        }
        let order: Vec<TaskId> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::TaskArrival { task } => task,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, (0..10).map(TaskId).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_pop_due() {
        let mut q = EventQueue::new();
        q.push(10, arrival(0));
        q.push(20, arrival(1));
        assert_eq!(q.peek_time(), Some(10));
        assert!(q.pop_due(9).is_none());
        assert_eq!(q.pop_due(10).unwrap().0, 10);
        assert_eq!(q.pop_due(100).unwrap().0, 20);
        assert!(q.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, arrival(0));
        q.push(2, arrival(1));
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_due_preserves_insertion_order_for_same_tick_events() {
        // Mixed event kinds scheduled for the same tick must drain in
        // exactly the order they were pushed — the determinism contract
        // the tick-stepped driver relies on.
        let mut q = EventQueue::new();
        let same_tick: Vec<Event> = vec![
            Event::TaskArrival { task: TaskId(3) },
            Event::NodeFailure { node: NodeId(1) },
            Event::ReconfigFailed { task: TaskId(9) },
            Event::SuspensionTimeout {
                task: TaskId(4),
                enqueued_at: 2,
            },
            Event::DomainOutage {
                domain: 1,
                duration: Some(40),
            },
            Event::DomainRestore { domain: 0 },
            Event::NodeRepair { node: NodeId(1) },
            Event::TaskArrival { task: TaskId(5) },
        ];
        for e in &same_tick {
            q.push(7, *e);
        }
        let mut drained = Vec::new();
        while let Some((t, e)) = q.pop_due(7) {
            assert_eq!(t, 7);
            drained.push(e);
        }
        assert_eq!(drained, same_tick);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_tie_break_is_stable_across_earlier_pops() {
        // Sequence numbers keep incrementing across pops, so later
        // same-tick pushes still drain in insertion order even after
        // the heap has been partially consumed.
        let mut q = EventQueue::new();
        q.push(1, arrival(0));
        assert_eq!(q.pop_due(1).unwrap().0, 1);
        q.push(4, arrival(10));
        q.push(4, arrival(11));
        q.push(3, arrival(12));
        q.push(4, arrival(13));
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop_due(4).map(|(_, e)| match e {
                Event::TaskArrival { task } => task.0,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![12, 10, 11, 13]);
    }

    #[test]
    fn capacity_is_invisible_to_pop_order_and_serialization() {
        // The allocation-diet contract: a pre-sized queue and a fresh
        // queue fed the same pushes drain identically and serialize to
        // identical bytes.
        let mut plain = EventQueue::new();
        let mut sized = EventQueue::with_capacity(64);
        assert!(sized.capacity() >= 64);
        let pushes: Vec<(Ticks, Event)> =
            (0..20).map(|i| ((i * 13) % 7, arrival(i as u32))).collect();
        for &(t, e) in &pushes {
            plain.push(t, e);
            sized.push(t, e);
        }
        assert_eq!(plain.pending(), sized.pending());
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&sized).unwrap()
        );
        let plain_order: Vec<(Ticks, Event)> = std::iter::from_fn(|| plain.pop()).collect();
        let sized_order: Vec<(Ticks, Event)> = std::iter::from_fn(|| sized.pop()).collect();
        assert_eq!(plain_order, sized_order);
    }

    #[test]
    fn clear_resets_sequencing_but_keeps_capacity() {
        let mut q = EventQueue::with_capacity(32);
        for i in 0..10 {
            q.push(5, arrival(i));
        }
        let cap = q.capacity();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), cap, "clear must keep the allocation");
        // A cleared queue tie-breaks exactly like a fresh one: same-tick
        // insertion order restarts from sequence 0.
        let mut fresh = EventQueue::new();
        for i in 0..6 {
            q.push(3, arrival(100 + i));
            fresh.push(3, arrival(100 + i));
        }
        assert_eq!(q.pending(), fresh.pending());
        assert_eq!(
            serde_json::to_string(&q).unwrap(),
            serde_json::to_string(&fresh).unwrap()
        );
    }

    #[test]
    fn ensure_capacity_grows_but_never_shrinks() {
        let mut q = EventQueue::new();
        q.ensure_capacity(100);
        let grown = q.capacity();
        assert!(grown >= 100);
        q.ensure_capacity(10);
        assert_eq!(q.capacity(), grown, "ensure_capacity never shrinks");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(50, arrival(0));
        q.push(10, arrival(1));
        assert_eq!(q.pop().unwrap().0, 10);
        q.push(5, arrival(2));
        q.push(60, arrival(3));
        assert_eq!(q.pop().unwrap().0, 5);
        assert_eq!(q.pop().unwrap().0, 50);
        assert_eq!(q.pop().unwrap().0, 60);
    }
}
