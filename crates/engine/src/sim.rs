//! The simulation driver (the UML's `DreamSim` class).
//!
//! [`Simulation`] wires together a [`TaskSource`] (input subsystem), a
//! [`SchedulePolicy`] (core subsystem's task scheduling manager), the
//! resource manager (information subsystem), and the statistics/report
//! machinery (output subsystem), then runs the discrete-event loop:
//!
//! 1. **TaskArrival** — `RunScheduler()`: the policy decides *place /
//!    suspend / discard* for the arriving task.
//! 2. **TaskCompletion** — `TaskCompletionProc()`: the slot is released
//!    back to its configuration's idle list and the policy gets a chance
//!    to pull suitable tasks out of the suspension queue.
//! 3. **NodeFailure / NodeRepair** — failure-injection extension.
//! 4. **ReconfigFailed / TaskFailed / SuspensionTimeout** — fault-model
//!    extension (see [`crate::fault`]): bitstream-load retries with
//!    bounded exponential backoff, mid-run execution failures with
//!    resubmission, and suspension-queue deadlines.
//!
//! ## Timing semantics (Eq. 8)
//!
//! A task placed at decision time `t_d` starts occupying the node
//! immediately; it completes at `t_d + t_config + t_comm + t_required`,
//! where `t_config` is the configuration time if the placement
//! (re)configured a region and `t_comm` is the node's network delay. Its
//! waiting time is `(t_d − t_create) + t_comm + t_config`, exactly Eq. 8
//! with `t_start = t_d` (the moment the RMS submits the task to the
//! node).

use crate::audit::AuditError;
use crate::checkpoint::{self, Checkpoint, CheckpointError};
use crate::event::{Event, EventQueue};
use crate::fault::FaultModel;
use crate::init;
use crate::monitor::Observer;
use crate::params::{AdmissionPolicy, DomainOutageKind, ParamsError, ReconfigMode, SimParams};
use crate::report::Report;
use crate::ring::CheckpointRing;
use crate::service::{ServiceLegEnd, ServiceLegOptions, Watchdog};
use crate::stats::{Metrics, PhaseKind, Stats, WindowStats};
use dreamsim_model::{
    Area, ConfigId, EntryRef, NodeId, PreferredConfig, ResourceManager, StepCounter,
    SuspensionQueue, Task, TaskId, TaskState, Ticks,
};
use dreamsim_rng::Rng;

/// Specification of one task to inject, produced by a [`TaskSource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Ticks after the previous arrival (the paper draws U\[1..50\]).
    pub interarrival: Ticks,
    /// Execution time on the preferred configuration (`t_required`).
    pub required_time: Ticks,
    /// Preferred configuration.
    pub preferred: PreferredConfig,
    /// Area of the preferred configuration (`NeededArea`).
    pub needed_area: Area,
    /// Input data size in bytes.
    pub data_bytes: u64,
}

/// What a [`TaskSource`] yields when polled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceYield {
    /// Inject this task next.
    Task(TaskSpec),
    /// Nothing ready now, but completions may unlock more (task-graph
    /// sources gate children on their parents). The driver re-polls
    /// after each completion.
    NotYet,
    /// The source is exhausted for good.
    Exhausted,
}

/// Source of tasks (the input subsystem: synthetic generation, real
/// workload traces, or task graphs).
///
/// **Id contract:** the `k`-th task yielded (0-based) receives `TaskId(k)`
/// — ids are assigned densely in yield order, so sources can predict the
/// ids of their own tasks (task-graph sources rely on this to match
/// [`on_task_completed`](Self::on_task_completed) notifications to graph
/// nodes).
pub trait TaskSource {
    /// Produce the next task, drawing any randomness from `rng`.
    fn next_task(&mut self, now: Ticks, rng: &mut Rng) -> SourceYield;

    /// Notification that a previously yielded task completed
    /// (task-graph dependency tracking). Default: ignored.
    fn on_task_completed(&mut self, _task: TaskId, _now: Ticks) {}

    /// Identity of this source kind, recorded in checkpoints;
    /// [`Simulation::resume`] refuses a source of a different kind.
    /// Sources whose yields depend only on the RNG (whose position the
    /// checkpoint captures) can keep the default.
    fn source_kind(&self) -> &'static str {
        "stateless"
    }

    /// Replay cursor captured in checkpoints. Sources that walk an
    /// in-memory list (e.g. recorded traces) report their position here
    /// and honour it in [`restore_cursor`](Self::restore_cursor);
    /// RNG-driven sources keep the default `0`.
    fn source_cursor(&self) -> u64 {
        0
    }

    /// Restore a cursor previously reported by
    /// [`source_cursor`](Self::source_cursor), returning whether this
    /// source supports resuming at all. Sources whose progress cannot be
    /// reconstructed from a cursor (e.g. completion-gated task graphs)
    /// return `false`, making [`Simulation::resume`] fail with a typed
    /// error instead of silently replaying from a wrong state. Default:
    /// ignore the cursor and allow resume (correct for RNG-driven
    /// sources, whose entire position lives in the checkpointed RNG).
    fn restore_cursor(&mut self, _cursor: u64) -> bool {
        true
    }
}

/// Why a task was discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscardReason {
    /// Neither the preferred nor a closest-match configuration exists.
    NoClosestConfig,
    /// No node — idle, blank, or busy — could ever host the required
    /// configuration.
    NoFeasibleNode,
    /// Still suspended when the simulation drained.
    SuspensionDrain,
    /// Exceeded the configured maximum suspension retries.
    RetryLimit,
    /// Killed by an injected node failure.
    NodeFailed,
    /// Bitstream loading failed repeatedly and no larger configuration
    /// exists to degrade to (fault-injection extension).
    ReconfigFailed,
    /// Failed mid-execution and exhausted the resubmission budget
    /// (fault-injection extension).
    ExecutionFailed,
    /// Waited in the suspension queue longer than the configured
    /// deadline (fault-injection extension).
    SuspensionTimeout,
    /// Rejected by the `block` admission policy: the bounded suspension
    /// queue was full when the task tried to enter it (chaos-layer
    /// extension).
    AdmissionBlocked,
    /// Evicted from the bounded suspension queue by the `shed-oldest`
    /// admission policy to make room for a newer task (chaos-layer
    /// extension).
    AdmissionShed,
}

impl DiscardReason {
    /// Whether the discard was caused by injected faults (feeds the
    /// *tasks lost* counter).
    #[must_use]
    pub fn is_fault(self) -> bool {
        matches!(
            self,
            DiscardReason::NodeFailed
                | DiscardReason::ReconfigFailed
                | DiscardReason::ExecutionFailed
                | DiscardReason::SuspensionTimeout
        )
    }

    /// Whether the discard was a load-shedding action — an
    /// admission-policy rejection or a blown suspension deadline (feeds
    /// the *tasks shed* counter).
    #[must_use]
    pub fn is_shed(self) -> bool {
        matches!(
            self,
            DiscardReason::AdmissionBlocked
                | DiscardReason::AdmissionShed
                | DiscardReason::SuspensionTimeout
        )
    }
}

/// Which Fig. 5 phase produced a placement (re-exported alias of the
/// stats-side enum so policies only import from one place).
pub use crate::stats::PhaseKind as PlacePhase;

/// A placement the policy enacted on the resource manager; the driver
/// turns it into task-table updates, events, and statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The placed task.
    pub task: TaskId,
    /// The slot it runs on.
    pub entry: EntryRef,
    /// The configuration it runs under (preferred or closest match).
    pub config: ConfigId,
    /// Configuration time paid (0 for direct allocation).
    pub config_time: Ticks,
    /// Which algorithmic phase placed it.
    pub phase: PhaseKind,
}

/// Outcome of scheduling one arriving task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Placed on a node (resources already mutated by the policy).
    Placed(Placement),
    /// Parked in the suspension queue (policy already pushed it).
    Suspended,
    /// Rejected.
    Discarded(DiscardReason),
}

/// Outcome of a suspension-queue rescan after a slot freed up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resume {
    /// A suspended task was placed.
    Placed(Placement),
    /// A suspended task was discarded (e.g. retry limit).
    Discarded {
        /// The discarded task.
        task: TaskId,
        /// Why.
        reason: DiscardReason,
    },
}

/// Dense task table (the driver's master copy of every task).
///
/// Serialization is custom: the table writes the compact columnar form
/// from [`crate::compact`] (`{"count": n, "packed": "<base64>"}`), which
/// is what makes version-2 checkpoints small. Deserialization dispatches
/// on shape and also accepts the legacy `{"tasks": [...]}` array so
/// version-1 checkpoints keep loading.
#[derive(Clone, Debug, Default)]
pub struct TaskTable {
    tasks: Vec<Task>,
}

impl serde::Serialize for TaskTable {
    fn to_value(&self) -> serde::Value {
        let packed = crate::compact::to_base64(&crate::compact::encode_tasks(&self.tasks));
        serde::Value::Object(vec![
            (
                "count".to_string(),
                serde::Value::Number(serde::Number::U(self.tasks.len() as u64)),
            ),
            ("packed".to_string(), serde::Value::String(packed)),
        ])
    }
}

impl serde::Deserialize for TaskTable {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(packed) = value.get("packed") {
            let s = packed
                .as_str()
                .ok_or_else(|| serde::Error::custom("TaskTable: packed must be a string"))?;
            let bytes = crate::compact::from_base64(s)
                .map_err(|e| serde::Error::custom(format!("TaskTable: {e}")))?;
            let tasks = crate::compact::decode_tasks(&bytes)
                .map_err(|e| serde::Error::custom(format!("TaskTable: {e}")))?;
            if let Some(count) = value.get("count").and_then(serde::Value::as_u64) {
                if count != tasks.len() as u64 {
                    return Err(serde::Error::custom(format!(
                        "TaskTable: count {count} disagrees with packed length {}",
                        tasks.len()
                    )));
                }
            }
            return Ok(Self { tasks });
        }
        let legacy = value
            .get("tasks")
            .ok_or_else(|| serde::Error::custom("TaskTable: expected packed or tasks field"))?;
        let tasks = Vec::<Task>::from_value(legacy)?;
        for (i, t) in tasks.iter().enumerate() {
            if t.id.index() != i {
                return Err(serde::Error::custom(format!(
                    "TaskTable: legacy task {i} has non-dense id {}",
                    t.id.index()
                )));
            }
        }
        Ok(Self { tasks })
    }
}

impl TaskTable {
    /// The version-1 serialization (`{"tasks": [...]}`), used by
    /// [`crate::checkpoint::write_checkpoint_compat_v1`] to produce
    /// old-format files that compatibility tests resume from.
    pub(crate) fn to_legacy_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "tasks".to_string(),
            serde::Serialize::to_value(&self.tasks),
        )])
    }

    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks created so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks have been created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Append a task; its id must equal its index.
    pub fn push(&mut self, task: Task) {
        assert_eq!(task.id.index(), self.tasks.len(), "task ids must be dense");
        self.tasks.push(task);
    }

    /// Borrow a task.
    #[must_use]
    pub fn get(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Mutably borrow a task.
    pub fn get_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.index()]
    }

    /// Iterate all tasks.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Consume into the underlying vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<Task> {
        self.tasks
    }
}

/// Mutable view handed to the policy on every scheduling decision.
pub struct SchedCtx<'a> {
    /// Current simulation time.
    pub now: Ticks,
    /// Reconfiguration mode of the run.
    pub mode: ReconfigMode,
    /// Whether suspension is enabled (ablation A3).
    pub suspension_enabled: bool,
    /// Retry budget for suspended tasks (`None` = unlimited).
    pub max_sus_retries: Option<u64>,
    /// The resource information manager.
    pub resources: &'a mut ResourceManager,
    /// The suspension queue.
    pub suspension: &'a mut SuspensionQueue,
    /// The task table (policies read preferences and bump retry counts).
    pub tasks: &'a mut TaskTable,
    /// Search-step accounting.
    pub steps: &'a mut StepCounter,
    /// Randomness for stochastic policies.
    pub rng: &'a mut Rng,
}

/// A scheduling policy (the `Scheduler` class). Implementations mutate
/// resources through the context and report what they did; the driver
/// owns time, events, and statistics.
pub trait SchedulePolicy {
    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;

    /// Decide placement for an arriving (or resumed) task.
    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Decision;

    /// A slot on `freed` just became idle; pull any suitable suspended
    /// tasks. Called after every task completion.
    fn on_slot_freed(&mut self, ctx: &mut SchedCtx<'_>, freed: EntryRef) -> Vec<Resume>;

    /// A failed node came back online blank (failure-injection
    /// extension). Default: no action.
    fn on_node_repaired(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId) -> Vec<Resume> {
        Vec::new()
    }

    /// Identity label recorded in checkpoints; [`Simulation::resume`]
    /// refuses a policy with a different label. Policies whose behaviour
    /// depends on construction parameters (e.g. a search strategy) must
    /// fold them into the label so a resume cannot silently switch
    /// algorithms mid-run. Default: the policy [`name`](Self::name).
    fn state_label(&self) -> String {
        self.name().to_string()
    }
}

/// Options controlling checkpointing and auditing during a run
/// ([`Simulation::run_with`] / [`Simulation::run_tick_stepped_with`]).
/// The default — everything off — makes those drivers behave exactly
/// like [`Simulation::run`] / [`Simulation::run_tick_stepped`].
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Write a checkpoint whenever the clock crosses a multiple of this
    /// many ticks (after the crossing event is dispatched). `None`
    /// disables periodic checkpoints.
    pub checkpoint_every: Option<Ticks>,
    /// Directory receiving periodic checkpoints, created on first write.
    /// Files are named `checkpoint-<clock>.dsc`. `None` means the
    /// current directory.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Run the invariant auditor after **every** dispatched event
    /// (expensive; for tests and fault hunts).
    pub audit: bool,
    /// Run the invariant auditor whenever the clock crosses a multiple
    /// of this many ticks. Checkpoint boundaries always audit, with or
    /// without this.
    pub audit_every: Option<Ticks>,
}

/// Why a checkpointed/audited run ([`Simulation::run_with`]) aborted.
#[derive(Debug)]
pub enum RunError {
    /// The auditor found corrupted simulator state; the run stopped
    /// before acting on it.
    Audit(AuditError),
    /// A periodic checkpoint could not be written.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Audit(e) => write!(f, "audit failed: {e}"),
            RunError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Audit(e) => Some(e),
            RunError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<AuditError> for RunError {
    fn from(e: AuditError) -> Self {
        RunError::Audit(e)
    }
}

impl From<CheckpointError> for RunError {
    fn from(e: CheckpointError) -> Self {
        RunError::Checkpoint(e)
    }
}

/// Result of a finished run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Finalized Table I metrics.
    pub metrics: Metrics,
    /// Full report (parameters + metrics).
    pub report: Report,
    /// Final state of every task.
    pub tasks: Vec<Task>,
    /// Deterministic per-phase operation counters for the run (see
    /// [`crate::profile`]).
    pub profile: crate::profile::PhaseProfile,
}

/// Reusable allocation arena for back-to-back runs (sweep points).
///
/// A simulation built with [`Simulation::new_with_scratch`] steals the
/// arena's buffers (event heap, wait-sample vector, task table) instead
/// of allocating fresh ones, and a run finished through
/// [`Simulation::run_with_scratch`] hands them back — cleared but with
/// capacity intact — so the next point on the same worker reallocates
/// nothing. Capacity is unobservable: pop order, reports, and
/// checkpoint bytes are identical whether or not an arena is used
/// (pinned by `scratch_reuse_is_byte_identical`).
#[derive(Debug, Default)]
pub struct SimScratch {
    events: EventQueue,
    wait_samples: Vec<Ticks>,
    tasks: Vec<Task>,
}

impl SimScratch {
    /// Fresh, empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a finished run's task vector to the arena once the caller
    /// is done reading it, so the next point reuses its capacity.
    pub fn reclaim_tasks(&mut self, mut tasks: Vec<Task>) {
        tasks.clear();
        self.tasks = tasks;
    }
}

/// Per-tick scheduling steps charged while the suspension queue is
/// non-empty: the tick-driven scheduler of the original simulator probes
/// the queue head every timetick (a bounded feasibility check across the
/// four Fig. 5 phases — configuration lookup plus idle/blank/busy
/// list-head tests). Calibrated against the paper's Fig. 9a magnitudes
/// (≈2 000–4 500 steps/task at 200 nodes; see EXPERIMENTS.md).
pub const POLL_SCHED_STEPS: u64 = 16;

/// Per-tick, per-node housekeeping steps charged while the suspension
/// queue is non-empty: the resource information module's per-tick
/// maintenance of dynamic node/configuration state ("housekeeping jobs
/// such as maintaining the current states of nodes and configurations",
/// Table I). Calibrated against Fig. 9b (total workload ≈1.6×10¹⁰ at
/// 100 000 tasks / 200 nodes).
pub const POLL_HOUSEKEEPING_PER_NODE: u64 = 3;

/// Capacity hint for the event heap. Pending events at any moment are
/// bounded by: one chained arrival, at most one completion-or-failure
/// event per occupied slot (a handful per node under partial
/// reconfiguration), one failure-process event per node plus its
/// repair, and one timeout per suspended task — so a small per-node
/// multiple, capped by a per-task multiple for tiny workloads on big
/// grids. Purely a size hint: heap capacity is unobservable in pop
/// order, reports, and checkpoint bytes.
fn expected_pending_events(params: &SimParams) -> usize {
    let per_node = params.total_nodes.saturating_mul(4).saturating_add(64);
    let per_task = params.total_tasks.saturating_mul(2).saturating_add(16);
    per_node.min(per_task)
}

/// First multiple of `every` strictly after `clock` (intervals of 0 are
/// treated as 1 so boundary arithmetic can never stall the clock).
fn next_boundary(clock: Ticks, every: Ticks) -> Ticks {
    let every = every.max(1);
    (clock / every + 1) * every
}

/// Up-front reservation cap for service-mode runs, whose `total_tasks`
/// is a horizon-derived upper bound rather than an expected count.
const SERVICE_RESERVE_CAP: usize = 1 << 20;

/// The simulation driver.
pub struct Simulation<S, P> {
    params: SimParams,
    resources: ResourceManager,
    tasks: TaskTable,
    events: EventQueue,
    suspension: SuspensionQueue,
    steps: StepCounter,
    stats: Stats,
    rng: Rng,
    fault: FaultModel,
    // REBUILD: the checkpoint captures the source as (source_kind,
    // source_cursor); [`Simulation::resume`] checks the kind and
    // fast-forwards a caller-supplied source via `restore_cursor`.
    source: S,
    policy: P,
    // REBUILD: observers are process-local hooks, deliberately outside
    // the snapshot; callers re-register them after resume.
    observers: Vec<Box<dyn Observer>>,
    clock: Ticks,
    created: usize,
    last_arrival: Ticks,
    /// The source reported `NotYet`; re-poll after the next completion.
    stalled: bool,
    /// Whether [`prime`](Self::prime) already ran (true for resumed
    /// simulations, whose checkpoint captured the primed state).
    // REBUILD: resume constructs the simulation with primed = true;
    // a checkpoint is only ever taken after priming.
    primed: bool,
    /// Checkpoint files written by this process's run loop.
    // REBUILD: deliberately not checkpointed — the phase profiler
    // describes the live process, so a resumed run restarts its
    // checkpoint-write accounting at zero.
    checkpoints_written: u64,
    /// Total bytes of checkpoint data written by this process.
    // REBUILD: same process-local window as `checkpoints_written`.
    checkpoint_bytes: u64,
}

impl<S: TaskSource, P: SchedulePolicy> Simulation<S, P> {
    /// Build a simulation: validates parameters and generates the node
    /// and configuration tables from the master seed.
    pub fn new(params: SimParams, source: S, policy: P) -> Result<Self, ParamsError> {
        Self::new_with_scratch(params, source, policy, &mut SimScratch::new())
    }

    /// Like [`new`](Self::new), but steal the buffers of a
    /// [`SimScratch`] arena instead of allocating fresh ones. The arena
    /// is left empty; [`run_with_scratch`](Self::run_with_scratch)
    /// refills it when the run finishes. Behavior is identical to
    /// [`new`](Self::new) — only allocation traffic changes.
    pub fn new_with_scratch(
        params: SimParams,
        source: S,
        policy: P,
        scratch: &mut SimScratch,
    ) -> Result<Self, ParamsError> {
        params.validate()?;
        let mut rng = Rng::seed_from(params.seed);
        let configs = init::generate_configs(&params, &mut rng);
        let nodes = init::generate_nodes(&params, &mut rng);
        let resources = ResourceManager::new(nodes, configs);
        let fault = FaultModel::new(&params);
        let mut events = std::mem::take(&mut scratch.events);
        events.clear();
        events.ensure_capacity(expected_pending_events(&params));
        let mut stats = Stats::default();
        if let Some(s) = &params.service {
            if s.window > 0 {
                stats.window = Some(WindowStats::new(s.window, s.window_retain));
            }
        }
        // Service-mode task budgets are a horizon-derived upper bound,
        // not an expected count — cap the up-front reservations so a
        // long horizon doesn't pre-allocate gigabytes. Capacity is
        // unobservable (pop order, reports, and checkpoint bytes are
        // identical either way).
        let reserve_budget = if params.service.is_some() {
            params.total_tasks.min(SERVICE_RESERVE_CAP)
        } else {
            params.total_tasks
        };
        stats.wait_samples = std::mem::take(&mut scratch.wait_samples);
        stats.wait_samples.clear();
        let extra = reserve_budget.saturating_sub(stats.wait_samples.capacity());
        stats.wait_samples.reserve(extra);
        let mut task_vec = std::mem::take(&mut scratch.tasks);
        task_vec.clear();
        let extra = reserve_budget.saturating_sub(task_vec.capacity());
        task_vec.reserve(extra);
        Ok(Self {
            fault,
            params,
            resources,
            tasks: TaskTable { tasks: task_vec },
            events,
            suspension: SuspensionQueue::new(),
            steps: StepCounter::new(),
            stats,
            rng,
            source,
            policy,
            observers: Vec::new(),
            clock: 0,
            created: 0,
            last_arrival: 0,
            stalled: false,
            primed: false,
            checkpoints_written: 0,
            checkpoint_bytes: 0,
        })
    }

    /// Rebuild a simulation from a [`Checkpoint`].
    ///
    /// The caller supplies a fresh `source` and `policy` of the same
    /// kind the checkpointed run used — verified against the recorded
    /// [`TaskSource::source_kind`] and [`SchedulePolicy::state_label`];
    /// a mismatch is rejected with [`CheckpointError::State`] rather
    /// than silently resuming under a different algorithm. The source's
    /// replay cursor is restored, the restored state is audited
    /// ([`Self::audit`]) before anything runs, and observers start
    /// empty (they are not captured; see [`crate::checkpoint`]).
    ///
    /// Running a resumed simulation to completion produces bit-identical
    /// results to the uninterrupted run, on either driver.
    pub fn resume(cp: Checkpoint, mut source: S, policy: P) -> Result<Self, CheckpointError> {
        cp.params
            .validate()
            .map_err(|e| CheckpointError::State(format!("invalid parameters: {e}")))?;
        let label = policy.state_label();
        if label != cp.policy {
            return Err(CheckpointError::State(format!(
                "policy mismatch: checkpoint was taken under {:?}, resuming with {label:?}",
                cp.policy
            )));
        }
        if source.source_kind() != cp.source_kind {
            return Err(CheckpointError::State(format!(
                "source mismatch: checkpoint was fed by {:?}, resuming with {:?}",
                cp.source_kind,
                source.source_kind()
            )));
        }
        if !source.restore_cursor(cp.source_cursor) {
            return Err(CheckpointError::State(format!(
                "source kind {:?} does not support resuming from a checkpoint",
                cp.source_kind
            )));
        }
        let mut stats = cp.stats;
        stats.wait_samples = cp.wait_samples;
        let mut events = cp.events;
        // Deserialization sizes the heap to exactly the pending entries;
        // restore the same headroom a fresh run starts with so the
        // resumed half pushes without regrowing (capacity is
        // unobservable — resumes stay byte-identical).
        events.ensure_capacity(expected_pending_events(&cp.params));
        let sim = Self {
            params: cp.params,
            resources: cp.resources,
            tasks: cp.tasks,
            events,
            suspension: cp.suspension,
            steps: cp.steps,
            stats,
            rng: cp.rng,
            fault: cp.fault,
            source,
            policy,
            observers: Vec::new(),
            clock: cp.clock,
            // BOUND: created is at most total_tasks, which is itself a usize.
            created: cp.created as usize,
            last_arrival: cp.last_arrival,
            stalled: cp.stalled,
            primed: true,
            checkpoints_written: 0,
            checkpoint_bytes: 0,
        };
        sim.audit()
            .map_err(|e| CheckpointError::State(format!("restored state failed audit: {e}")))?;
        Ok(sim)
    }

    /// Snapshot the complete current state (see [`crate::checkpoint`]
    /// for what is and is not captured).
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            params: self.params.clone(),
            policy: self.policy.state_label(),
            source_kind: self.source.source_kind().to_string(),
            source_cursor: self.source.source_cursor(),
            resources: self.resources.clone(),
            tasks: self.tasks.clone(),
            events: self.events.clone(),
            suspension: self.suspension.clone(),
            steps: self.steps,
            stats: self.stats.clone(),
            wait_samples: self.stats.wait_samples.clone(),
            rng: self.rng.clone(),
            fault: self.fault.clone(),
            clock: self.clock,
            created: self.created as u64,
            last_arrival: self.last_arrival,
            stalled: self.stalled,
        }
    }

    /// Snapshot the deterministic per-phase operation counters (see
    /// [`crate::profile`]). Cheap — every counter already exists in live
    /// state — so it can be read mid-run or after [`run`](Self::run).
    #[must_use]
    pub fn phase_profile(&self) -> crate::profile::PhaseProfile {
        crate::profile::PhaseProfile {
            scheduling_steps: self.steps.scheduling,
            housekeeping_steps: self.steps.housekeeping,
            store_mutations: self.resources.mutation_ops(),
            events_pushed: self.events.pushes(),
            // BOUND: every popped event was pushed first, so len ≤ pushes.
            events_popped: self.events.pushes() - self.events.len() as u64,
            stats_samples: self.stats.generated + self.stats.completed + self.stats.discarded,
            checkpoints_written: self.checkpoints_written,
            checkpoint_bytes: self.checkpoint_bytes,
            allocations: None,
        }
    }

    /// Cross-check all live state with the invariant auditor
    /// ([`crate::audit::check`]).
    pub fn audit(&self) -> Result<(), AuditError> {
        crate::audit::check(
            &self.resources,
            &self.tasks,
            &self.events,
            &self.suspension,
            self.clock,
            self.fault.num_domains(),
        )
    }

    /// Attach an observer (monitoring module).
    #[must_use]
    pub fn with_observer(mut self, obs: Box<dyn Observer>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Select the store's search backend (CLI `--search`). Both
    /// backends produce byte-identical reports, figures, and
    /// checkpoints — they differ only in wall-clock speed (DESIGN.md
    /// §11). Works on fresh *and* resumed simulations: checkpoints
    /// never carry the index, so this is also how a resumed run
    /// re-selects the indexed backend (the index is rebuilt from the
    /// restored store).
    #[must_use]
    pub fn with_search_backend(mut self, backend: dreamsim_model::SearchBackend) -> Self {
        self.resources.set_search_backend(backend);
        self
    }

    /// Select the event-queue backend (CLI `--event-queue`). Both
    /// backends pop in the same exact `(time, seq)` order and
    /// serialize identically, so reports *and* checkpoints are
    /// byte-identical — the calendar queue trades the heap's `log n`
    /// for O(1) amortized operations at scale (DESIGN.md §16). Works
    /// on fresh and resumed simulations: checkpoints never record the
    /// backend, so this is also how a resumed run re-selects the
    /// calendar (pending entries are carried across the switch).
    #[must_use]
    pub fn with_event_queue_backend(mut self, backend: crate::event::EventQueueBackend) -> Self {
        self.events.set_backend(backend);
        self
    }

    /// Select the waiting-time statistics backend (CLI `--stats`).
    /// The sketch keeps percentiles byte-identical to the exact
    /// backend up to [`crate::stats::WaitSketch::EXACT_WINDOW`] placed
    /// tasks and error-bounded beyond, in O(1) memory — the scale
    /// ladder's second leg (DESIGN.md §16). On a resumed simulation
    /// the checkpoint's own sketch state wins: converting to `Sketch`
    /// is a no-op if one was restored, and a restored *collapsed*
    /// sketch refuses conversion back to `Exact` (the samples are
    /// gone; see [`crate::stats::StatsBackend`]).
    #[must_use]
    pub fn with_stats_backend(mut self, backend: crate::stats::StatsBackend) -> Self {
        self.stats.set_backend(backend);
        self
    }

    /// Read-only access to the resource manager (tests/monitoring).
    #[must_use]
    pub fn resources(&self) -> &ResourceManager {
        &self.resources
    }

    /// Run event-driven to completion.
    pub fn run(self) -> RunResult {
        self.run_with(&RunOptions::default())
            // INVARIANT: RunError only arises from checkpoint I/O or a
            // failed audit; default options enable neither.
            .expect("a run without checkpoints or audits cannot fail")
    }

    /// Run event-driven to completion with periodic checkpoints and/or
    /// audits. With default options this is exactly [`run`](Self::run).
    ///
    /// Boundary semantics: after an event is dispatched at time `t`, a
    /// checkpoint (and audit) fires if `t` reached the next multiple of
    /// the configured interval. Both drivers dispatch the same events at
    /// the same clock values in the same order, so they hit identical
    /// boundary states — checkpoints taken by this driver and by
    /// [`run_tick_stepped_with`](Self::run_tick_stepped_with) under the
    /// same options are byte-identical.
    pub fn run_with(mut self, opts: &RunOptions) -> Result<RunResult, RunError> {
        self.drive(opts)?;
        Ok(self.finish(None))
    }

    /// [`run_with`](Self::run_with), returning the big buffers to a
    /// [`SimScratch`] arena after the report is assembled so the next
    /// run on this worker reuses their capacity. Results are identical
    /// to [`run_with`](Self::run_with).
    pub fn run_with_scratch(
        mut self,
        opts: &RunOptions,
        scratch: &mut SimScratch,
    ) -> Result<RunResult, RunError> {
        self.drive(opts)?;
        Ok(self.finish(Some(scratch)))
    }

    /// The event-driven main loop shared by the `run*` entry points.
    fn drive(&mut self, opts: &RunOptions) -> Result<(), RunError> {
        let mut next_cp = opts.checkpoint_every.map(|e| next_boundary(self.clock, e));
        let mut next_audit = opts.audit_every.map(|e| next_boundary(self.clock, e));
        if !self.primed {
            self.prime();
            self.primed = true;
        }
        // Under --audit, validate the starting state before acting on
        // it: corruption must surface as a typed error, not as a panic
        // inside the first dispatch that trips over it.
        if opts.audit {
            self.audit()?;
        }
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.clock, "time must be monotone");
            self.charge_idle_polls(t - self.clock);
            self.clock = t;
            self.dispatch(ev);
            self.at_boundary(opts, &mut next_cp, &mut next_audit)?;
        }
        Ok(())
    }

    /// Step accounting for the interval between events: the original
    /// tick-driven simulator re-examines the suspension queue every
    /// timetick. Between events nothing observable changes, so those
    /// probes are guaranteed failures — they cost search steps but
    /// cannot alter the schedule, which lets the event-driven driver
    /// charge them arithmetically and remain trace-equivalent to the
    /// tick-stepped driver.
    fn charge_idle_polls(&mut self, elapsed: Ticks) {
        if elapsed == 0 || self.suspension.is_empty() {
            return;
        }
        self.steps.charge(
            dreamsim_model::steps::StepKind::Scheduling,
            // BOUND: elapsed <= makespan and the poll constant is small; product far below 2^64.
            elapsed * POLL_SCHED_STEPS,
        );
        self.steps.charge(
            dreamsim_model::steps::StepKind::Housekeeping,
            // BOUND: elapsed x small constant x node count stays far below 2^64.
            elapsed * POLL_HOUSEKEEPING_PER_NODE * self.params.total_nodes as u64,
        );
    }

    /// Run tick-stepped: the clock advances one timetick at a time, as
    /// in the paper's `IncreaseTimeTick()` loop. Produces results
    /// identical to [`run`](Self::run) (property-tested); kept for
    /// cross-validation and the driver ablation. O(total ticks), so use
    /// small workloads.
    pub fn run_tick_stepped(self) -> RunResult {
        self.run_tick_stepped_with(&RunOptions::default())
            // INVARIANT: RunError only arises from checkpoint I/O or a
            // failed audit; default options enable neither.
            .expect("a run without checkpoints or audits cannot fail")
    }

    /// Tick-stepped counterpart of [`run_with`](Self::run_with); same
    /// boundary semantics, byte-identical checkpoints.
    pub fn run_tick_stepped_with(mut self, opts: &RunOptions) -> Result<RunResult, RunError> {
        let mut next_cp = opts.checkpoint_every.map(|e| next_boundary(self.clock, e));
        let mut next_audit = opts.audit_every.map(|e| next_boundary(self.clock, e));
        if !self.primed {
            self.prime();
            self.primed = true;
        }
        // See run_with: audit the starting state before acting on it.
        if opts.audit {
            self.audit()?;
        }
        while !self.events.is_empty() {
            while let Some((t, ev)) = self.events.pop_due(self.clock) {
                debug_assert_eq!(t, self.clock);
                self.dispatch(ev);
                self.at_boundary(opts, &mut next_cp, &mut next_audit)?;
            }
            if self.events.is_empty() {
                break;
            }
            self.charge_idle_polls(1);
            // BOUND: one tick per loop iteration; runs end far below 2^64.
            self.clock += 1;
        }
        Ok(self.finish(None))
    }

    /// Current simulated clock (service orchestration and tests).
    #[must_use]
    pub fn clock(&self) -> Ticks {
        self.clock
    }

    /// Run one open-system **service leg**: dispatch every event with a
    /// timestamp strictly before the service horizon
    /// ([`crate::params::ServiceParams::horizon`]), rolling
    /// sliding-window metrics, snapshotting into the checkpoint ring at
    /// interval boundaries, and feeding the watchdog after every event.
    ///
    /// On reaching the horizon the leg charges the trailing idle-poll
    /// interval, rolls the final window buckets, and drains to a final
    /// ring snapshot (graceful shutdown); events scheduled at or past
    /// the horizon stay queued — and therefore inside the snapshot — so
    /// resuming a completed window is a no-op. The deterministic kill
    /// switch ([`ServiceLegOptions::stop_at`]) instead returns
    /// [`ServiceLegEnd::Killed`] *without* a final snapshot, exactly
    /// like a SIGKILL: state past the last ring entry is lost and must
    /// be recovered by replay.
    ///
    /// Boundary semantics match [`run_with`](Self::run_with), so a leg
    /// resumed from any ring snapshot reproduces the uninterrupted
    /// leg's state — and every later ring snapshot — byte for byte.
    pub fn run_service_leg(
        &mut self,
        opts: &ServiceLegOptions,
        watchdog: &mut Option<Watchdog>,
    ) -> Result<ServiceLegEnd, RunError> {
        let horizon = self
            .params
            .service
            // INVARIANT: service legs are only reachable through
            // `service::serve` and service tests, which both require a
            // service block in the parameters.
            .expect("run_service_leg requires SimParams::service")
            .horizon;
        let ring = opts
            .ring_dir
            .as_ref()
            .map(|dir| CheckpointRing::new(dir.clone(), opts.ring_retain));
        let mut next_ring = ring
            .as_ref()
            .map(|_| next_boundary(self.clock, opts.ring_every));
        let mut next_audit = opts.audit_every.map(|e| next_boundary(self.clock, e));
        if !self.primed {
            self.prime();
            self.primed = true;
        }
        // See run_with: audit the starting (possibly just-restored)
        // state before acting on it.
        if opts.audit {
            self.audit()?;
        }
        while let Some((t, ev)) = self.events.pop_due(horizon.saturating_sub(1)) {
            debug_assert!(t >= self.clock, "time must be monotone");
            self.charge_idle_polls(t - self.clock);
            self.clock = t;
            if let Some(w) = &mut self.stats.window {
                w.roll(t);
            }
            self.dispatch(ev);
            self.at_service_boundary(opts, ring.as_ref(), &mut next_ring, &mut next_audit)?;
            if let Some(wd) = watchdog {
                let progress = self.stats.completed + self.stats.discarded;
                if let Some(diag) = wd.observe(self.clock, progress, self.suspension.len() as u64) {
                    return Ok(ServiceLegEnd::Stalled(diag));
                }
            }
            if opts.stop_at.is_some_and(|kill_at| self.clock >= kill_at) {
                return Ok(ServiceLegEnd::Killed);
            }
        }
        // Horizon reached (or the queue ran dry below it): charge the
        // trailing idle interval, close the window buckets, and drain
        // to the final ring snapshot.
        if self.clock < horizon {
            self.charge_idle_polls(horizon - self.clock);
            self.clock = horizon;
        }
        if let Some(w) = &mut self.stats.window {
            w.roll(self.clock);
        }
        if let Some(ring) = &ring {
            // A due snapshot always audits first (see at_boundary).
            self.audit()?;
            ring.write(&self.checkpoint())?;
        }
        Ok(ServiceLegEnd::Horizon)
    }

    /// Service-leg counterpart of [`at_boundary`](Self::at_boundary):
    /// same audit-before-snapshot ordering, but snapshots go through
    /// the pruning [`CheckpointRing`] instead of a bare directory.
    fn at_service_boundary(
        &mut self,
        opts: &ServiceLegOptions,
        ring: Option<&CheckpointRing>,
        next_ring: &mut Option<Ticks>,
        next_audit: &mut Option<Ticks>,
    ) -> Result<(), RunError> {
        let ring_due = next_ring.is_some_and(|t| self.clock >= t);
        let audit_due = next_audit.is_some_and(|t| self.clock >= t);
        if opts.audit || ring_due || audit_due {
            self.audit()?;
        }
        if audit_due {
            *next_audit = Some(next_boundary(self.clock, opts.audit_every.unwrap_or(1)));
        }
        if ring_due {
            // INVARIANT: next_ring is only armed when a ring exists.
            let ring = ring.expect("ring boundary without a ring");
            ring.write(&self.checkpoint())?;
            *next_ring = Some(next_boundary(self.clock, opts.ring_every));
        }
        Ok(())
    }

    /// Finalize a drained service window into the standard
    /// [`RunResult`] (metrics, report, task table) — the service-mode
    /// counterpart of the batch drivers' implicit finish.
    #[must_use]
    pub fn finish_service(self) -> RunResult {
        self.finish(None)
    }

    /// Post-dispatch hook of the `*_with` drivers: audit and/or write a
    /// periodic checkpoint when the clock has crossed the next interval
    /// boundary. A due checkpoint always audits first — persisting a
    /// corrupted snapshot would poison every future resume.
    fn at_boundary(
        &mut self,
        opts: &RunOptions,
        next_cp: &mut Option<Ticks>,
        next_audit: &mut Option<Ticks>,
    ) -> Result<(), RunError> {
        let cp_due = next_cp.is_some_and(|t| self.clock >= t);
        let audit_due = next_audit.is_some_and(|t| self.clock >= t);
        if opts.audit || cp_due || audit_due {
            self.audit()?;
        }
        if audit_due {
            let every = opts.audit_every.unwrap_or(1);
            *next_audit = Some(next_boundary(self.clock, every));
        }
        if cp_due {
            let every = opts.checkpoint_every.unwrap_or(1);
            let dir = opts
                .checkpoint_dir
                .clone()
                .unwrap_or_else(|| std::path::PathBuf::from("."));
            std::fs::create_dir_all(&dir)
                .map_err(|e| RunError::Checkpoint(CheckpointError::Io(e)))?;
            let path = dir.join(format!("checkpoint-{:012}.dsc", self.clock));
            let bytes = checkpoint::write_checkpoint(&path, &self.checkpoint())?;
            self.checkpoints_written += 1;
            self.checkpoint_bytes += bytes;
            *next_cp = Some(next_boundary(self.clock, every));
        }
        Ok(())
    }

    fn prime(&mut self) {
        self.poll_source();
        if let Some(mtbf) = self.params.node_mtbf {
            let delay = self.draw_failure_delay(mtbf);
            let node = NodeId::from_index(self.rng.index(self.params.total_nodes));
            self.events.push(delay, Event::NodeFailure { node });
        }
        if self.fault.mttf_active() {
            // Per-node failure processes: every node gets its own first
            // time-to-failure (contrast with the legacy `node_mtbf`
            // global chain above, which fails one victim at a time).
            for i in 0..self.params.total_nodes {
                let delay = self.fault.draw_ttf();
                self.events.push(
                    delay,
                    Event::NodeFailure {
                        node: NodeId::from_index(i),
                    },
                );
            }
        }
        // Chaos layer: pre-schedule every scripted outage, then arm the
        // stochastic per-domain outage processes. Domain-free runs take
        // neither branch and draw nothing from the domain stream.
        for &s in self.fault.scripted_outages() {
            self.events.push(
                s.at,
                Event::DomainOutage {
                    domain: s.domain,
                    duration: Some(s.duration),
                },
            );
        }
        if self.fault.domain_mttf_active() {
            for d in 0..self.fault.num_domains() {
                let delay = self.fault.draw_domain_ttf();
                self.events.push(
                    delay,
                    Event::DomainOutage {
                        // BOUND: domain count is validated <= total_nodes, far below 2^32.
                        domain: d as u32,
                        duration: None,
                    },
                );
            }
        }
    }

    fn draw_failure_delay(&mut self, mean: u64) -> Ticks {
        (self.rng.exponential_with_mean(mean as f64).round() as Ticks).max(1)
    }

    /// Poll the source for the next task (if the budget allows), append
    /// it to the table, and schedule its arrival. Returns whether a task
    /// was scheduled.
    fn poll_source(&mut self) -> bool {
        if self.created >= self.params.total_tasks {
            return false;
        }
        let spec = match self.source.next_task(self.clock, &mut self.rng) {
            SourceYield::Task(spec) => spec,
            SourceYield::NotYet => {
                self.stalled = true;
                return false;
            }
            SourceYield::Exhausted => return false,
        };
        // Arrivals are monotone: dependency-gated tasks released at the
        // current time chain from `now` rather than the (earlier) last
        // scheduled arrival.
        let arrival = self.last_arrival.max(self.clock) + spec.interarrival;
        self.last_arrival = arrival;
        let id = TaskId::from_index(self.tasks.len());
        // For in-list preferences the task's NeededArea mirrors the
        // configuration's ReqArea (the source may not know the table).
        let needed_area = match spec.preferred {
            PreferredConfig::Known(c) if c.index() < self.resources.num_configs() => {
                self.resources.config(c).req_area
            }
            _ => spec.needed_area,
        };
        let task = Task::new(id, arrival, spec.required_time, spec.preferred, needed_area)
            .with_data_bytes(spec.data_bytes);
        self.tasks.push(task);
        self.created += 1;
        self.events.push(arrival, Event::TaskArrival { task: id });
        true
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::TaskArrival { task } => self.handle_arrival(task),
            Event::TaskCompletion {
                task,
                entry,
                started_at,
            } => self.handle_completion(task, entry, started_at),
            Event::NodeFailure { node } => self.handle_failure(node),
            Event::NodeRepair { node } => self.handle_repair(node),
            Event::ReconfigFailed { task } => self.handle_reconfig_retry(task),
            Event::TaskFailed {
                task,
                entry,
                started_at,
            } => self.handle_task_failed(task, entry, started_at),
            Event::SuspensionTimeout { task, enqueued_at } => {
                self.handle_suspension_timeout(task, enqueued_at);
            }
            Event::DomainOutage { domain, duration } => {
                self.handle_domain_outage(domain, duration);
            }
            Event::DomainRestore { domain } => self.handle_domain_restore(domain),
        }
    }

    fn ctx_and_policy(&mut self) -> (SchedCtx<'_>, &mut P) {
        (
            SchedCtx {
                now: self.clock,
                mode: self.params.mode,
                suspension_enabled: self.params.suspension_enabled,
                max_sus_retries: self.params.max_sus_retries,
                resources: &mut self.resources,
                suspension: &mut self.suspension,
                tasks: &mut self.tasks,
                steps: &mut self.steps,
                rng: &mut self.rng,
            },
            &mut self.policy,
        )
    }

    fn handle_arrival(&mut self, task: TaskId) {
        self.stats.record_arrival();
        for obs in &mut self.observers {
            obs.on_arrival(self.clock, self.tasks.get(task));
            obs.on_snapshot(self.clock, &self.resources, self.suspension.len());
        }
        let (mut ctx, policy) = self.ctx_and_policy();
        let decision = policy.schedule(&mut ctx, task);
        match decision {
            Decision::Placed(p) => self.enact_placement(p, false),
            Decision::Suspended => self.enact_suspension(task),
            Decision::Discarded(reason) => self.enact_discard(task, reason),
        }
        // Chain the next arrival.
        self.poll_source();
    }

    fn handle_completion(&mut self, task: TaskId, entry: EntryRef, started_at: Ticks) {
        // Stale event: the task was killed by a node failure after this
        // completion was scheduled (its slot was evicted and possibly
        // reused by another placement, and the task itself possibly
        // resubmitted and re-placed). The event is current only if the
        // task is still running the run that scheduled it — same start
        // time — on the same slot.
        {
            let t = self.tasks.get(task);
            if t.state != TaskState::Running || t.start_time != Some(started_at) {
                return;
            }
        }
        if self
            .resources
            .node(entry.node)
            .slot(entry.slot)
            .is_none_or(|s| s.task != Some(task))
        {
            return;
        }
        let released = self
            .resources
            .release_task(entry, &mut self.steps)
            // INVARIANT: the staleness guard above verified the slot is
            // live and still holds `task`; the auditor pins the same
            // task ⇔ slot bijection on every audited event.
            .expect("completion event for a live busy slot");
        assert_eq!(released, task, "completion event / slot task mismatch");
        {
            let t = self.tasks.get_mut(task);
            t.completion_time = Some(self.clock);
            t.state = TaskState::Completed;
        }
        let residence = self.clock - self.tasks.get(task).create_time;
        self.stats.record_completion(residence);
        for obs in &mut self.observers {
            obs.on_completion(self.clock, self.tasks.get(task));
        }
        let (mut ctx, policy) = self.ctx_and_policy();
        let resumes = policy.on_slot_freed(&mut ctx, entry);
        self.enact_resumes(resumes);
        // Dependency-gated sources may have tasks unlocked by this
        // completion.
        self.source.on_task_completed(task, self.clock);
        if self.stalled {
            self.stalled = false;
            while self.poll_source() {}
        }
    }

    fn handle_failure(&mut self, node: NodeId) {
        if !self.resources.node(node).down {
            let killed = self.resources.fail_node(node, &mut self.steps);
            self.stats.node_failures += 1;
            self.fault.mark_down(node, self.clock);
            for t in killed {
                self.stats.failure_killed += 1;
                // Resubmission applies only under the fault model; the
                // legacy global failure process discards outright.
                self.resubmit_or_discard(t, DiscardReason::NodeFailed);
            }
            for obs in &mut self.observers {
                obs.on_node_failure(self.clock, node);
            }
            let repair_at = if self.fault.mttf_active() {
                // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
                self.clock + self.fault.draw_ttr()
            } else {
                let mttr = self.params.node_mttr.max(1);
                // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
                self.clock + self.draw_failure_delay(mttr)
            };
            self.events.push(repair_at, Event::NodeRepair { node });
        } else if self.fault.mttf_active() {
            // The node is already down — a domain outage beat this
            // node's own failure process to it. Re-arm the per-node
            // chain (normally done by the repair event) so the process
            // survives the outage; unreachable without domains, where
            // each node has exactly one pending failure-or-repair event.
            let unfinished = self.stats.completed + self.stats.discarded < self.created as u64;
            if self.created < self.params.total_tasks || unfinished {
                let delay = self.fault.draw_ttf();
                self.events
                    // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
                    .push(self.clock + delay, Event::NodeFailure { node });
            }
        }
        // Chain the next failure only while simulation work remains:
        // arrivals still pending or tasks not yet terminal. (Gating on
        // queue emptiness would self-sustain forever — the repair event
        // this failure just scheduled would count as "work".)
        if let Some(mtbf) = self.params.node_mtbf {
            let unfinished = self.stats.completed + self.stats.discarded < self.created as u64;
            if self.created < self.params.total_tasks || unfinished {
                let delay = self.draw_failure_delay(mtbf);
                let victim = NodeId::from_index(self.rng.index(self.params.total_nodes));
                self.events
                    // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
                    .push(self.clock + delay, Event::NodeFailure { node: victim });
            }
        }
    }

    fn handle_repair(&mut self, node: NodeId) {
        self.resources.repair_node(node);
        self.fault.mark_up(node, self.clock);
        for obs in &mut self.observers {
            obs.on_node_repair(self.clock, node);
        }
        // Re-arm this node's failure process while simulation work
        // remains (same gating as the legacy chain in handle_failure).
        if self.fault.mttf_active() {
            let unfinished = self.stats.completed + self.stats.discarded < self.created as u64;
            if self.created < self.params.total_tasks || unfinished {
                let delay = self.fault.draw_ttf();
                self.events
                    // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
                    .push(self.clock + delay, Event::NodeFailure { node });
            }
        }
        let (mut ctx, policy) = self.ctx_and_policy();
        let resumes = policy.on_node_repaired(&mut ctx, node);
        self.enact_resumes(resumes);
    }

    /// A correlated domain outage fired: every member node still up goes
    /// down atomically. Under [`DomainOutageKind::Fail`] the tasks
    /// running on those nodes are killed (and follow the fault model's
    /// resubmission rules); under [`DomainOutageKind::Partition`] the
    /// domain is merely unreachable — its tasks are re-suspended and
    /// restart from scratch when capacity frees up elsewhere.
    fn handle_domain_outage(&mut self, domain: u32, duration: Option<Ticks>) {
        // An outage on an already-down domain collapses into the open
        // one; only the stochastic chain needs re-arming so the process
        // survives the overlap.
        if self.fault.domain_is_down(domain) {
            if duration.is_none() {
                self.rearm_domain_chain(domain);
            }
            return;
        }
        let members = self.fault.domain_members(domain);
        let kind = self.fault.domain_kind();
        let mut victims = Vec::new();
        let mut evicted = Vec::new();
        for i in members {
            let node = NodeId::from_index(i);
            // Nodes already down for their own reasons keep their own
            // repair schedule and are not claimed by this outage.
            if self.resources.node(node).down {
                continue;
            }
            let killed = self.resources.fail_node(node, &mut self.steps);
            self.fault.mark_down(node, self.clock);
            // BOUND: node indices are < total_nodes, far below 2^32.
            victims.push(i as u32);
            evicted.extend(killed);
            for obs in &mut self.observers {
                obs.on_node_failure(self.clock, node);
            }
        }
        self.fault.mark_domain_down(domain, self.clock, victims);
        for obs in &mut self.observers {
            obs.on_domain_outage(self.clock, domain);
        }
        match kind {
            DomainOutageKind::Fail => {
                for t in evicted {
                    self.stats.failure_killed += 1;
                    self.resubmit_or_discard(t, DiscardReason::NodeFailed);
                }
            }
            DomainOutageKind::Partition if !self.params.suspension_enabled => {
                // Without a suspension queue (ablation A3) partitioned
                // tasks have nowhere to wait; they follow the failure
                // path instead.
                for t in evicted {
                    self.stats.failure_killed += 1;
                    self.resubmit_or_discard(t, DiscardReason::NodeFailed);
                }
            }
            DomainOutageKind::Partition => {
                for t in evicted {
                    {
                        let task = self.tasks.get_mut(t);
                        task.state = TaskState::Created;
                        task.start_time = None;
                        task.assigned_config = None;
                    }
                    self.suspension.push(t, &mut self.steps);
                    self.enact_suspension(t);
                }
            }
        }
        let restore_at = match duration {
            // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
            Some(d) => self.clock + d,
            // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
            None => self.clock + self.fault.draw_domain_ttr(),
        };
        self.events
            .push(restore_at, Event::DomainRestore { domain });
    }

    /// A domain outage ended: repair exactly the nodes the outage took
    /// down (they come back blank), give the policy a crack at the
    /// suspension queue per node, and re-arm the stochastic outage
    /// process.
    fn handle_domain_restore(&mut self, domain: u32) {
        let victims = self.fault.mark_domain_up(domain, self.clock);
        for obs in &mut self.observers {
            obs.on_domain_restore(self.clock, domain);
        }
        for i in victims {
            // BOUND: u32 node index; usize is at least 32 bits on every supported target.
            let node = NodeId::from_index(i as usize);
            self.resources.repair_node(node);
            self.fault.mark_up(node, self.clock);
            for obs in &mut self.observers {
                obs.on_node_repair(self.clock, node);
            }
            let (mut ctx, policy) = self.ctx_and_policy();
            let resumes = policy.on_node_repaired(&mut ctx, node);
            self.enact_resumes(resumes);
        }
        self.rearm_domain_chain(domain);
    }

    /// Schedule the next stochastic outage for `domain` while simulation
    /// work remains (same gating as the node-failure chains).
    fn rearm_domain_chain(&mut self, domain: u32) {
        if !self.fault.domain_mttf_active() {
            return;
        }
        let unfinished = self.stats.completed + self.stats.discarded < self.created as u64;
        if self.created < self.params.total_tasks || unfinished {
            let delay = self.fault.draw_domain_ttf();
            self.events.push(
                // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
                self.clock + delay,
                Event::DomainOutage {
                    domain,
                    duration: None,
                },
            );
        }
    }

    /// A bitstream-load retry came due: run the task through scheduling
    /// again (it kept — or degraded — its resolved configuration).
    fn handle_reconfig_retry(&mut self, task: TaskId) {
        // The task waits out its backoff in `Created` state and is in no
        // queue or slot, so nothing else should touch it; guard anyway
        // so a stale event can never double-schedule.
        if self.tasks.get(task).state != TaskState::Created {
            return;
        }
        let (mut ctx, policy) = self.ctx_and_policy();
        let decision = policy.schedule(&mut ctx, task);
        match decision {
            Decision::Placed(p) => self.enact_placement(p, false),
            Decision::Suspended => self.enact_suspension(task),
            Decision::Discarded(reason) => self.enact_discard(task, reason),
        }
    }

    /// A running task failed mid-execution: free its slot, then let
    /// suspended tasks claim the capacity before resubmitting the failed
    /// task itself (they waited longer).
    fn handle_task_failed(&mut self, task: TaskId, entry: EntryRef, started_at: Ticks) {
        // Stale-event guards mirror handle_completion.
        {
            let t = self.tasks.get(task);
            if t.state != TaskState::Running || t.start_time != Some(started_at) {
                return;
            }
        }
        if self
            .resources
            .node(entry.node)
            .slot(entry.slot)
            .is_none_or(|s| s.task != Some(task))
        {
            return;
        }
        let released = self
            .resources
            .release_task(entry, &mut self.steps)
            // INVARIANT: the staleness guard above verified the slot is
            // live and still holds `task`; the auditor pins the same
            // task ⇔ slot bijection on every audited event.
            .expect("failure event for a live busy slot");
        assert_eq!(released, task, "failure event / slot task mismatch");
        self.stats.task_failures += 1;
        {
            let t = self.tasks.get_mut(task);
            t.state = TaskState::Created;
            t.start_time = None;
            t.assigned_config = None;
        }
        for obs in &mut self.observers {
            obs.on_task_failed(self.clock, self.tasks.get(task));
        }
        let (mut ctx, policy) = self.ctx_and_policy();
        let resumes = policy.on_slot_freed(&mut ctx, entry);
        self.enact_resumes(resumes);
        self.resubmit_or_discard(task, DiscardReason::ExecutionFailed);
    }

    /// A suspension deadline came due; stale if the task was resumed
    /// (and possibly re-suspended) since it was scheduled.
    fn handle_suspension_timeout(&mut self, task: TaskId, enqueued_at: Ticks) {
        {
            let t = self.tasks.get(task);
            if t.state != TaskState::Suspended || t.suspended_at != Some(enqueued_at) {
                return;
            }
        }
        let removed = self.suspension.remove_task(task, &mut self.steps);
        debug_assert!(removed, "suspended task missing from the queue");
        self.enact_discard(task, DiscardReason::SuspensionTimeout);
    }

    /// Resubmit a fault-killed task to the scheduler, or discard it with
    /// `reason` once resubmission is off or the retry budget is spent.
    fn resubmit_or_discard(&mut self, task: TaskId, reason: DiscardReason) {
        if !self.fault.resubmit_enabled()
            || self.tasks.get(task).fault_retries >= self.fault.max_retries()
        {
            self.enact_discard(task, reason);
            return;
        }
        let attempt = {
            let t = self.tasks.get_mut(task);
            t.state = TaskState::Created;
            t.start_time = None;
            t.assigned_config = None;
            t.fault_retries += 1;
            t.fault_retries
        };
        self.stats.resubmissions += 1;
        for obs in &mut self.observers {
            obs.on_resubmit(self.clock, self.tasks.get(task), attempt);
        }
        let (mut ctx, policy) = self.ctx_and_policy();
        let decision = policy.schedule(&mut ctx, task);
        match decision {
            Decision::Placed(p) => self.enact_placement(p, false),
            Decision::Suspended => self.enact_suspension(task),
            Decision::Discarded(r) => self.enact_discard(task, r),
        }
    }

    /// Mark `task` suspended (the policy already queued it) and arm the
    /// suspension deadline if one is configured.
    fn enact_suspension(&mut self, task: TaskId) {
        {
            let t = self.tasks.get_mut(task);
            t.state = TaskState::Suspended;
            t.suspended_at = Some(self.clock);
        }
        for obs in &mut self.observers {
            obs.on_suspend(self.clock, self.tasks.get(task));
        }
        if let Some(deadline) = self.fault.suspension_deadline() {
            self.events.push(
                // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
                self.clock + deadline,
                Event::SuspensionTimeout {
                    task,
                    enqueued_at: self.clock,
                },
            );
        }
        if let Some(cap) = self.params.suspension_cap {
            if self.suspension.len() > cap {
                self.enforce_admission(task);
            }
        }
    }

    /// The bounded suspension queue overflowed — the newcomer's push
    /// took it past `suspension_cap`. Apply the configured admission
    /// policy to bring it back within bounds.
    fn enforce_admission(&mut self, newcomer: TaskId) {
        match self.params.admission {
            AdmissionPolicy::Block => self.shed(newcomer, DiscardReason::AdmissionBlocked),
            AdmissionPolicy::ShedOldest => {
                let oldest = self
                    .suspension
                    .remove_first_match(&mut self.steps, |_| true)
                    // INVARIANT: enforce_admission runs only when the
                    // queue length exceeds the cap, so it is non-empty.
                    .expect("overflowing suspension queue is non-empty");
                self.enact_discard(oldest, DiscardReason::AdmissionShed);
            }
            AdmissionPolicy::DegradeClosest => {
                if !self.try_degrade(newcomer) {
                    // No larger configuration has an idle instance right
                    // now; fall back to blocking the newcomer.
                    self.shed(newcomer, DiscardReason::AdmissionBlocked);
                }
            }
        }
    }

    /// Remove `task` from the suspension queue and discard it; its
    /// pending suspension-timeout event (if any) goes stale with the
    /// state change.
    fn shed(&mut self, task: TaskId, reason: DiscardReason) {
        let removed = self.suspension.remove_task(task, &mut self.steps);
        debug_assert!(removed, "shed task missing from the suspension queue");
        self.enact_discard(task, reason);
    }

    /// Last-resort placement for an overflowing newcomer under
    /// `degrade-to-closest-match`: walk strictly larger configurations
    /// in closest-match order and run the task, degraded, on the first
    /// idle instance found. Returns whether a placement happened.
    fn try_degrade(&mut self, task: TaskId) -> bool {
        let mut area = {
            let t = self.tasks.get(task);
            match t.resolved_config {
                Some(c) => self.resources.config(c).req_area,
                None => t.needed_area,
            }
        };
        while let Some(config) = self.resources.find_closest_config(area, &mut self.steps) {
            if let Some(entry) = self.resources.find_best_idle(config, &mut self.steps) {
                let removed = self.suspension.remove_task(task, &mut self.steps);
                debug_assert!(removed, "degrading task missing from the queue");
                self.resources
                    .assign_task(entry, task, &mut self.steps)
                    // INVARIANT: find_best_idle returned a live idle
                    // slot; nothing ran in between.
                    .expect("idle slot accepts the degraded task");
                self.tasks.get_mut(task).resolved_config = Some(config);
                self.stats.tasks_degraded += 1;
                self.enact_placement(
                    Placement {
                        task,
                        entry,
                        config,
                        config_time: 0,
                        phase: PhaseKind::Allocation,
                    },
                    true,
                );
                return true;
            }
            area = self.resources.config(config).req_area;
        }
        false
    }

    fn enact_resumes(&mut self, resumes: Vec<Resume>) {
        for r in resumes {
            match r {
                Resume::Placed(p) => self.enact_placement(p, true),
                Resume::Discarded { task, reason } => self.enact_discard(task, reason),
            }
        }
    }

    fn enact_placement(&mut self, p: Placement, resumed: bool) {
        // Fault injection: a bitstream load can fail before the task
        // starts. Checked before any task or statistics mutation so a
        // failed attempt rolls back to exactly the pre-placement state.
        // Direct allocations (config_time == 0) load no bitstream and
        // draw nothing.
        if p.config_time > 0 && self.fault.reconfig_attempt_fails() {
            self.abort_reconfig(&p);
            return;
        }
        let fails_midrun = self.fault.task_attempt_fails();
        let tcomm = self.resources.node(p.entry.node).network_delay;
        let wasted_after = self.resources.node(p.entry.node).available_area();
        let (wait, completion) = {
            let t = self.tasks.get_mut(p.task);
            t.start_time = Some(self.clock);
            t.assigned_config = Some(p.config);
            t.state = TaskState::Running;
            if resumed {
                t.sus_retry += 1;
            }
            let wait = (self.clock - t.create_time) + tcomm + p.config_time;
            // BOUND: waiting/completion times are sums of validated Table II ranges; far below 2^64.
            let completion = self.clock + p.config_time + tcomm + t.required_time;
            (wait, completion)
        };
        if fails_midrun {
            let run_for = self
                .fault
                .draw_fail_point(self.tasks.get(p.task).required_time);
            self.events.push(
                // BOUND: clock plus a bounded delay; simulated time stays far below 2^64.
                self.clock + p.config_time + tcomm + run_for,
                Event::TaskFailed {
                    task: p.task,
                    entry: p.entry,
                    started_at: self.clock,
                },
            );
        } else {
            self.events.push(
                completion,
                Event::TaskCompletion {
                    task: p.task,
                    entry: p.entry,
                    started_at: self.clock,
                },
            );
        }
        self.stats
            .record_placement(p.phase, wait, p.config_time, wasted_after, resumed);
        for obs in &mut self.observers {
            obs.on_placement(self.clock, self.tasks.get(p.task), &p);
        }
    }

    /// Roll back a placement whose bitstream load failed: release and
    /// evict the slot the policy just configured, charge the wasted
    /// configuration time, and retry after bounded exponential backoff —
    /// degrading to the closest-match configuration once the retry
    /// budget is exhausted, and discarding only when no larger
    /// configuration exists to degrade to.
    fn abort_reconfig(&mut self, p: &Placement) {
        let released = self
            .resources
            .release_task(p.entry, &mut self.steps)
            // INVARIANT: abort_reconfig runs synchronously inside the
            // placement that configured `p.entry`; no event can have
            // touched the slot in between.
            .expect("aborted placement holds a live busy slot");
        assert_eq!(released, p.task, "aborted placement / slot task mismatch");
        self.resources
            .evict_idle_slots(p.entry.node, &[p.entry.slot], &mut self.steps)
            // INVARIANT: release_task just returned Ok for this very
            // slot, leaving it idle.
            .expect("aborted slot is idle after release");
        self.stats.record_reconfig_failure(p.config_time);
        let attempt = {
            let t = self.tasks.get_mut(p.task);
            t.state = TaskState::Created;
            t.fault_retries += 1;
            t.fault_retries
        };
        for obs in &mut self.observers {
            obs.on_reconfig_failed(self.clock, self.tasks.get(p.task), attempt);
        }
        if attempt <= self.fault.max_retries() {
            self.stats.reconfig_retries += 1;
            self.events.push(
                // BOUND: backoff is capped by max_retries doublings of a validated base delay.
                self.clock + self.fault.backoff(attempt),
                Event::ReconfigFailed { task: p.task },
            );
            return;
        }
        // Budget exhausted: treat the failing configuration's bitstream
        // as unusable and substitute the closest match strictly larger
        // than it (the paper's degradation path), with a fresh retry
        // budget. Each degradation strictly grows the area, so even a
        // 100 % failure probability terminates at the largest
        // configuration.
        let failed_area = self.resources.config(p.config).req_area;
        match self
            .resources
            .find_closest_config(failed_area, &mut self.steps)
        {
            Some(next) => {
                let t = self.tasks.get_mut(p.task);
                t.resolved_config = Some(next);
                t.fault_retries = 0;
                self.stats.reconfig_retries += 1;
                self.events.push(
                    // BOUND: backoff is capped by max_retries doublings of a validated base delay.
                    self.clock + self.fault.backoff(attempt),
                    Event::ReconfigFailed { task: p.task },
                );
            }
            None => self.enact_discard(p.task, DiscardReason::ReconfigFailed),
        }
    }

    fn enact_discard(&mut self, task: TaskId, reason: DiscardReason) {
        self.tasks.get_mut(task).state = TaskState::Discarded;
        self.stats.record_discard();
        if reason.is_fault() {
            self.stats.tasks_lost += 1;
        }
        if reason.is_shed() {
            self.stats.tasks_shed += 1;
        }
        for obs in &mut self.observers {
            obs.on_discard(self.clock, self.tasks.get(task), reason);
        }
    }

    /// Drain leftovers, finalize metrics, and assemble the result;
    /// with a scratch arena, hand the event heap and wait-sample
    /// buffer back (cleared, capacity kept) for the next run.
    fn finish(mut self, scratch: Option<&mut SimScratch>) -> RunResult {
        // Tasks still suspended can never run: no completions remain to
        // free capacity. Count them as discarded.
        let mut leftovers = Vec::new();
        while let Some(t) = self
            .suspension
            .remove_first_match(&mut self.steps, |_| true)
        {
            leftovers.push(t);
        }
        for t in leftovers {
            self.enact_discard(t, DiscardReason::SuspensionDrain);
        }
        debug_assert!(self.resources.check_invariants().is_ok());
        let configured: Vec<dreamsim_model::NodeRef<'_>> = self
            .resources
            .nodes()
            .iter()
            .filter(|n| !n.is_blank())
            .collect();
        let mean_fragmentation_end = if configured.is_empty() {
            0.0
        } else {
            configured.iter().map(|n| n.fragmentation()).sum::<f64>() / configured.len() as f64
        };
        let mut metrics = self.stats.finalize(
            &self.params,
            self.steps,
            self.clock,
            self.resources.wasted_area_snapshot(),
            self.resources.total_reconfigurations(),
            self.resources.used_nodes(),
            self.suspension.total_suspensions(),
            self.suspension.peak_len(),
            mean_fragmentation_end,
            self.fault.total_downtime(self.clock),
        );
        // Chaos-layer availability metrics live in the fault model (so
        // checkpoints carry open outages); fill them in post-finalize.
        metrics.domain_outages = self.fault.domain_outages();
        metrics.domain_restores = self.fault.domain_restores();
        metrics.domain_downtime = self.fault.domain_downtime(self.clock);
        metrics.mean_time_to_recover = self.fault.mean_time_to_recover();
        let report = Report::new(self.params.clone(), metrics.clone());
        // Capture the profile before the scratch steal below clears the
        // event queue (which would skew the popped-events counter).
        let profile = self.phase_profile();
        if let Some(scratch) = scratch {
            self.events.clear();
            scratch.events = self.events;
            let mut samples = std::mem::take(&mut self.stats.wait_samples);
            samples.clear();
            scratch.wait_samples = samples;
        }
        RunResult {
            metrics,
            report,
            tasks: self.tasks.into_vec(),
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ReconfigMode;

    /// Minimal deterministic source: every task wants config 0 and runs
    /// 100 ticks, arriving every 10 ticks.
    struct FixedSource;

    impl TaskSource for FixedSource {
        fn next_task(&mut self, _now: Ticks, _rng: &mut Rng) -> SourceYield {
            SourceYield::Task(TaskSpec {
                interarrival: 10,
                required_time: 100,
                preferred: PreferredConfig::Known(ConfigId(0)),
                needed_area: 0,
                data_bytes: 0,
            })
        }
    }

    /// Trivial policy: place on any idle instance of the preferred
    /// config, else configure the best blank node, else discard. No
    /// suspension. Exists only to exercise the driver; the real policies
    /// live in `dreamsim-sched`.
    struct GreedyPolicy;

    impl SchedulePolicy for GreedyPolicy {
        fn name(&self) -> &'static str {
            "test-greedy"
        }

        fn schedule(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Decision {
            // Honor a previously resolved configuration (set e.g. by the
            // reconfiguration-failure degradation path), like the real
            // schedulers do.
            let t = ctx.tasks.get(task);
            let config = match (t.resolved_config, t.preferred) {
                (Some(c), _) | (None, PreferredConfig::Known(c)) => c,
                (None, PreferredConfig::Phantom { .. }) => {
                    return Decision::Discarded(DiscardReason::NoClosestConfig)
                }
            };
            if let Some(entry) = ctx.resources.find_best_idle(config, ctx.steps) {
                ctx.resources.assign_task(entry, task, ctx.steps).unwrap();
                return Decision::Placed(Placement {
                    task,
                    entry,
                    config,
                    config_time: 0,
                    phase: PhaseKind::Allocation,
                });
            }
            let demand = dreamsim_model::store::Demand::of(ctx.resources.config(config));
            if let Some(node) = ctx.resources.find_best_blank(demand, ctx.steps) {
                let ct = ctx.resources.config(config).config_time;
                let entry = ctx
                    .resources
                    .configure_slot(node, config, ctx.steps)
                    .unwrap();
                ctx.resources.assign_task(entry, task, ctx.steps).unwrap();
                return Decision::Placed(Placement {
                    task,
                    entry,
                    config,
                    config_time: ct,
                    phase: PhaseKind::Configuration,
                });
            }
            Decision::Discarded(DiscardReason::NoFeasibleNode)
        }

        fn on_slot_freed(&mut self, _ctx: &mut SchedCtx<'_>, _freed: EntryRef) -> Vec<Resume> {
            Vec::new()
        }
    }

    fn small_params() -> SimParams {
        let mut p = SimParams::paper(10, 20, ReconfigMode::Partial);
        p.seed = 77;
        p
    }

    #[test]
    fn run_completes_all_placeable_tasks() {
        let sim = Simulation::new(small_params(), FixedSource, GreedyPolicy).unwrap();
        let res = sim.run();
        assert_eq!(res.metrics.total_tasks_generated, 20);
        assert_eq!(
            res.metrics.total_tasks_completed + res.metrics.total_discarded_tasks,
            20
        );
        assert!(res.metrics.total_tasks_completed > 0);
        assert!(res.metrics.total_simulation_time > 0);
        for t in &res.tasks {
            assert!(t.is_terminal(), "{:?} not terminal", t.id);
        }
    }

    #[test]
    fn event_driven_and_tick_stepped_agree() {
        let a = Simulation::new(small_params(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let b = Simulation::new(small_params(), FixedSource, GreedyPolicy)
            .unwrap()
            .run_tick_stepped();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.tasks, b.tasks);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = Simulation::new(small_params(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let b = Simulation::new(small_params(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn waiting_time_includes_comm_and_config() {
        // One node, one task: the first task configures a blank node, so
        // its wait must be exactly tcomm + tconfig.
        let mut p = small_params();
        p.total_tasks = 1;
        p.total_nodes = 1;
        let res = Simulation::new(p, FixedSource, GreedyPolicy).unwrap().run();
        let m = &res.metrics;
        assert_eq!(m.total_tasks_completed, 1);
        let wait = m.avg_waiting_time_per_task;
        // tcomm ∈ [1..10], tconfig ∈ [10..20] → wait ∈ [11..30].
        assert!((11.0..=30.0).contains(&wait), "wait={wait}");
        assert!(m.avg_config_time_per_task >= 10.0);
        // Residence = wait + required_time.
        assert!((m.avg_running_time_per_task - (wait + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn invalid_params_rejected_at_construction() {
        let mut p = small_params();
        p.total_nodes = 0;
        assert!(Simulation::new(p, FixedSource, GreedyPolicy).is_err());
    }

    #[test]
    fn task_table_enforces_dense_ids() {
        let mut t = TaskTable::new();
        t.push(Task::new(
            TaskId(0),
            0,
            1,
            PreferredConfig::Known(ConfigId(0)),
            1,
        ));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn task_table_rejects_sparse_ids() {
        let mut t = TaskTable::new();
        t.push(Task::new(
            TaskId(5),
            0,
            1,
            PreferredConfig::Known(ConfigId(0)),
            1,
        ));
    }

    #[test]
    fn failure_injection_kills_and_repairs() {
        let mut p = small_params();
        p.node_mtbf = Some(50); // very frequent failures
        p.node_mttr = 20;
        p.total_tasks = 50;
        let res = Simulation::new(p, FixedSource, GreedyPolicy).unwrap().run();
        assert!(res.metrics.node_failures > 0, "failures should fire");
        assert_eq!(
            res.metrics.total_tasks_completed + res.metrics.total_discarded_tasks,
            50
        );
    }

    /// Policy that parks every task in the suspension queue and never
    /// resumes it; only suspension deadlines can terminate such a run.
    struct AlwaysSuspendPolicy;

    impl SchedulePolicy for AlwaysSuspendPolicy {
        fn name(&self) -> &'static str {
            "test-always-suspend"
        }

        fn schedule(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Decision {
            ctx.suspension.push(task, ctx.steps);
            Decision::Suspended
        }

        fn on_slot_freed(&mut self, _ctx: &mut SchedCtx<'_>, _freed: EntryRef) -> Vec<Resume> {
            Vec::new()
        }
    }

    #[test]
    fn mttf_failures_kill_repair_and_track_downtime() {
        let mut p = small_params();
        p.total_tasks = 50;
        p.faults.node_mttf = Some(300);
        p.faults.node_mttr = 100;
        let res = Simulation::new(p, FixedSource, GreedyPolicy).unwrap().run();
        let m = &res.metrics;
        assert!(
            m.node_failures > 0,
            "per-node failure processes should fire"
        );
        assert!(m.node_downtime > 0, "downtime must accrue across repairs");
        assert_eq!(m.total_tasks_completed + m.total_discarded_tasks, 50);
        for t in &res.tasks {
            assert!(t.is_terminal(), "{:?} not terminal", t.id);
        }
    }

    #[test]
    fn killed_nodes_never_linger_in_scheduler_lists() {
        let mut p = small_params();
        p.total_tasks = 40;
        p.faults.node_mttf = Some(150);
        p.faults.node_mttr = 400;
        p.faults.task_fail_prob = 0.1;
        let mut sim = Simulation::new(p, FixedSource, GreedyPolicy).unwrap();
        sim.prime();
        let mut saw_failure = false;
        while let Some((t, ev)) = sim.events.pop() {
            sim.charge_idle_polls(t - sim.clock);
            sim.clock = t;
            sim.dispatch(ev);
            sim.resources.check_invariants().unwrap();
            for n in sim.resources.nodes() {
                if n.down {
                    saw_failure = true;
                    // A failed node was stripped of every slot, so the
                    // list invariant above guarantees no idle/busy list
                    // can still reference it.
                    assert_eq!(n.configured_count(), 0, "{} still holds slots", n.id);
                }
            }
        }
        assert!(saw_failure, "test should exercise at least one failure");
    }

    #[test]
    fn reconfig_failures_retry_and_still_finish_every_task() {
        let mut p = small_params();
        p.total_tasks = 40;
        p.faults.reconfig_fail_prob = 0.5;
        let res = Simulation::new(p, FixedSource, GreedyPolicy).unwrap().run();
        let m = &res.metrics;
        assert!(m.reconfig_failures > 0, "bitstream loads should fail");
        assert!(m.reconfig_retries > 0, "failures should be retried");
        assert_eq!(m.total_tasks_completed + m.total_discarded_tasks, 40);
        assert!(m.total_tasks_completed > 0);
    }

    #[test]
    fn certain_reconfig_failure_still_terminates() {
        // At probability 1.0 every attempt fails; after the retry budget
        // the task degrades to strictly larger configurations until none
        // is left, so the run must terminate with every task discarded.
        let mut p = small_params();
        p.total_tasks = 10;
        p.faults.reconfig_fail_prob = 1.0;
        p.faults.retry_backoff_base = 1;
        p.faults.retry_backoff_cap = 4;
        let res = Simulation::new(p, FixedSource, GreedyPolicy).unwrap().run();
        let m = &res.metrics;
        assert_eq!(m.total_tasks_completed, 0);
        assert_eq!(m.total_discarded_tasks, 10);
        assert_eq!(m.tasks_lost, 10);
    }

    #[test]
    fn task_failures_resubmit_and_count() {
        let mut p = small_params();
        p.total_tasks = 40;
        p.faults.task_fail_prob = 0.3;
        let res = Simulation::new(p, FixedSource, GreedyPolicy).unwrap().run();
        let m = &res.metrics;
        assert!(m.task_failures > 0, "executions should fail mid-run");
        assert!(m.resubmissions > 0, "failed tasks should be resubmitted");
        assert_eq!(m.total_tasks_completed + m.total_discarded_tasks, 40);
        assert!(
            m.total_tasks_completed > 0,
            "resubmitted tasks should finish"
        );
    }

    #[test]
    fn no_resubmit_discards_on_first_fault() {
        let mut p = small_params();
        p.total_tasks = 10;
        p.faults.task_fail_prob = 1.0;
        p.faults.resubmit = false;
        let res = Simulation::new(p, FixedSource, GreedyPolicy).unwrap().run();
        let m = &res.metrics;
        assert_eq!(m.total_tasks_completed, 0);
        assert_eq!(m.total_discarded_tasks, 10);
        assert_eq!(m.task_failures, 10);
        assert_eq!(m.resubmissions, 0);
        assert_eq!(m.tasks_lost, 10);
    }

    #[test]
    fn suspension_deadline_discards_parked_tasks() {
        let mut p = small_params();
        p.total_tasks = 10;
        p.faults.suspension_deadline = Some(25);
        let res = Simulation::new(p, FixedSource, AlwaysSuspendPolicy)
            .unwrap()
            .run();
        let m = &res.metrics;
        assert_eq!(m.total_suspensions, 10);
        assert_eq!(m.total_discarded_tasks, 10);
        assert_eq!(m.tasks_lost, 10);
        for t in &res.tasks {
            assert_eq!(t.state, TaskState::Discarded);
        }
    }

    #[test]
    fn fault_runs_agree_across_drivers() {
        let mut p = small_params();
        p.total_tasks = 30;
        p.faults.node_mttf = Some(500);
        p.faults.node_mttr = 100;
        p.faults.reconfig_fail_prob = 0.2;
        p.faults.task_fail_prob = 0.1;
        let a = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let b = Simulation::new(p, FixedSource, GreedyPolicy)
            .unwrap()
            .run_tick_stepped();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.tasks, b.tasks);
    }

    // ------------------------------------------------------------------
    // Chaos layer: failure domains and admission policies.
    // ------------------------------------------------------------------

    use crate::params::{DomainParams, ScriptedOutage};

    fn scripted_domain_params(kind: DomainOutageKind) -> SimParams {
        let mut p = small_params();
        p.total_tasks = 30;
        p.domains = Some(DomainParams {
            count: 2,
            mttf: None,
            mttr: 50,
            kind,
            scripted: vec![ScriptedOutage {
                domain: 0,
                at: 60,
                duration: 100,
            }],
        });
        p
    }

    #[test]
    fn scripted_outage_fails_members_and_restores_them() {
        let res = Simulation::new(
            scripted_domain_params(DomainOutageKind::Fail),
            FixedSource,
            GreedyPolicy,
        )
        .unwrap()
        .run();
        let m = &res.metrics;
        assert_eq!(m.domain_outages, 1);
        assert_eq!(m.domain_restores, 1);
        assert_eq!(m.domain_downtime, vec![100, 0]);
        assert_eq!(m.mean_time_to_recover, 100.0);
        assert!(m.node_downtime > 0, "member downtime must accrue");
        assert_eq!(m.total_tasks_completed + m.total_discarded_tasks, 30);
        for t in &res.tasks {
            assert!(t.is_terminal(), "{:?} not terminal", t.id);
        }
        assert!(res.report.to_xml().contains("<chaos>"));
    }

    #[test]
    fn partition_outage_resuspends_instead_of_killing() {
        let fail = Simulation::new(
            scripted_domain_params(DomainOutageKind::Fail),
            FixedSource,
            GreedyPolicy,
        )
        .unwrap()
        .run();
        let part = Simulation::new(
            scripted_domain_params(DomainOutageKind::Partition),
            FixedSource,
            GreedyPolicy,
        )
        .unwrap()
        .run();
        assert!(
            fail.metrics.failure_killed > 0,
            "fail-kind outage should kill running tasks"
        );
        assert_eq!(part.metrics.failure_killed, 0);
        assert!(
            part.metrics.total_suspensions > 0,
            "partitioned tasks wait in the suspension queue"
        );
        assert_eq!(
            part.metrics.total_tasks_completed + part.metrics.total_discarded_tasks,
            30
        );
    }

    #[test]
    fn stochastic_domain_outages_fire_and_terminate() {
        let mut p = small_params();
        p.total_tasks = 40;
        p.domains = Some(DomainParams {
            count: 2,
            mttf: Some(150),
            mttr: 40,
            kind: DomainOutageKind::Fail,
            scripted: Vec::new(),
        });
        let res = Simulation::new(p, FixedSource, GreedyPolicy).unwrap().run();
        let m = &res.metrics;
        assert!(m.domain_outages > 0, "stochastic outages should fire");
        assert!(m.domain_restores > 0);
        assert!(m.mean_time_to_recover > 0.0);
        assert_eq!(m.total_tasks_completed + m.total_discarded_tasks, 40);
        for t in &res.tasks {
            assert!(t.is_terminal(), "{:?} not terminal", t.id);
        }
    }

    #[test]
    fn domain_outages_coexist_with_per_node_failure_processes() {
        let mut p = small_params();
        p.total_tasks = 40;
        p.faults.node_mttf = Some(250);
        p.faults.node_mttr = 60;
        p.domains = Some(DomainParams {
            count: 2,
            mttf: Some(300),
            mttr: 50,
            kind: DomainOutageKind::Fail,
            scripted: Vec::new(),
        });
        let a = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        assert!(a.metrics.node_failures > 0, "per-node process still runs");
        assert!(a.metrics.domain_outages > 0, "domain process still runs");
        assert_eq!(
            a.metrics.total_tasks_completed + a.metrics.total_discarded_tasks,
            40
        );
        // Both drivers agree under combined chaos.
        let b = Simulation::new(p, FixedSource, GreedyPolicy)
            .unwrap()
            .run_tick_stepped();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.tasks, b.tasks);
    }

    #[test]
    fn chaos_block_absent_without_domains() {
        let res = Simulation::new(small_params(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let m = &res.metrics;
        assert_eq!(m.domain_outages, 0);
        assert!(m.domain_downtime.is_empty());
        assert_eq!(m.tasks_shed, 0);
        assert_eq!(m.tasks_degraded, 0);
        assert!(!res.report.to_xml().contains("<chaos>"));
    }

    /// Observer that logs every discard with its reason, shared through
    /// an `Rc` so the test can read it back after the run consumes the
    /// simulation.
    struct DiscardLog(std::rc::Rc<std::cell::RefCell<Vec<(TaskId, DiscardReason)>>>);

    impl crate::monitor::Observer for DiscardLog {
        fn on_discard(&mut self, _now: Ticks, task: &Task, reason: DiscardReason) {
            self.0.borrow_mut().push((task.id, reason));
        }
    }

    fn run_admission(policy: AdmissionPolicy) -> (RunResult, Vec<(TaskId, DiscardReason)>) {
        let mut p = small_params();
        p.total_tasks = 10;
        p.suspension_cap = Some(3);
        p.admission = policy;
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let res = Simulation::new(p, FixedSource, AlwaysSuspendPolicy)
            .unwrap()
            .with_observer(Box::new(DiscardLog(log.clone())))
            .run();
        let entries = log.borrow().clone();
        (res, entries)
    }

    #[test]
    fn block_admission_rejects_newcomers_over_the_cap() {
        let (res, log) = run_admission(AdmissionPolicy::Block);
        let m = &res.metrics;
        assert_eq!(m.tasks_shed, 7);
        assert_eq!(m.total_discarded_tasks, 10);
        assert_eq!(m.tasks_lost, 0, "admission sheds are not fault losses");
        // The queue keeps the three oldest tasks; every later arrival is
        // blocked on entry.
        let blocked: Vec<TaskId> = log
            .iter()
            .filter(|(_, r)| *r == DiscardReason::AdmissionBlocked)
            .map(|&(t, _)| t)
            .collect();
        let drained: Vec<TaskId> = log
            .iter()
            .filter(|(_, r)| *r == DiscardReason::SuspensionDrain)
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(blocked, (3..10).map(TaskId::from_index).collect::<Vec<_>>());
        assert_eq!(drained, (0..3).map(TaskId::from_index).collect::<Vec<_>>());
    }

    #[test]
    fn shed_oldest_admission_evicts_the_queue_head() {
        let (res, log) = run_admission(AdmissionPolicy::ShedOldest);
        let m = &res.metrics;
        assert_eq!(m.tasks_shed, 7);
        assert_eq!(m.total_discarded_tasks, 10);
        // The queue keeps the three *newest* tasks: the oldest is evicted
        // on every overflowing arrival.
        let shed: Vec<TaskId> = log
            .iter()
            .filter(|(_, r)| *r == DiscardReason::AdmissionShed)
            .map(|&(t, _)| t)
            .collect();
        let drained: Vec<TaskId> = log
            .iter()
            .filter(|(_, r)| *r == DiscardReason::SuspensionDrain)
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(shed, (0..7).map(TaskId::from_index).collect::<Vec<_>>());
        assert_eq!(drained, (7..10).map(TaskId::from_index).collect::<Vec<_>>());
    }

    #[test]
    fn degrade_admission_places_overflow_on_a_larger_config() {
        let mut p = small_params();
        p.total_tasks = 2;
        p.suspension_cap = Some(1);
        p.admission = AdmissionPolicy::DegradeClosest;
        let mut sim = Simulation::new(p, FixedSource, AlwaysSuspendPolicy).unwrap();
        // Pre-configure an idle instance of the closest configuration
        // strictly larger than config 0 (the one every task prefers), so
        // the overflow has somewhere to degrade to.
        let area0 = sim.resources.config(ConfigId(0)).req_area;
        let big = sim
            .resources
            .find_closest_config(area0, &mut sim.steps)
            .expect("a strictly larger configuration exists");
        let demand = dreamsim_model::store::Demand::of(sim.resources.config(big));
        let node = sim
            .resources
            .find_best_blank(demand, &mut sim.steps)
            .expect("a blank node can host it");
        sim.resources
            .configure_slot(node, big, &mut sim.steps)
            .unwrap();
        let res = sim.run();
        let m = &res.metrics;
        assert_eq!(m.tasks_degraded, 1);
        assert_eq!(m.tasks_shed, 0);
        assert_eq!(m.total_tasks_completed, 1);
        // The first task stays parked and drains at the end.
        assert_eq!(m.total_discarded_tasks, 1);
        let degraded = &res.tasks[1];
        assert_eq!(degraded.state, TaskState::Completed);
        assert_eq!(degraded.assigned_config, Some(big));
    }

    #[test]
    fn degrade_admission_falls_back_to_block_without_capacity() {
        // No idle instances exist anywhere (the policy never places), so
        // every degrade attempt fails and the newcomer is blocked.
        let (res, log) = run_admission(AdmissionPolicy::DegradeClosest);
        assert_eq!(res.metrics.tasks_degraded, 0);
        assert_eq!(res.metrics.tasks_shed, 7);
        assert!(log.iter().all(|&(_, r)| r != DiscardReason::AdmissionShed));
    }

    #[test]
    fn observer_sees_consistent_event_counts() {
        use crate::monitor::RecordingMonitor;
        let sim = Simulation::new(small_params(), FixedSource, GreedyPolicy).unwrap();
        // Box a monitor we can't read back directly; instead check via a
        // second run that counts match metrics.
        let res = sim.with_observer(Box::new(RecordingMonitor::new(0))).run();
        assert_eq!(res.metrics.total_tasks_generated, 20);
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore and the invariant auditor.
    // ------------------------------------------------------------------

    use crate::audit::AuditError;
    use crate::checkpoint::{read_checkpoint, write_checkpoint, CheckpointError};

    /// Parameters with every fault mechanism active, so checkpoints must
    /// carry retry counters, staleness stamps, per-node down-since
    /// state, and both RNG streams to stay bit-identical.
    fn fault_params() -> SimParams {
        let mut p = small_params();
        p.total_tasks = 40;
        p.faults.node_mttf = Some(400);
        p.faults.node_mttr = 100;
        p.faults.reconfig_fail_prob = 0.2;
        p.faults.task_fail_prob = 0.1;
        p
    }

    /// Fresh per-test temp dir (removed and recreated on entry).
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dreamsim-cp-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Drive `sim` event-by-event until `probe` yields a value, leaving
    /// the simulation mid-run. Panics if the run drains first.
    fn drive_find<T>(
        sim: &mut Simulation<FixedSource, GreedyPolicy>,
        mut probe: impl FnMut(&Simulation<FixedSource, GreedyPolicy>) -> Option<T>,
    ) -> T {
        if !sim.primed {
            sim.prime();
            sim.primed = true;
        }
        while let Some((t, ev)) = sim.events.pop() {
            sim.charge_idle_polls(t - sim.clock);
            sim.clock = t;
            sim.dispatch(ev);
            if let Some(x) = probe(sim) {
                return x;
            }
        }
        panic!("run drained without reaching the probed state");
    }

    /// First slot currently idle (configured, no task), after driving to
    /// such a state.
    fn drive_to_idle_slot(sim: &mut Simulation<FixedSource, GreedyPolicy>) -> (NodeId, u32) {
        drive_find(sim, |s| {
            s.resources.nodes().iter().find_map(|n| {
                n.slots()
                    .find(|(_, slot)| slot.task.is_none())
                    .map(|(i, _)| (n.id, i))
            })
        })
    }

    /// Drive `sim` event-by-event until its clock reaches `stop`,
    /// leaving it mid-run with events still pending.
    fn drive_until(sim: &mut Simulation<FixedSource, GreedyPolicy>, stop: Ticks) {
        if !sim.primed {
            sim.prime();
            sim.primed = true;
        }
        while let Some((t, ev)) = sim.events.pop() {
            sim.charge_idle_polls(t - sim.clock);
            sim.clock = t;
            sim.dispatch(ev);
            if sim.clock >= stop {
                break;
            }
        }
    }

    #[test]
    fn scratch_reuse_is_byte_identical() {
        // A run whose buffers came from a dirty arena (capacity and
        // leftovers from a different workload) must match a fresh run
        // bit for bit.
        let p = fault_params();
        let base = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let mut scratch = SimScratch::new();
        let mut warm_params = fault_params();
        warm_params.seed = 999;
        warm_params.total_tasks = 60;
        let warm =
            Simulation::new_with_scratch(warm_params, FixedSource, GreedyPolicy, &mut scratch)
                .unwrap()
                .run_with_scratch(&RunOptions::default(), &mut scratch)
                .unwrap();
        scratch.reclaim_tasks(warm.tasks);
        let reused = Simulation::new_with_scratch(p, FixedSource, GreedyPolicy, &mut scratch)
            .unwrap()
            .run_with_scratch(&RunOptions::default(), &mut scratch)
            .unwrap();
        assert_eq!(base.metrics, reused.metrics);
        assert_eq!(base.tasks, reused.tasks);
        assert_eq!(base.report.to_xml(), reused.report.to_xml());
    }

    #[test]
    fn presized_event_heap_checkpoints_identically() {
        // Heap capacity (pre-sizing in new, restoration in resume) must
        // be invisible in checkpoint bytes: a fresh sim and a
        // scratch-built sim driven to the same clock serialize the same.
        let p = fault_params();
        let mut fresh = Simulation::new(p.clone(), FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut fresh, 200);
        let mut scratch = SimScratch::new();
        let mut warm_params = fault_params();
        warm_params.seed = 999;
        let warm =
            Simulation::new_with_scratch(warm_params, FixedSource, GreedyPolicy, &mut scratch)
                .unwrap()
                .run_with_scratch(&RunOptions::default(), &mut scratch)
                .unwrap();
        scratch.reclaim_tasks(warm.tasks);
        let mut reused =
            Simulation::new_with_scratch(p, FixedSource, GreedyPolicy, &mut scratch).unwrap();
        drive_until(&mut reused, 200);
        let dir = temp_dir("scratch-cp");
        let (pa, pb) = (dir.join("fresh.dsc"), dir.join("scratch.dsc"));
        write_checkpoint(&pa, &fresh.checkpoint()).unwrap();
        write_checkpoint(&pb, &reused.checkpoint()).unwrap();
        assert_eq!(
            std::fs::read(&pa).unwrap(),
            std::fs::read(&pb).unwrap(),
            "scratch reuse leaked into checkpoint bytes"
        );
        // And a resume from that checkpoint still reconverges.
        let cp = read_checkpoint(&pb).unwrap();
        let resumed = Simulation::resume(cp, FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let base = Simulation::new(fault_params(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        assert_eq!(base.metrics, resumed.metrics);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_event_driven() {
        let p = fault_params();
        let base = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let stop = base.metrics.total_simulation_time / 2;
        let mut sim = Simulation::new(p, FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, stop);
        assert!(!sim.events.is_empty(), "checkpoint must be taken mid-run");
        let dir = temp_dir("bitident-ev");
        let path = dir.join("mid.dsc");
        write_checkpoint(&path, &sim.checkpoint()).unwrap();
        let cp = read_checkpoint(&path).unwrap();
        let resumed = Simulation::resume(cp, FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        assert_eq!(base.metrics, resumed.metrics);
        assert_eq!(base.tasks, resumed.tasks);
        assert_eq!(base.report.to_xml(), resumed.report.to_xml());
    }

    #[test]
    fn legacy_v1_checkpoint_resumes_byte_identically() {
        // A version-1 file (legacy JSON task array) and the version-2
        // compact file of the same snapshot must restore the same state
        // and replay to byte-identical reports.
        let p = fault_params();
        let base = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let stop = base.metrics.total_simulation_time / 2;
        let mut sim = Simulation::new(p, FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, stop);
        assert!(!sim.tasks.is_empty(), "snapshot must carry tasks");
        let dir = temp_dir("v1-compat");
        let v2 = dir.join("mid.dsc");
        let v1 = dir.join("mid-v1.dsc");
        let snapshot = sim.checkpoint();
        write_checkpoint(&v2, &snapshot).unwrap();
        crate::checkpoint::write_checkpoint_compat_v1(&v1, &snapshot).unwrap();

        let v2_raw = std::fs::read(&v2).unwrap();
        let v1_raw = std::fs::read(&v1).unwrap();
        assert!(
            v1_raw.starts_with(b"DREAMSIM-CHECKPOINT 1 "),
            "compat file must carry the version-1 header"
        );
        assert!(
            v2_raw.starts_with(b"DREAMSIM-CHECKPOINT 2 "),
            "current files must carry the version-2 header"
        );
        assert!(
            v1_raw.len() > v2_raw.len(),
            "the compact form should be smaller than the legacy array \
             (v1 = {}, v2 = {})",
            v1_raw.len(),
            v2_raw.len()
        );

        let from_v2 = Simulation::resume(read_checkpoint(&v2).unwrap(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let from_v1 = Simulation::resume(read_checkpoint(&v1).unwrap(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        assert_eq!(base.metrics, from_v1.metrics);
        assert_eq!(from_v2.metrics, from_v1.metrics);
        assert_eq!(from_v2.tasks, from_v1.tasks);
        assert_eq!(from_v2.report.to_xml(), from_v1.report.to_xml());
        assert_eq!(base.report.to_xml(), from_v1.report.to_xml());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_tick_stepped() {
        let p = fault_params();
        let base = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run_tick_stepped();
        let stop = base.metrics.total_simulation_time / 2;
        let mut sim = Simulation::new(p, FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, stop);
        assert!(!sim.events.is_empty(), "checkpoint must be taken mid-run");
        let dir = temp_dir("bitident-ts");
        let path = dir.join("mid.dsc");
        write_checkpoint(&path, &sim.checkpoint()).unwrap();
        let cp = read_checkpoint(&path).unwrap();
        let resumed = Simulation::resume(cp, FixedSource, GreedyPolicy)
            .unwrap()
            .run_tick_stepped();
        assert_eq!(base.metrics, resumed.metrics);
        assert_eq!(base.tasks, resumed.tasks);
        assert_eq!(base.report.to_xml(), resumed.report.to_xml());
    }

    #[test]
    fn chaos_checkpoint_resume_is_bit_identical() {
        // Full chaos stack live across the checkpoint: a scripted
        // partition outage that is still open at the checkpoint time, a
        // stochastic domain chain, a bounded suspension queue with
        // shed-oldest admission, plus the per-node fault processes.
        let mut p = fault_params();
        p.suspension_cap = Some(2);
        p.admission = AdmissionPolicy::ShedOldest;
        // GreedyPolicy never resumes partitioned tasks, so without a
        // deadline they would park forever and the stochastic domain
        // chain (gated on work remaining) would re-arm indefinitely.
        p.faults.suspension_deadline = Some(300);
        p.domains = Some(DomainParams {
            count: 2,
            mttf: Some(500),
            mttr: 80,
            kind: DomainOutageKind::Partition,
            scripted: vec![ScriptedOutage {
                domain: 1,
                at: 100,
                duration: 400,
            }],
        });
        let base = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        assert!(base.metrics.domain_outages > 0);
        let mut sim = Simulation::new(p, FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, 200);
        assert!(
            sim.fault.domain_is_down(1),
            "checkpoint must capture an open outage"
        );
        assert!(!sim.events.is_empty(), "checkpoint must be taken mid-run");
        let dir = temp_dir("bitident-chaos");
        let path = dir.join("mid.dsc");
        write_checkpoint(&path, &sim.checkpoint()).unwrap();
        let cp = read_checkpoint(&path).unwrap();
        let resumed = Simulation::resume(cp, FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        assert_eq!(base.metrics, resumed.metrics);
        assert_eq!(base.tasks, resumed.tasks);
        assert_eq!(base.report.to_xml(), resumed.report.to_xml());
    }

    #[test]
    fn periodic_checkpoints_identical_across_drivers() {
        let p = fault_params();
        let d_ev = temp_dir("periodic-ev");
        let d_ts = temp_dir("periodic-ts");
        let opts = |dir: &std::path::Path| RunOptions {
            checkpoint_every: Some(200),
            checkpoint_dir: Some(dir.to_path_buf()),
            audit: true,
            audit_every: None,
        };
        let a = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run_with(&opts(&d_ev))
            .unwrap();
        let b = Simulation::new(p, FixedSource, GreedyPolicy)
            .unwrap()
            .run_tick_stepped_with(&opts(&d_ts))
            .unwrap();
        assert_eq!(a.metrics, b.metrics);
        let names = |d: &std::path::Path| {
            let mut v: Vec<String> = std::fs::read_dir(d)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            v.sort();
            v
        };
        let (na, nb) = (names(&d_ev), names(&d_ts));
        assert!(!na.is_empty(), "run should have produced checkpoints");
        assert_eq!(na, nb, "both drivers checkpoint at the same clocks");
        for n in &na {
            assert!(!n.ends_with(".tmp"), "temp file {n} leaked");
            assert_eq!(
                std::fs::read(d_ev.join(n)).unwrap(),
                std::fs::read(d_ts.join(n)).unwrap(),
                "checkpoint {n} differs across drivers"
            );
        }
    }

    #[test]
    fn resume_from_periodic_checkpoint_matches_uninterrupted_run() {
        let p = fault_params();
        let base = Simulation::new(p.clone(), FixedSource, GreedyPolicy)
            .unwrap()
            .run();
        let dir = temp_dir("resume-periodic");
        let _ = Simulation::new(p, FixedSource, GreedyPolicy)
            .unwrap()
            .run_with(&RunOptions {
                checkpoint_every: Some(300),
                checkpoint_dir: Some(dir.clone()),
                audit: false,
                audit_every: Some(100),
            })
            .unwrap();
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        // Resume from every checkpoint the run dropped; each must land on
        // the identical final report.
        assert!(!names.is_empty());
        for n in &names {
            let cp = read_checkpoint(&dir.join(n)).unwrap();
            let resumed = Simulation::resume(cp, FixedSource, GreedyPolicy)
                .unwrap()
                .run();
            assert_eq!(base.metrics, resumed.metrics, "divergence from {n}");
            assert_eq!(base.report.to_xml(), resumed.report.to_xml());
        }
    }

    #[test]
    fn resume_rejects_mismatched_policy_and_source() {
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, 100);
        let cp = sim.checkpoint();
        match Simulation::resume(cp.clone(), FixedSource, AlwaysSuspendPolicy).err() {
            Some(CheckpointError::State(msg)) => {
                assert!(msg.contains("policy mismatch"), "got: {msg}");
            }
            other => panic!("expected policy mismatch, got {other:?}"),
        }
        // Same policy resumes fine.
        assert!(Simulation::resume(cp, FixedSource, GreedyPolicy).is_ok());
    }

    #[test]
    fn audit_catches_compensated_slot_area_corruption() {
        // Grow a slot's area and the node's total area together: Eq. 4
        // still balances, so the store's own checker passes — only the
        // auditor's cross-check against the configuration table sees it.
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        let (victim, slot) = drive_find(&mut sim, |s| {
            s.resources
                .nodes()
                .iter()
                .find_map(|n| n.slots().next().map(|(i, _)| (n.id, i)))
        });
        let area = sim.resources.node(victim).slot(slot).unwrap().area;
        let total = sim.resources.node(victim).total_area;
        sim.resources.debug_set_slot_area(victim, slot, area + 1);
        sim.resources.debug_set_total_area(victim, total + 1);
        assert!(
            sim.resources.check_invariants().is_ok(),
            "compensated corruption must evade the store's own checker"
        );
        match sim.audit() {
            Err(AuditError::SlotArea {
                node,
                slot_area,
                config_area,
                ..
            }) => {
                assert_eq!(node, victim);
                assert_ne!(slot_area, config_area);
            }
            other => panic!("expected SlotArea, got {other:?}"),
        }
    }

    #[test]
    fn audit_catches_store_list_corruption() {
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        // Park a task id on an idle slot without moving it to the busy
        // list: flags and lists now disagree.
        let victim = drive_to_idle_slot(&mut sim);
        sim.resources
            .debug_set_slot_task(victim.0, victim.1, Some(TaskId(0)));
        match sim.audit() {
            Err(AuditError::Store { detail }) => {
                assert!(!detail.is_empty());
            }
            other => panic!("expected Store, got {other:?}"),
        }
    }

    #[test]
    fn audit_catches_task_state_slot_mismatch() {
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, 200);
        let running = sim
            .tasks
            .iter()
            .find(|t| t.state == TaskState::Running)
            .map(|t| t.id)
            .expect("a running task exists by t=200");
        sim.tasks.get_mut(running).state = TaskState::Completed;
        match sim.audit() {
            Err(AuditError::TaskSlot { task, .. }) => assert_eq!(task, running),
            other => panic!("expected TaskSlot, got {other:?}"),
        }
    }

    #[test]
    fn audit_catches_bogus_event_target() {
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, 200);
        sim.events.push(
            sim.clock + 5,
            Event::TaskArrival {
                task: TaskId(9_999),
            },
        );
        match sim.audit() {
            Err(AuditError::EventTarget { detail, .. }) => {
                assert!(detail.contains("9999"), "got: {detail}");
            }
            other => panic!("expected EventTarget, got {other:?}"),
        }
    }

    #[test]
    fn audit_catches_stray_suspension_entry() {
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, 200);
        // Queue a task that is not in Suspended state.
        let not_suspended = sim
            .tasks
            .iter()
            .find(|t| t.state != TaskState::Suspended)
            .map(|t| t.id)
            .unwrap();
        sim.suspension.push(not_suspended, &mut sim.steps);
        assert!(matches!(sim.audit(), Err(AuditError::Suspension { .. })));
    }

    #[test]
    fn run_with_audit_aborts_on_corrupted_store() {
        // End-to-end: a run under --audit must stop with a typed error
        // (not a panic, not a silently wrong report) when state is
        // corrupted mid-run.
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        let victim = drive_to_idle_slot(&mut sim);
        sim.resources
            .debug_set_slot_task(victim.0, victim.1, Some(TaskId(0)));
        let opts = RunOptions {
            audit: true,
            ..RunOptions::default()
        };
        match sim.run_with(&opts) {
            Err(RunError::Audit(_)) => {}
            other => panic!("expected audit abort, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_checkpoint_files_are_rejected() {
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, 100);
        let dir = temp_dir("file-errors");
        let path = dir.join("good.dsc");
        write_checkpoint(&path, &sim.checkpoint()).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let (header, payload) = raw.split_once('\n').unwrap();

        // Flipped payload byte → CRC mismatch.
        let mut flipped = payload.to_string().into_bytes();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let bad = dir.join("flipped.dsc");
        std::fs::write(&bad, [header.as_bytes(), b"\n", &flipped].concat()).unwrap();
        assert!(matches!(
            read_checkpoint(&bad),
            Err(CheckpointError::Crc { .. })
        ));

        // Garbage header → format error.
        let bad = dir.join("garbage.dsc");
        std::fs::write(&bad, format!("NOT-A-CHECKPOINT\n{payload}")).unwrap();
        assert!(matches!(
            read_checkpoint(&bad),
            Err(CheckpointError::Format(_))
        ));

        // Future version → version error (checked before the CRC).
        let bumped = header.replacen(" 2 ", " 3 ", 1);
        assert_ne!(bumped, header, "header should contain the version");
        let bad = dir.join("future.dsc");
        std::fs::write(&bad, format!("{bumped}\n{payload}")).unwrap();
        assert!(matches!(
            read_checkpoint(&bad),
            Err(CheckpointError::Version { found: 3 })
        ));

        // Version 0 predates the format → version error too.
        let ancient = header.replacen(" 2 ", " 0 ", 1);
        let bad = dir.join("ancient.dsc");
        std::fs::write(&bad, format!("{ancient}\n{payload}")).unwrap();
        assert!(matches!(
            read_checkpoint(&bad),
            Err(CheckpointError::Version { found: 0 })
        ));

        // Truncated payload → CRC mismatch, not a panic.
        let bad = dir.join("truncated.dsc");
        std::fs::write(&bad, &raw[..raw.len() / 2]).unwrap();
        assert!(matches!(
            read_checkpoint(&bad),
            Err(CheckpointError::Crc { .. }) | Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn checkpoint_loader_survives_fuzzed_input() {
        // Mechanical fuzz of the on-disk format: truncate the file at
        // many lengths, flip single bits across the whole byte range,
        // and feed a batch of hand-crafted malformed headers. Every
        // variant must come back as a typed `CheckpointError` — never a
        // panic, never a silent `Ok`.
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, 150);
        let dir = temp_dir("fuzz");
        let good = dir.join("good.dsc");
        write_checkpoint(&good, &sim.checkpoint()).unwrap();
        let raw = std::fs::read(&good).unwrap();
        assert!(read_checkpoint(&good).is_ok(), "baseline must load");

        let case = dir.join("case.dsc");
        // Truncations: every prefix of the header region, then evenly
        // spaced cuts through the payload (a full sweep would be O(n²)
        // in file size for no extra coverage).
        let stride = (raw.len() / 97).max(1);
        let lengths = (0..raw.len().min(64)).chain((64..raw.len()).step_by(stride));
        for len in lengths {
            std::fs::write(&case, &raw[..len]).unwrap();
            assert!(
                read_checkpoint(&case).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
        // Single-bit flips sweeping header and payload. A flip may land
        // as invalid UTF-8 (Io), a mangled header (Format/Version), or
        // a payload mismatch (Crc) — the CRC32 catches every single-bit
        // payload error, so none of these may load.
        for pos in (0..raw.len()).step_by(stride) {
            for bit in 0..8 {
                let mut bytes = raw.clone();
                bytes[pos] ^= 1 << bit;
                std::fs::write(&case, &bytes).unwrap();
                assert!(
                    read_checkpoint(&case).is_err(),
                    "bit flip at byte {pos} bit {bit} must be rejected"
                );
            }
        }
        // Hand-crafted malformed files.
        let malformed: &[&[u8]] = &[
            b"",
            b"\n",
            b"DREAMSIM-CHECKPOINT",
            b"DREAMSIM-CHECKPOINT\n{}",
            b"DREAMSIM-CHECKPOINT 1\n{}",
            b"DREAMSIM-CHECKPOINT one 00000000\n{}",
            b"DREAMSIM-CHECKPOINT 99999999999999999999 00000000\n{}",
            b"DREAMSIM-CHECKPOINT 1 zzzzzzzz\n{}",
            b"\x00\xff\x00\xff\n\x00\xff",
        ];
        for (i, bytes) in malformed.iter().enumerate() {
            std::fs::write(&case, bytes).unwrap();
            assert!(
                read_checkpoint(&case).is_err(),
                "malformed case {i} must be rejected"
            );
        }
        // A well-formed header whose CRC genuinely matches a payload of
        // the wrong shape: must fail at JSON decoding, not load.
        let payload = br#"{"not":"a checkpoint"}"#;
        let forged = format!(
            "DREAMSIM-CHECKPOINT 1 {:08x}\n{}",
            crate::checkpoint::crc32(payload),
            std::str::from_utf8(payload).unwrap()
        );
        std::fs::write(&case, forged).unwrap();
        assert!(matches!(
            read_checkpoint(&case),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn audit_catches_duplicated_task_across_slots() {
        // Break the task⇔slot bijection from the slot side: one running
        // task id claimed by a second slot on another node.
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        let (running, spare) = drive_find(&mut sim, |s| {
            let running = s
                .resources
                .nodes()
                .iter()
                .find_map(|n| n.slots().find_map(|(_, sl)| sl.task))?;
            let spare = s.resources.nodes().iter().find_map(|n| {
                n.slots()
                    .find(|(_, sl)| sl.task.is_none())
                    .map(|(i, _)| (n.id, i))
            })?;
            Some((running, spare))
        });
        sim.resources
            .debug_set_slot_task(spare.0, spare.1, Some(running));
        match sim.audit() {
            Err(AuditError::Store { .. } | AuditError::TaskSlot { .. }) => {}
            other => panic!("expected a bijection violation, got {other:?}"),
        }
    }

    #[test]
    fn resume_audits_restored_state() {
        // A checkpoint doctored into an inconsistent state must be
        // rejected at resume, before any event is processed.
        let mut sim = Simulation::new(fault_params(), FixedSource, GreedyPolicy).unwrap();
        drive_until(&mut sim, 200);
        let mut cp = sim.checkpoint();
        // Corrupt the captured suspension queue: park a non-suspended
        // task.
        let not_suspended = cp
            .tasks
            .iter()
            .find(|t| t.state != TaskState::Suspended)
            .map(|t| t.id)
            .unwrap();
        cp.suspension.push(not_suspended, &mut StepCounter::new());
        match Simulation::resume(cp, FixedSource, GreedyPolicy).err() {
            Some(CheckpointError::State(msg)) => {
                assert!(msg.contains("audit"), "got: {msg}");
            }
            other => panic!("expected state rejection, got {other:?}"),
        }
    }

    // ---- open-system service mode ------------------------------------

    use crate::params::ServiceParams;
    use crate::service::{serve, ServiceError, ServiceOptions, WatchdogParams};

    fn service_params(horizon: u64) -> SimParams {
        let mut p = small_params();
        p.service = Some(ServiceParams {
            horizon,
            day_length: 0,
            amplitude_permille: 0,
            window: 50,
            window_retain: 4,
        });
        // The horizon bounds arrivals (inter-arrival times are at least
        // one tick), so this budget never binds within the window.
        p.total_tasks = horizon as usize + 1;
        p
    }

    fn service_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dreamsim-svc-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn service_leg_drains_at_the_horizon() {
        let mut sim = Simulation::new(service_params(500), FixedSource, GreedyPolicy).unwrap();
        let end = sim
            .run_service_leg(&ServiceLegOptions::default(), &mut None)
            .unwrap();
        assert_eq!(end, ServiceLegEnd::Horizon);
        assert_eq!(sim.clock(), 500);
        let res = sim.finish_service();
        assert!(res.metrics.total_tasks_generated > 0);
        assert_eq!(res.metrics.total_simulation_time, 500);
        assert_eq!(
            res.metrics.windows_closed, 10,
            "500 ticks / 50-tick buckets"
        );
        assert!(res.metrics.window_peak_arrivals > 0);
    }

    #[test]
    fn serve_fresh_start_reports_empty_recovery() {
        let dir = service_dir("fresh");
        let mut opts = ServiceOptions::new(&dir);
        opts.ring_every = 100;
        let out = serve(
            &service_params(400),
            |_| FixedSource,
            || GreedyPolicy,
            &opts,
        )
        .unwrap();
        assert!(out.recovery.fresh_start);
        assert_eq!(out.recovery.scanned, 0);
        assert!(!out.killed);
        assert_eq!(out.final_clock, 400);
        assert!(out.result.is_some());
        // The graceful drain snapshots the horizon state.
        let entries = crate::ring::scan_ring(&dir).unwrap();
        assert_eq!(entries.last().unwrap().clock, 400);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_service_auto_recovers_byte_identical() {
        let params = service_params(600);
        let base_dir = service_dir("kill-base");
        let mut base_opts = ServiceOptions::new(&base_dir);
        base_opts.ring_every = 100;
        base_opts.ring_retain = 3;
        base_opts.audit_every = Some(100);
        let base = serve(&params, |_| FixedSource, || GreedyPolicy, &base_opts).unwrap();
        let base_xml = base.result.unwrap().report.to_xml();

        let kill_dir = service_dir("kill-ring");
        let mut kill_opts = ServiceOptions::new(&kill_dir);
        kill_opts.ring_every = 100;
        kill_opts.ring_retain = 3;
        kill_opts.stop_at = Some(300);
        let killed = serve(&params, |_| FixedSource, || GreedyPolicy, &kill_opts).unwrap();
        assert!(killed.killed);
        assert!(killed.result.is_none(), "a killed run has no final report");
        assert!(killed.final_clock >= 300);

        // Auto-recover on the same ring and drain to the horizon.
        kill_opts.stop_at = None;
        let recovered = serve(&params, |_| FixedSource, || GreedyPolicy, &kill_opts).unwrap();
        assert!(recovered.recovery.recovered_from.is_some());
        assert!(!recovered.recovery.fresh_start);
        assert_eq!(
            recovered.result.unwrap().report.to_xml(),
            base_xml,
            "kill-and-recover must reproduce the uninterrupted window byte for byte"
        );

        // Resuming an already-completed window is idempotent.
        let again = serve(&params, |_| FixedSource, || GreedyPolicy, &kill_opts).unwrap();
        assert_eq!(again.recovery.recovered_clock, Some(600));
        assert_eq!(again.result.unwrap().report.to_xml(), base_xml);
        let _ = std::fs::remove_dir_all(&base_dir);
        let _ = std::fs::remove_dir_all(&kill_dir);
    }

    #[test]
    fn recovery_falls_back_past_a_corrupted_newest_snapshot() {
        let params = service_params(600);
        let base_dir = service_dir("corrupt-base");
        let mut opts = ServiceOptions::new(&base_dir);
        opts.ring_every = 100;
        let base = serve(&params, |_| FixedSource, || GreedyPolicy, &opts).unwrap();
        let base_xml = base.result.unwrap().report.to_xml();

        let ring_dir = service_dir("corrupt-ring");
        let mut kill_opts = ServiceOptions::new(&ring_dir);
        kill_opts.ring_every = 100;
        kill_opts.stop_at = Some(300);
        serve(&params, |_| FixedSource, || GreedyPolicy, &kill_opts).unwrap();

        // Deliberately corrupt the newest snapshot's payload.
        let entries = crate::ring::scan_ring(&ring_dir).unwrap();
        let newest = entries.last().unwrap();
        let mut bytes = std::fs::read(&newest.path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        std::fs::write(&newest.path, bytes).unwrap();
        let newest_name = newest
            .path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .to_string();

        kill_opts.stop_at = None;
        let recovered = serve(&params, |_| FixedSource, || GreedyPolicy, &kill_opts).unwrap();
        assert_eq!(recovered.recovery.rejected.len(), 1);
        assert_eq!(recovered.recovery.rejected[0].file, newest_name);
        let from = recovered.recovery.recovered_from.clone().unwrap();
        assert!(from < newest_name, "fell back to an older snapshot");
        assert_eq!(
            recovered.result.unwrap().report.to_xml(),
            base_xml,
            "fallback recovery must still reproduce the uninterrupted window"
        );
        let _ = std::fs::remove_dir_all(&base_dir);
        let _ = std::fs::remove_dir_all(&ring_dir);
    }

    #[test]
    fn watchdog_exhaustion_is_a_typed_error() {
        let dir = service_dir("watchdog");
        let mut opts = ServiceOptions::new(&dir);
        opts.ring_every = 100;
        // A stall window this tight trips long before the first
        // completion (tasks run 100 ticks), on every deterministic
        // replay — so the bounded restarts must exhaust.
        opts.watchdog = Some(WatchdogParams {
            max_events_per_tick: 1_000,
            stall_window: 5,
            max_restarts: 1,
        });
        match serve(
            &service_params(600),
            |_| FixedSource,
            || GreedyPolicy,
            &opts,
        ) {
            Err(ServiceError::WatchdogExhausted { restarts, diag }) => {
                assert_eq!(restarts, 1);
                assert!(diag.stalled_for >= 5, "diag carries evidence: {diag}");
            }
            other => panic!("expected watchdog exhaustion, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
