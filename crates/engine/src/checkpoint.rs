//! Deterministic checkpoint/restore of a running simulation.
//!
//! A [`Checkpoint`] captures the complete observable state of a
//! [`Simulation`](crate::Simulation) mid-run: the resource store (nodes,
//! slots, intrusive idle/busy list links), the task table, the event
//! queue **with its tie-break sequence numbers**, the suspension queue,
//! step/statistics accumulators, the RNG stream position, and the fault
//! model (its own RNG, per-node down-since stamps, accumulated
//! downtime). Restoring from a checkpoint and running to completion
//! produces bit-identical results — the same XML report, metrics, and
//! fault counters — as the uninterrupted run, on both drivers.
//!
//! **Not captured:** attached [`Observer`](crate::monitor::Observer)s
//! (they are trait objects owned by the caller; a resumed run starts
//! with an empty observer list), the task source / policy internals
//! beyond a cursor and an identity label — sources declare a replay
//! cursor via [`TaskSource`](crate::TaskSource) hooks, and stateless
//! policies are rebuilt from their label — and the store's search
//! backend/index selection: search backends are byte-equivalent by
//! construction (DESIGN.md §11), so the index is derived state. A
//! resumed run starts on the default (linear) backend and re-selects
//! with [`Simulation::with_search_backend`](crate::Simulation::with_search_backend),
//! which rebuilds the index from the restored store.
//!
//! ## File format
//!
//! A checkpoint file is a single header line
//!
//! ```text
//! DREAMSIM-CHECKPOINT <version> <crc32-hex>\n
//! ```
//!
//! followed by the JSON payload. The CRC-32 (IEEE, as in zip/PNG) covers
//! exactly the payload bytes, so truncation and bit-rot are detected
//! before deserialization. Writes go to a sibling `*.tmp` file which is
//! fsynced and atomically renamed into place — a crash mid-write can
//! never leave a half-written file under the checkpoint's final name.

use crate::event::EventQueue;
use crate::fault::FaultModel;
use crate::params::SimParams;
use crate::sim::TaskTable;
use crate::stats::Stats;
use dreamsim_model::{ResourceManager, StepCounter, SuspensionQueue, Ticks};
use dreamsim_rng::Rng;
use std::io::Write as _;
use std::path::Path;

/// Format version written to the header; bumped on any incompatible
/// payload change. Version 2 packs the task table into the compact
/// columnar form (see [`crate::compact`]); version 1 carried it as a
/// plain JSON array. Readers accept every version from
/// [`OLDEST_READABLE_VERSION`] up to this one and reject the rest with
/// [`CheckpointError::Version`].
pub const FORMAT_VERSION: u32 = 2;

/// Oldest header version this build still reads (the version-1 task
/// array decodes through the same [`TaskTable`] deserializer).
pub const OLDEST_READABLE_VERSION: u32 = 1;

/// Magic token opening every checkpoint file.
const MAGIC: &str = "DREAMSIM-CHECKPOINT";

/// Why a checkpoint could not be written, read, or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while writing or reading.
    Io(std::io::Error),
    /// The file is not a checkpoint (bad magic, malformed header, or
    /// undecodable payload).
    Format(String),
    /// The file is a checkpoint of an unsupported format version.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// The payload bytes do not match the header checksum (truncation or
    /// corruption).
    Crc {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the actual payload bytes.
        found: u32,
    },
    /// The payload decoded but describes a state the simulator refuses
    /// to adopt (invalid parameters, mismatched policy/source, or an
    /// audit failure on restore).
    State(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(msg) => write!(f, "not a valid checkpoint: {msg}"),
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads \
                 versions {OLDEST_READABLE_VERSION} through {FORMAT_VERSION})"
            ),
            CheckpointError::Crc { expected, found } => write!(
                f,
                "checkpoint payload corrupt: header CRC {expected:08x} but payload \
                 hashes to {found:08x}"
            ),
            CheckpointError::State(msg) => write!(f, "checkpoint state rejected: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A complete mid-run snapshot of a simulation.
///
/// Produced by [`Simulation::checkpoint`](crate::Simulation::checkpoint),
/// consumed by [`Simulation::resume`](crate::Simulation::resume);
/// serialized to disk by [`write_checkpoint`] / [`read_checkpoint`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint {
    pub(crate) params: SimParams,
    /// Identity label of the policy that was running
    /// ([`SchedulePolicy::state_label`](crate::SchedulePolicy::state_label));
    /// resume refuses a different policy.
    pub(crate) policy: String,
    /// Identity of the task source
    /// ([`TaskSource::source_kind`](crate::TaskSource::source_kind)).
    pub(crate) source_kind: String,
    /// Replay cursor of the task source
    /// ([`TaskSource::source_cursor`](crate::TaskSource::source_cursor)).
    pub(crate) source_cursor: u64,
    pub(crate) resources: ResourceManager,
    pub(crate) tasks: TaskTable,
    pub(crate) events: EventQueue,
    pub(crate) suspension: SuspensionQueue,
    pub(crate) steps: StepCounter,
    pub(crate) stats: Stats,
    /// Waiting-time samples, carried separately because [`Stats`] skips
    /// them in serde (reports never embed the raw samples) — but the
    /// final percentiles must survive a resume.
    pub(crate) wait_samples: Vec<Ticks>,
    pub(crate) rng: Rng,
    pub(crate) fault: FaultModel,
    pub(crate) clock: Ticks,
    pub(crate) created: u64,
    pub(crate) last_arrival: Ticks,
    pub(crate) stalled: bool,
}

impl Checkpoint {
    /// Parameters of the checkpointed run.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Identity label of the policy that was running.
    #[must_use]
    pub fn policy_label(&self) -> &str {
        &self.policy
    }

    /// Identity of the task source that was feeding the run.
    #[must_use]
    pub fn source_kind(&self) -> &str {
        &self.source_kind
    }

    /// Simulation time at which the snapshot was taken.
    #[must_use]
    pub fn clock(&self) -> Ticks {
        self.clock
    }
}

/// CRC-32 (IEEE 802.3, reflected, as used by zip/PNG), bitwise — no
/// table, the payloads are small and this keeps the implementation
/// dependency-free and obviously correct.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serialize `cp` and atomically write it to `path`; returns the number
/// of bytes written (header + payload), which the phase profiler
/// accumulates as `checkpoint_bytes`.
///
/// The bytes go to `path` + `".tmp"` first, are flushed and fsynced,
/// then renamed over `path` — readers never observe a partial file.
pub fn write_checkpoint(path: &Path, cp: &Checkpoint) -> Result<u64, CheckpointError> {
    let payload = serde_json::to_string(cp)
        .map_err(|e| CheckpointError::Format(format!("serialization failed: {e}")))?;
    let header = format!(
        "{MAGIC} {FORMAT_VERSION} {:08x}\n",
        crc32(payload.as_bytes())
    );
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(header.as_bytes())?;
        f.write_all(payload.as_bytes())?;
        f.flush()?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok((header.len() + payload.len()) as u64)
}

/// Serialize `cp` in the legacy version-1 layout and write it to `path`.
///
/// Identical to [`write_checkpoint`] except the task table is emitted as
/// the version-1 JSON array and the header carries version 1. Exists so
/// compatibility tests (and tooling that must interoperate with old
/// fleets) can produce files this build is contractually able to read.
/// Returns the number of bytes written, like [`write_checkpoint`].
pub fn write_checkpoint_compat_v1(path: &Path, cp: &Checkpoint) -> Result<u64, CheckpointError> {
    let mut value = serde::Serialize::to_value(cp);
    let serde::Value::Object(fields) = &mut value else {
        return Err(CheckpointError::Format(
            "checkpoint did not serialize to an object".to_string(),
        ));
    };
    let tasks_slot = fields
        .iter_mut()
        .find(|(k, _)| k == "tasks")
        .ok_or_else(|| CheckpointError::Format("payload missing tasks field".to_string()))?;
    tasks_slot.1 = cp.tasks.to_legacy_value();
    let payload = serde_json::to_string(&value)
        .map_err(|e| CheckpointError::Format(format!("serialization failed: {e}")))?;
    let header = format!(
        "{MAGIC} {OLDEST_READABLE_VERSION} {:08x}\n",
        crc32(payload.as_bytes())
    );
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(header.as_bytes())?;
        f.write_all(payload.as_bytes())?;
        f.flush()?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok((header.len() + payload.len()) as u64)
}

/// Read and validate a checkpoint file written by [`write_checkpoint`].
///
/// Validation order: magic and header shape ([`CheckpointError::Format`]),
/// format version ([`CheckpointError::Version`]), payload checksum
/// ([`CheckpointError::Crc`]), then JSON decoding
/// ([`CheckpointError::Format`]). Semantic validation (parameters,
/// policy/source identity, state invariants) happens later, in
/// [`Simulation::resume`](crate::Simulation::resume).
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let raw = std::fs::read_to_string(path)?;
    let (header, payload) = raw
        .split_once('\n')
        .ok_or_else(|| CheckpointError::Format("missing header line".to_string()))?;
    let mut parts = header.split_ascii_whitespace();
    let magic = parts.next().unwrap_or_default();
    if magic != MAGIC {
        return Err(CheckpointError::Format(format!(
            "bad magic {magic:?} (expected {MAGIC:?})"
        )));
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::Format("header missing version".to_string()))?;
    if !(OLDEST_READABLE_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(CheckpointError::Version { found: version });
    }
    let expected = parts
        .next()
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| CheckpointError::Format("header missing checksum".to_string()))?;
    if parts.next().is_some() {
        return Err(CheckpointError::Format(
            "trailing header fields".to_string(),
        ));
    }
    let found = crc32(payload.as_bytes());
    if found != expected {
        return Err(CheckpointError::Crc { expected, found });
    }
    serde_json::from_str(payload)
        .map_err(|e| CheckpointError::Format(format!("payload decode failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
