//! Continuous state-invariant auditor.
//!
//! [`check`] cross-validates every piece of live simulator state against
//! every other: the resource store's intrusive idle/busy lists against
//! node slot flags (plus, under the indexed search backend, the live
//! search index against a from-scratch rebuild — see DESIGN.md §11),
//! per-slot area against the configuration table, the task table against
//! slot occupancy, pending events against the tasks and nodes they
//! target, and the suspension queue against task states.
//!
//! The auditor runs at checkpoint boundaries (a checkpoint of corrupted
//! state is worse than no checkpoint), under the CLI's `--audit` /
//! `--audit-every` flags, and on every restore. A violation produces a
//! structured [`AuditError`] naming the offending ids — the simulation
//! aborts with a typed error instead of silently producing a wrong
//! result.
//!
//! All checks are read-only and use only public accessors, so the
//! auditor can never itself perturb the state it is validating. Cost is
//! O(nodes × slots + events + tasks) per invocation.

use crate::event::{Event, EventQueue};
use crate::sim::TaskTable;
use dreamsim_model::{
    Area, ConfigId, EntryRef, NodeId, ResourceManager, SuspensionQueue, TaskId, TaskState, Ticks,
};
use std::collections::{BTreeMap, BTreeSet};

/// A violated state invariant, with enough context to locate the
/// corruption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// The resource store's own cross-structure invariants failed
    /// (intrusive-list reachability, acyclicity, membership, Eq. 4 area
    /// accounting). Carries the store's walk trace.
    Store {
        /// Diagnostic from [`ResourceManager::check_invariants`],
        /// including the list-walk trace of the offending entry.
        detail: String,
    },
    /// A live slot's recorded area disagrees with the configuration
    /// table.
    SlotArea {
        /// Node holding the slot.
        node: NodeId,
        /// Slot index within the node.
        slot: u32,
        /// Configuration the slot claims to hold.
        config: ConfigId,
        /// Area recorded on the slot.
        slot_area: Area,
        /// Area the configuration table says that config occupies.
        config_area: Area,
    },
    /// The task table and the slot occupancy disagree (a slot names a
    /// non-running task, a task is in two slots, or a running task is in
    /// no slot).
    TaskSlot {
        /// Offending task.
        task: TaskId,
        /// What disagreed, including the slot walk.
        detail: String,
    },
    /// A pending event targets state that cannot receive it.
    EventTarget {
        /// When the event is due.
        time: Ticks,
        /// What is wrong with the event's target.
        detail: String,
    },
    /// The suspension queue and the task table disagree.
    Suspension {
        /// What disagreed, including queue contents where relevant.
        detail: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Store { detail } => write!(f, "store invariant violated: {detail}"),
            AuditError::SlotArea {
                node,
                slot,
                config,
                slot_area,
                config_area,
            } => write!(
                f,
                "area mismatch on {node} slot {slot}: slot records {slot_area} \
                 but {config} requires {config_area}"
            ),
            AuditError::TaskSlot { task, detail } => {
                write!(f, "task/slot mismatch for {task}: {detail}")
            }
            AuditError::EventTarget { time, detail } => {
                write!(
                    f,
                    "pending event at t={time} has an invalid target: {detail}"
                )
            }
            AuditError::Suspension { detail } => {
                write!(f, "suspension queue inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Cross-check all live simulator state. Returns the first violation
/// found.
///
/// The five check groups, in order:
/// 1. store internals — intrusive-list reachability/acyclicity/membership
///    and Eq. 4 area accounting ([`ResourceManager::check_invariants`]);
/// 2. slot areas — every live slot's `area` matches its configuration's
///    `req_area` and its config id is in range;
/// 3. task ⇔ slot bijection — slots hold exactly the `Running` tasks,
///    each exactly once;
/// 4. event targets — every pending event is due no earlier than `clock`
///    and targets in-range ids (domain events against `num_domains`, the
///    count of configured failure domains — 0 when domains are off, so
///    any pending domain event is then invalid); *current* (non-stale)
///    completion/failure events point at the slot actually running the
///    task, and current suspension timeouts point at a queued task;
/// 5. suspension queue — queued ids are in range and `Suspended`, no
///    duplicates, and the queue holds exactly the suspended tasks.
pub fn check(
    resources: &ResourceManager,
    tasks: &TaskTable,
    events: &EventQueue,
    suspension: &SuspensionQueue,
    clock: Ticks,
    num_domains: usize,
) -> Result<(), AuditError> {
    check_store(resources)?;
    check_slot_areas(resources)?;
    check_task_slot_bijection(resources, tasks)?;
    check_event_targets(resources, tasks, suspension, events, clock, num_domains)?;
    check_suspension(tasks, suspension)?;
    Ok(())
}

fn check_store(resources: &ResourceManager) -> Result<(), AuditError> {
    resources
        .check_invariants()
        .map_err(|detail| AuditError::Store { detail })
}

fn check_slot_areas(resources: &ResourceManager) -> Result<(), AuditError> {
    for n in resources.nodes() {
        for (idx, slot) in n.slots() {
            if slot.config.index() >= resources.num_configs() {
                return Err(AuditError::Store {
                    detail: format!(
                        "{} slot {idx} holds out-of-range {} (have {} configs)",
                        n.id,
                        slot.config,
                        resources.num_configs()
                    ),
                });
            }
            let config_area = resources.config(slot.config).req_area;
            if slot.area != config_area {
                return Err(AuditError::SlotArea {
                    node: n.id,
                    slot: idx,
                    config: slot.config,
                    slot_area: slot.area,
                    config_area,
                });
            }
        }
    }
    Ok(())
}

fn check_task_slot_bijection(
    resources: &ResourceManager,
    tasks: &TaskTable,
) -> Result<(), AuditError> {
    let mut placed: BTreeMap<TaskId, EntryRef> = BTreeMap::new();
    for n in resources.nodes() {
        for (idx, slot) in n.slots() {
            let Some(task) = slot.task else { continue };
            let entry = EntryRef::new(n.id, idx);
            if task.index() >= tasks.len() {
                return Err(AuditError::TaskSlot {
                    task,
                    detail: format!(
                        "{entry} runs out-of-range task (table has {} tasks)",
                        tasks.len()
                    ),
                });
            }
            if let Some(prev) = placed.insert(task, entry) {
                return Err(AuditError::TaskSlot {
                    task,
                    detail: format!("running on two slots at once: {prev} and {entry}"),
                });
            }
            let state = tasks.get(task).state;
            if state != TaskState::Running {
                return Err(AuditError::TaskSlot {
                    task,
                    detail: format!("occupies {entry} but its state is {state:?}, not Running"),
                });
            }
        }
    }
    for t in tasks.iter() {
        if t.state == TaskState::Running && !placed.contains_key(&t.id) {
            return Err(AuditError::TaskSlot {
                task: t.id,
                detail: "state is Running but no slot holds it".to_string(),
            });
        }
    }
    Ok(())
}

fn check_event_targets(
    resources: &ResourceManager,
    tasks: &TaskTable,
    suspension: &SuspensionQueue,
    events: &EventQueue,
    clock: Ticks,
    num_domains: usize,
) -> Result<(), AuditError> {
    let queued: BTreeSet<TaskId> = suspension.iter().collect();
    let task_in_range = |t: TaskId| t.index() < tasks.len();
    let node_in_range = |n: NodeId| n.index() < resources.num_nodes();
    for (time, ev) in events.pending() {
        if time < clock {
            return Err(AuditError::EventTarget {
                time,
                detail: format!("{ev:?} is due before the clock ({clock})"),
            });
        }
        match ev {
            Event::TaskArrival { task } | Event::ReconfigFailed { task } => {
                if !task_in_range(task) {
                    return Err(AuditError::EventTarget {
                        time,
                        detail: format!("{ev:?} targets out-of-range {task}"),
                    });
                }
            }
            Event::NodeFailure { node } | Event::NodeRepair { node } => {
                if !node_in_range(node) {
                    return Err(AuditError::EventTarget {
                        time,
                        detail: format!("{ev:?} targets out-of-range {node}"),
                    });
                }
            }
            Event::TaskCompletion {
                task,
                entry,
                started_at,
            }
            | Event::TaskFailed {
                task,
                entry,
                started_at,
            } => {
                if !task_in_range(task) || !node_in_range(entry.node) {
                    return Err(AuditError::EventTarget {
                        time,
                        detail: format!("{ev:?} targets out-of-range task or node"),
                    });
                }
                // Stale events (killed/resubmitted runs) are legal; only
                // a *current* event must match live slot occupancy.
                let t = tasks.get(task);
                let current = t.state == TaskState::Running && t.start_time == Some(started_at);
                if current
                    && resources
                        .node(entry.node)
                        .slot(entry.slot)
                        .is_none_or(|s| s.task != Some(task))
                {
                    return Err(AuditError::EventTarget {
                        time,
                        detail: format!("current {ev:?} but {entry} does not hold {task}"),
                    });
                }
            }
            Event::DomainOutage { domain, .. } | Event::DomainRestore { domain } => {
                // BOUND: u32 domain index; usize is at least 32 bits on every supported target.
                if domain as usize >= num_domains {
                    return Err(AuditError::EventTarget {
                        time,
                        detail: format!(
                            "{ev:?} targets out-of-range domain (have {num_domains} domains)"
                        ),
                    });
                }
            }
            Event::SuspensionTimeout { task, enqueued_at } => {
                if !task_in_range(task) {
                    return Err(AuditError::EventTarget {
                        time,
                        detail: format!("{ev:?} targets out-of-range {task}"),
                    });
                }
                let t = tasks.get(task);
                let current =
                    t.state == TaskState::Suspended && t.suspended_at == Some(enqueued_at);
                if current && !queued.contains(&task) {
                    return Err(AuditError::EventTarget {
                        time,
                        detail: format!("current {ev:?} but {task} is not in the suspension queue"),
                    });
                }
            }
        }
    }
    Ok(())
}

fn check_suspension(tasks: &TaskTable, suspension: &SuspensionQueue) -> Result<(), AuditError> {
    let mut seen: BTreeSet<TaskId> = BTreeSet::new();
    for task in suspension.iter() {
        if task.index() >= tasks.len() {
            return Err(AuditError::Suspension {
                detail: format!(
                    "queue holds out-of-range {task} (table has {} tasks)",
                    tasks.len()
                ),
            });
        }
        if !seen.insert(task) {
            return Err(AuditError::Suspension {
                detail: format!("{task} queued more than once"),
            });
        }
        let state = tasks.get(task).state;
        if state != TaskState::Suspended {
            return Err(AuditError::Suspension {
                detail: format!("queued {task} has state {state:?}, not Suspended"),
            });
        }
    }
    let suspended = tasks
        .iter()
        .filter(|t| t.state == TaskState::Suspended)
        .count();
    if suspended != suspension.len() {
        return Err(AuditError::Suspension {
            detail: format!(
                "{suspended} tasks are Suspended but the queue holds {} entries",
                suspension.len()
            ),
        });
    }
    Ok(())
}
