//! Chaos-layer integration: the built-in campaign end to end (audits,
//! drills), and deterministic admission-policy behaviour under scripted
//! overload — including byte-identical reports across worker counts.

use dreamsim_engine::{
    AdmissionPolicy, BurstWindow, DomainOutageKind, DomainParams, ReconfigMode, ScriptedOutage,
    SimParams,
};
use dreamsim_sweep::chaos::{parse_campaign, run_campaign, CampaignOptions, BUILTIN_CAMPAIGN};
use dreamsim_sweep::{run_batch, SweepPoint};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    // lint: allow(r2) -- scratch directory for test artifacts, never simulator state
    let d = std::env::temp_dir().join(format!("dreamsim-chaoscamp-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn builtin_campaign_runs_audited_with_drills() {
    let scenarios = parse_campaign(BUILTIN_CAMPAIGN).unwrap();
    let dir = temp_dir("builtin");
    let report = run_campaign(&scenarios, &CampaignOptions::default(), &dir).unwrap();
    assert_eq!(report.cases.len(), 3);

    let rack = &report.cases[0];
    assert_eq!(rack.name, "rack-outage");
    assert_eq!(rack.domain_outages, 2, "both scripted outages fire");
    assert_eq!(rack.domain_restores, 2);
    assert!(rack.domain_downtime.iter().sum::<u64>() >= 1400);

    let storm = &report.cases[1];
    assert_eq!(storm.name, "partition-storm");
    assert!(storm.domain_outages > 0, "stochastic outages fire");
    assert_eq!(storm.domain_outages, storm.domain_restores);

    let shed = &report.cases[2];
    assert_eq!(shed.name, "overload-shed");
    assert!(shed.shed > 0, "the burst must overflow the bounded queue");

    for (c, sc) in report.cases.iter().zip(&scenarios) {
        assert_eq!(
            c.completed + c.discarded,
            sc.tasks as u64,
            "{}: workload conserved",
            c.name
        );
        let d = c.drill.expect("drills enabled");
        assert!(d.report_identical, "{}: drill must reconverge", c.name);
        assert!(d.checkpoint_at < c.makespan, "{}: snapshot mid-run", c.name);
    }

    // The drill directories hold the surviving snapshots.
    for name in ["rack-outage", "partition-storm", "overload-shed"] {
        assert!(dir.join(name).is_dir(), "{name} drill dir exists");
    }
}

/// A saturating arrival burst into a small cluster with a bounded
/// suspension queue: admission control fires on nearly every arrival.
fn burst_params(admission: AdmissionPolicy) -> SimParams {
    let mut p = SimParams::paper(16, 300, ReconfigMode::Partial);
    p.seed = 2024;
    p.burst = Some(BurstWindow {
        start: 0,
        end: 5_000,
        interval: 2,
    });
    p.suspension_cap = Some(16);
    p.admission = admission;
    p.faults.suspension_deadline = Some(2_000);
    p
}

/// A lightly loaded cluster hit by a scripted partition outage: the
/// eviction flood overflows the queue while survivors still hold idle
/// instances, which is the window where degrade-to-closest-match can
/// actually place overflow instead of shedding it.
fn partition_params(admission: AdmissionPolicy) -> SimParams {
    let mut p = SimParams::paper(16, 300, ReconfigMode::Partial);
    p.seed = 2024;
    p.task_time.hi = 500;
    p.suspension_cap = Some(2);
    p.admission = admission;
    p.faults.suspension_deadline = Some(2_000);
    p.domains = Some(DomainParams {
        count: 2,
        mttf: None,
        mttr: 300,
        kind: DomainOutageKind::Partition,
        scripted: vec![ScriptedOutage {
            domain: 0,
            at: 1_000,
            duration: 800,
        }],
    });
    p
}

const POLICIES: [AdmissionPolicy; 3] = [
    AdmissionPolicy::Block,
    AdmissionPolicy::ShedOldest,
    AdmissionPolicy::DegradeClosest,
];

#[test]
fn admission_policies_shed_under_a_saturating_burst() {
    let points: Vec<SweepPoint> = POLICIES
        .iter()
        .map(|&a| SweepPoint::new(a.label(), burst_params(a)))
        .collect();
    let reports = run_batch(&points, 1);
    for (r, a) in reports.iter().zip(POLICIES) {
        let m = &r.metrics;
        assert_eq!(
            m.total_tasks_completed + m.total_discarded_tasks,
            300,
            "{}: workload conserved",
            a.label()
        );
        assert!(m.tasks_shed > 0, "{}: the burst must shed", a.label());
        assert!(m.total_suspensions > 0, "{}", a.label());
    }
    // Shedding the head instead of the newcomer changes which tasks
    // survive, so the two eviction policies must diverge.
    assert_ne!(reports[0].metrics, reports[1].metrics);
    // Under full saturation no idle capacity ever exists, so
    // degrade-to-closest-match degenerates to blocking by design.
    assert_eq!(reports[2].metrics.tasks_degraded, 0);
}

#[test]
fn degrade_places_partition_overflow_on_surviving_capacity() {
    let points: Vec<SweepPoint> = POLICIES
        .iter()
        .map(|&a| SweepPoint::new(a.label(), partition_params(a)))
        .collect();
    let reports = run_batch(&points, 1);
    for (r, a) in reports.iter().zip(POLICIES) {
        let m = &r.metrics;
        assert_eq!(m.domain_outages, 1, "{}", a.label());
        assert_eq!(
            m.total_tasks_completed + m.total_discarded_tasks,
            300,
            "{}: workload conserved",
            a.label()
        );
    }
    let degrade = &reports[2].metrics;
    assert!(
        degrade.tasks_degraded > 0,
        "partition overflow must degrade onto surviving idle slots"
    );
    assert_eq!(reports[0].metrics.tasks_degraded, 0);
    assert_eq!(reports[1].metrics.tasks_degraded, 0);
    // Degrading keeps tasks alive that blocking sheds.
    assert!(degrade.total_tasks_completed > reports[0].metrics.total_tasks_completed);
    assert_ne!(reports[0].metrics, reports[1].metrics);
    assert_ne!(reports[0].metrics, reports[2].metrics);
}

#[test]
fn chaos_batches_are_byte_identical_across_worker_counts() {
    let mut points: Vec<SweepPoint> = Vec::new();
    for &a in &POLICIES {
        points.push(SweepPoint::new(
            format!("burst/{}", a.label()),
            burst_params(a),
        ));
        points.push(SweepPoint::new(
            format!("partition/{}", a.label()),
            partition_params(a),
        ));
    }
    let seq = run_batch(&points, 1);
    let par = run_batch(&points, 4);
    for ((a, b), pt) in seq.iter().zip(&par).zip(&points) {
        assert_eq!(a.metrics, b.metrics, "{}", pt.label);
        assert_eq!(a.to_xml(), b.to_xml(), "{}: -j1 vs -j4 bytes", pt.label);
    }
}
