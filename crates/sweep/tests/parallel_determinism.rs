//! Thread-count invariance suite for the deterministic parallel runner
//! (DESIGN.md §13): the same grid, batch, or figure bundle must come
//! out **byte-identical** at `-j1`, `-j2`, and `-j8` — with fault
//! injection on, and when a point is checkpointed mid-run and resumed.

use dreamsim_engine::{
    read_checkpoint, ReconfigMode, RunOptions, SearchBackend, SimParams, Simulation,
};
use dreamsim_sched::CaseStudyScheduler;
use dreamsim_sweep::{
    cost_descending_order, run_batch, run_ordered, run_point, ExperimentGrid, SweepPoint,
};
use dreamsim_workload::SyntheticSource;
use proptest::prelude::*;

const JOBS_LADDER: [usize; 3] = [1, 2, 8];

#[test]
fn figures_grid_bytes_invariant_across_jobs() {
    let bundle = |jobs| {
        let grid = ExperimentGrid::run(&[100], &[200, 400], 2012, jobs);
        (grid.figures_csv_bundle(&[100]), grid.cells_csv())
    };
    let base = bundle(JOBS_LADDER[0]);
    assert!(!base.0.is_empty() && !base.1.is_empty());
    for jobs in &JOBS_LADDER[1..] {
        assert_eq!(base, bundle(*jobs), "grid diverged at -j{jobs}");
    }
}

#[test]
fn fault_injection_batch_invariant_across_jobs() {
    let points: Vec<SweepPoint> = (0..5)
        .map(|i| {
            let mut p = SimParams::paper(30, 200, ReconfigMode::Partial);
            p.seed = 100 + i;
            p.faults.node_mttf = Some(400);
            p.faults.node_mttr = 100;
            p.faults.reconfig_fail_prob = 0.2;
            p.faults.task_fail_prob = 0.1;
            SweepPoint::new(format!("fault{i}"), p)
        })
        .collect();
    let xmls = |jobs| -> Vec<String> {
        run_batch(&points, jobs)
            .iter()
            .map(|r| r.to_xml())
            .collect()
    };
    let base = xmls(JOBS_LADDER[0]);
    for jobs in &JOBS_LADDER[1..] {
        assert_eq!(base, xmls(*jobs), "fault batch diverged at -j{jobs}");
    }
}

#[test]
fn resume_mid_grid_point_matches_parallel_batch_result() {
    // One grid cell, derived exactly as ExperimentGrid derives it.
    let (seed, nodes, tasks) = (2012u64, 100usize, 300usize);
    let mut params = SimParams::paper(nodes, tasks, ReconfigMode::Partial);
    params.seed = dreamsim_rng::derive_stream(seed, (nodes as u64) << 32 | tasks as u64);

    // The cell as the parallel batch runner produces it.
    let batch = run_batch(&[SweepPoint::new("cell", params.clone())], 2)
        .pop()
        .unwrap();

    // The same cell run standalone with a mid-run checkpoint, then
    // resumed from that checkpoint to completion.
    // lint: allow(r2) -- scratch directory for test artifacts, never simulator state
    let dir = std::env::temp_dir().join(format!("dreamsim-grid-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let source = SyntheticSource::from_params(&params);
    let full = Simulation::new(params.clone(), source, CaseStudyScheduler::new())
        .unwrap()
        .run();
    let mid = full.metrics.total_simulation_time / 2;
    let source = SyntheticSource::from_params(&params);
    let _ = Simulation::new(params.clone(), source, CaseStudyScheduler::new())
        .unwrap()
        .run_with(&RunOptions {
            checkpoint_every: Some(mid.max(1)),
            checkpoint_dir: Some(dir.clone()),
            audit: false,
            audit_every: None,
        })
        .unwrap();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    let cp = read_checkpoint(&dir.join(&names[0])).unwrap();
    let source = SyntheticSource::from_params(&params);
    let resumed = Simulation::resume(cp, source, CaseStudyScheduler::new())
        .unwrap()
        .run();

    assert_eq!(batch.to_xml(), full.report.to_xml(), "batch vs standalone");
    assert_eq!(batch.to_xml(), resumed.report.to_xml(), "batch vs resumed");
}

#[test]
fn auto_backend_matches_both_explicit_reports_byte_for_byte() {
    // Auto resolves to linear at 100 nodes and indexed at 200
    // (AUTO_INDEXED_MIN_NODES); either way its report must equal both
    // explicit backends' reports byte for byte — so in particular it
    // matches the faster one.
    for nodes in [100usize, 200] {
        let mut p = SimParams::paper(nodes, 300, ReconfigMode::Partial);
        p.seed = 42;
        let auto = run_point(&SweepPoint::new("auto", p.clone()));
        let lin = run_point(&SweepPoint::new("lin", p.clone()).with_search(SearchBackend::Linear));
        let idx = run_point(&SweepPoint::new("idx", p).with_search(SearchBackend::Indexed));
        assert_eq!(auto.to_xml(), lin.to_xml(), "{nodes} nodes: auto vs linear");
        assert_eq!(
            auto.to_xml(),
            idx.to_xml(),
            "{nodes} nodes: auto vs indexed"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pool's merged output equals the serial point order for any
    /// cost vector (hence any LPT claim permutation) and worker count.
    #[test]
    fn parallel_merge_order_equals_serial_point_order(
        costs in prop::collection::vec(0u64..1_000, 1..40),
        jobs in 1usize..9,
    ) {
        let order = cost_descending_order(&costs);
        let serial: Vec<(usize, u64)> =
            run_ordered(&order, 1, || (), |(), i| (i, costs[i]));
        let parallel: Vec<(usize, u64)> =
            run_ordered(&order, jobs, || (), |(), i| (i, costs[i]));
        prop_assert_eq!(&serial, &parallel);
        let indices: Vec<usize> = parallel.iter().map(|&(i, _)| i).collect();
        let expected: Vec<usize> = (0..costs.len()).collect();
        prop_assert_eq!(indices, expected, "merge order is the point order");
    }
}
