//! Ablation harnesses (DESIGN.md A1–A4): quantify the design choices the
//! paper makes but does not isolate.

use crate::runner::{run_batch, run_point, PolicyConfig, SweepPoint};
use dreamsim_engine::{Metrics, SimParams, Simulation};
use dreamsim_sched::{AllocationStrategy, CaseStudyScheduler};
use dreamsim_workload::SyntheticSource;

/// A1 — allocation-strategy comparison: the same workload under each
/// strategy. Returns `(strategy label, metrics)` pairs in strategy
/// order.
#[must_use]
pub fn policy_comparison(base: &SimParams, threads: usize) -> Vec<(&'static str, Metrics)> {
    let strategies = [
        AllocationStrategy::BestFit,
        AllocationStrategy::FirstFit,
        AllocationStrategy::WorstFit,
        AllocationStrategy::Random,
        AllocationStrategy::LeastLoaded,
    ];
    let points: Vec<SweepPoint> = strategies
        .iter()
        .map(|&strategy| {
            SweepPoint::new(strategy.label(), base.clone()).with_policy(PolicyConfig {
                strategy,
                naive_search: false,
            })
        })
        .collect();
    let reports = run_batch(&points, threads);
    strategies
        .iter()
        .zip(reports)
        .map(|(s, r)| (s.label(), r.metrics))
        .collect()
}

/// A2 — data-structure ablation: list-based vs naive full-scan searches.
/// Returns `(with lists, naive)`. Scheduling outcomes are identical;
/// the interesting delta is in the step counters.
#[must_use]
pub fn datastructure_comparison(base: &SimParams) -> (Metrics, Metrics) {
    let with_lists = run_point(&SweepPoint::new("lists", base.clone()));
    let naive = run_point(
        &SweepPoint::new("naive", base.clone()).with_policy(PolicyConfig {
            strategy: AllocationStrategy::BestFit,
            naive_search: true,
        }),
    );
    (with_lists.metrics, naive.metrics)
}

/// A3 — suspension-queue ablation: paper behaviour vs
/// discard-instead-of-suspend. Returns `(with suspension, without)`.
#[must_use]
pub fn suspension_comparison(base: &SimParams) -> (Metrics, Metrics) {
    let with_q = run_point(&SweepPoint::new("suspension", base.clone()));
    let mut no_q_params = base.clone();
    no_q_params.suspension_enabled = false;
    let without = run_point(&SweepPoint::new("no-suspension", no_q_params));
    (with_q.metrics, without.metrics)
}

/// A4 — driver ablation: event-driven vs tick-stepped execution of the
/// identical run. Returns `(event-driven, tick-stepped)`; the two metric
/// sets must be equal (asserted by the equivalence tests; the benchmark
/// measures the speed gap). Keep the workload small: the tick-stepped
/// driver is O(total simulated ticks).
#[must_use]
pub fn driver_comparison(base: &SimParams) -> (Metrics, Metrics) {
    let build = || {
        Simulation::new(
            base.clone(),
            SyntheticSource::from_params(base),
            CaseStudyScheduler::new(),
        )
        // INVARIANT: ablation grids are built from the validated
        // Table II defaults; rejection would be a programmer error.
        .expect("ablation parameters must validate")
    };
    let event = build().run();
    let ticked = build().run_tick_stepped();
    (event.metrics, ticked.metrics)
}

/// A5 — placement-model ablation: the paper's scalar area budget vs
/// contiguous 1-D placement with first-fit gaps. Returns
/// `(scalar, contiguous)`. Contiguity can only reject placements the
/// scalar model admits, so completions can drop and waiting/discards
/// can rise; `mean_fragmentation_end` quantifies the external
/// fragmentation the scalar model hides.
#[must_use]
pub fn placement_comparison(base: &SimParams) -> (Metrics, Metrics) {
    use dreamsim_engine::PlacementModel;
    let scalar = run_point(&SweepPoint::new("scalar", base.clone()));
    let mut contiguous_params = base.clone();
    contiguous_params.placement = PlacementModel::Contiguous;
    let contiguous = run_point(&SweepPoint::new("contiguous", contiguous_params));
    (scalar.metrics, contiguous.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dreamsim_engine::ReconfigMode;

    fn small(mode: ReconfigMode) -> SimParams {
        let mut p = SimParams::paper(20, 150, mode);
        p.seed = 99;
        p
    }

    #[test]
    fn policy_comparison_covers_all_strategies() {
        let rows = policy_comparison(&small(ReconfigMode::Partial), 0);
        assert_eq!(rows.len(), 5);
        let labels: Vec<&str> = rows.iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec![
                "best-fit",
                "first-fit",
                "worst-fit",
                "random",
                "least-loaded"
            ]
        );
        for (_, m) in &rows {
            assert_eq!(m.total_tasks_generated, 150);
        }
    }

    #[test]
    fn datastructure_ablation_same_outcomes_more_steps() {
        let (lists, naive) = datastructure_comparison(&small(ReconfigMode::Partial));
        // Identical scheduling outcomes...
        assert_eq!(lists.total_tasks_completed, naive.total_tasks_completed);
        assert_eq!(lists.total_discarded_tasks, naive.total_discarded_tasks);
        assert_eq!(
            lists.avg_waiting_time_per_task,
            naive.avg_waiting_time_per_task
        );
        // ...but the naive allocation search must never be cheaper.
        assert!(
            naive.scheduler_search_length >= lists.scheduler_search_length,
            "naive {} vs lists {}",
            naive.scheduler_search_length,
            lists.scheduler_search_length
        );
    }

    #[test]
    fn suspension_ablation_trades_discards_for_waiting() {
        let (with_q, without) = suspension_comparison(&small(ReconfigMode::Partial));
        assert!(without.total_suspensions == 0);
        // Without the queue, everything that would suspend is discarded.
        assert!(without.total_discarded_tasks >= with_q.total_discarded_tasks);
    }

    #[test]
    fn driver_ablation_is_an_equivalence() {
        let (event, ticked) = driver_comparison(&small(ReconfigMode::Full));
        assert_eq!(event, ticked);
    }

    #[test]
    fn placement_ablation_scalar_never_fragments() {
        let (scalar, contiguous) = placement_comparison(&small(ReconfigMode::Partial));
        assert_eq!(scalar.mean_fragmentation_end, 0.0);
        assert!(contiguous.mean_fragmentation_end >= 0.0);
        // Both runs account for every task.
        assert_eq!(
            contiguous.total_tasks_completed + contiguous.total_discarded_tasks,
            contiguous.total_tasks_generated
        );
    }
}
